"""Warm batch scoring against a fitted detector (serving subsystem).

:class:`BatchScorer` applies a trained ZeroED fit — live
(:meth:`~repro.core.pipeline.FittedZeroED.scorer`) or reloaded from a
disk artifact (:meth:`BatchScorer.from_artifact`) — to tables and row
batches the fit never saw.  The path is deliberately narrow:

* **zero LLM calls, no sampling** — scoring consumes only frozen
  facts: value-frequency tables, vicinity lookup dicts, compiled
  criteria, trained MLP parameters;
* **unique-value folds** — featurization routes through the same
  interned fast paths the pipeline uses (``base_matrix`` computes
  frequency/pattern/embedding features once per distinct value and
  criteria once per distinct (value, context) combo, scattering by the
  score table's column codes), and the fast detector engine runs one
  MLP forward pass per unique feature row;
* **per-attribute fan-out** — base matrices and detector prediction
  fan across ``config.n_jobs`` workers through :mod:`repro.parallel`,
  with the shared caches (encodings, base matrices) pre-warmed
  serially, the same determinism contract as the pipeline.

A scorer built from a saved-then-loaded artifact produces masks
bitwise equal to the in-memory scorer — and, scoring the training
table, to ``ZeroED.detect`` itself (pinned in
``tests/test_serving.py``).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.config import ZeroEDConfig
from repro.core.detector import ErrorDetector
from repro.core.featurize import AttributeFeaturizer
from repro.core.result import DetectionResult, StageInfo
from repro.data.table import Table
from repro.errors import ArtifactError
from repro.obs import trace
from repro.parallel import parallel_attr_map


class FrozenFeatureSpace:
    """A feature space over *frozen* featurizers and a score table.

    Shaped like :class:`~repro.core.featurize.FeatureSpace` for the
    consumers prediction needs (``base_matrix`` / ``unified_matrix`` /
    ``featurizers`` / ``correlated`` / ``config``), but built from a
    fitted pipeline's featurizers instead of from the table itself:
    every statistic comes from training time, the table only says which
    rows carry which values.
    """

    def __init__(
        self,
        table: Table,
        featurizers: dict[str, AttributeFeaturizer],
        correlated: dict[str, list[str]],
        config: ZeroEDConfig,
    ) -> None:
        self.table = table
        self.featurizers = featurizers
        self.correlated = correlated
        self.config = config
        self._base_cache: dict[str, np.ndarray] = {}

    def base_matrix(self, attr: str) -> np.ndarray:
        cached = self._base_cache.get(attr)
        if cached is None:
            cached = self.featurizers[attr].base_matrix(self.table)
            self._base_cache[attr] = cached
        return cached

    def unified_matrix(self, attr: str) -> np.ndarray:
        parts = [self.base_matrix(attr)]
        if self.config.use_correlated_features:
            for q in self.correlated.get(attr, []):
                parts.append(self.base_matrix(q))
        return np.hstack(parts)


class BatchScorer:
    """Score unseen tables/rows with a fitted detector, LLM-free."""

    def __init__(
        self,
        *,
        config: ZeroEDConfig,
        detector: ErrorDetector,
        featurizers: dict[str, AttributeFeaturizer],
        correlated: dict[str, list[str]],
        attributes: list[str],
        llm_model: str = "unknown",
        train_rows: int = 0,
        info: dict | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if n_jobs is not None:
            config = dataclasses.replace(config, n_jobs=n_jobs)
            # predict() reads its jobs count from detector.config; give
            # the scorer a fitted view under the overridden config so
            # the caller's detector (and the fitted pipeline behind
            # it) keeps its own setting.
            detector = detector.with_config(config)
        self.config = config
        self.detector = detector
        self.featurizers = featurizers
        self.correlated = correlated
        self.attributes = list(attributes)
        self.llm_model = llm_model
        self.train_rows = train_rows
        self.info = info or {
            "dataset": None,
            "train_rows": train_rows,
            "llm_model": llm_model,
            "attributes": self.attributes,
            "engines": {"detector": detector.engine},
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_fitted(cls, fitted, n_jobs: int | None = None) -> "BatchScorer":
        """Wrap a live :class:`~repro.core.pipeline.FittedZeroED`."""
        return cls(
            config=fitted.config,
            detector=fitted.detector,
            featurizers=dict(fitted.feature_space.featurizers),
            correlated=dict(fitted.feature_space.correlated),
            attributes=fitted.attributes,
            llm_model=fitted.llm.model_name,
            train_rows=fitted.table.n_rows,
            info={
                "dataset": fitted.table.name,
                "train_rows": fitted.table.n_rows,
                "llm_model": fitted.llm.model_name,
                "attributes": fitted.attributes,
                "engines": {"detector": fitted.detector.engine},
                "resilience": {
                    "degraded_attrs": fitted.details.get(
                        "degraded_attrs", {}
                    ),
                    "fit_stats": fitted.details.get("resilience") or {},
                },
                "sample": fitted.details.get("sample"),
                "tokens": dict(fitted.ledger_summary),
            },
            n_jobs=n_jobs,
        )

    @classmethod
    def from_artifact(
        cls, path: str | Path, n_jobs: int | None = None
    ) -> "BatchScorer":
        """Load a saved artifact directory (integrity-checked)."""
        from repro.serving.artifact import DetectorArtifact

        state = DetectorArtifact.load(path).restore()
        return cls(
            config=state.config,
            detector=state.detector,
            featurizers=state.featurizers,
            correlated=state.correlated,
            attributes=state.attributes,
            llm_model=state.llm_model,
            train_rows=state.train_rows,
            info=state.info,
            n_jobs=n_jobs,
        )

    def with_jobs(self, n_jobs: int) -> "BatchScorer":
        """A view of this scorer with a different worker count.

        Shares the frozen featurizers and trained models (no copy);
        only the execution knob differs.  The chunked scoring path uses
        this to keep one pool level — the shard fan-out owns the
        workers, each shard scores per-attribute-serially.
        """
        if n_jobs == self.config.n_jobs:
            return self
        return BatchScorer(
            config=self.config,
            detector=self.detector,
            featurizers=self.featurizers,
            correlated=self.correlated,
            attributes=self.attributes,
            llm_model=self.llm_model,
            train_rows=self.train_rows,
            info=self.info,
            n_jobs=n_jobs,
        )

    # ------------------------------------------------------------------
    def score_table(
        self, table: Table, *, row_offset: int = 0
    ) -> DetectionResult:
        """Score every cell of ``table`` against the fitted detectors.

        ``table`` must carry the training schema (same attributes, same
        order); anything else raises :class:`ArtifactError` — a scorer
        has no way to featurize columns it was never fitted on.

        ``row_offset`` says which global row the table's row 0 is when
        the table is a shard of a larger stream.  The mask stays local
        (row ``i`` of this table), but the offset is recorded in
        ``details["row_offset"]`` and applied by
        :meth:`~repro.core.result.DetectionResult.error_cells`, so
        shard consumers get global row ids instead of silently
        0-rebased ones.
        """
        if table.attributes != self.attributes:
            raise ArtifactError(
                f"schema mismatch: the detector was fitted on "
                f"{self.attributes!r}, the table carries "
                f"{table.attributes!r}"
            )
        if row_offset < 0:
            raise ArtifactError(
                f"row_offset must be >= 0, got {row_offset}"
            )
        with trace.span(
            "featurize", dataset=table.name, rows=table.n_rows
        ) as featurize_span:
            fs = FrozenFeatureSpace(
                table, self.featurizers, self.correlated, self.config
            )
            # Pre-warm the shared lazy caches serially (column
            # encodings, vicinity lookup dicts) so the fan-out below
            # only reads them; base matrices are per-attribute
            # independent after that.
            for attr in self.attributes:
                table.encoding(attr)
            parallel_attr_map(
                fs.base_matrix,
                self.attributes,
                self.config.n_jobs,
                span="base_matrix",
            )
        featurize_s = featurize_span.seconds
        with trace.span(
            "predict",
            dataset=table.name,
            rows=table.n_rows,
            engine=self.detector.engine,
        ) as predict_span:
            mask = self.detector.predict(table, fs)
        predict_s = predict_span.seconds
        return DetectionResult(
            mask=mask,
            dataset=table.name,
            method=f"zeroed-scorer[{self.llm_model}]",
            stages=[
                StageInfo("featurize", featurize_s, 0, 0),
                StageInfo("predict", predict_s, 0, 0),
            ],
            details={
                "engines": {"detector": self.detector.engine},
                "n_jobs": self.config.n_jobs,
                "train_rows": self.train_rows,
                "serving": True,
                "row_offset": row_offset,
            },
        )

    def score_rows(
        self,
        rows: Sequence[Mapping[str, str]],
        name: str = "rows",
        *,
        row_offset: int = 0,
    ) -> DetectionResult:
        """Score ad-hoc row dicts (the service's request payloads).

        Missing attributes become empty cells (the pipeline's NULL
        convention); unknown keys raise :class:`ArtifactError`.
        ``row_offset`` as in :meth:`score_table`.
        """
        return self.score_table(
            self.rows_to_table(rows, name=name), row_offset=row_offset
        )

    # ------------------------------------------------------------------
    def score_chunks(self, chunks, *, chunk_rows=None, n_jobs=None, journal=None):
        """Stream-score an iterable of table chunks, bounded memory.

        Delegates to :func:`repro.serving.streaming.score_chunks`; the
        assembled mask is byte-identical to :meth:`score_table` on the
        concatenated table for every ``(chunk_rows, n_jobs)``.
        """
        from repro.serving import streaming

        return streaming.score_chunks(
            self,
            chunks,
            chunk_rows=chunk_rows,
            n_jobs=self.config.n_jobs if n_jobs is None else n_jobs,
            journal=journal,
        )

    def score_csv(
        self,
        path,
        *,
        chunk_rows=None,
        n_jobs=None,
        journal_dir=None,
        resume=False,
        bad_rows=None,
        quarantine_path=None,
        opener=None,
    ):
        """Stream-score a CSV file shard-by-shard (out-of-core).

        Delegates to :func:`repro.serving.streaming.score_csv`; the
        file is never materialized whole.  ``journal_dir``/``resume``
        make the run resumable after a crash, ``bad_rows``/
        ``quarantine_path`` pick the malformed-row policy (PR 8).
        """
        from repro.serving import streaming

        return streaming.score_csv(
            self,
            path,
            chunk_rows=chunk_rows,
            n_jobs=self.config.n_jobs if n_jobs is None else n_jobs,
            journal_dir=journal_dir,
            resume=resume,
            bad_rows=bad_rows,
            quarantine_path=quarantine_path,
            opener=opener,
        )

    def validate_rows(self, rows: Sequence[Mapping[str, str]]) -> None:
        """Reject rows carrying attributes outside the fitted schema.

        Shared by :meth:`rows_to_table` and the service's pre-enqueue
        check (which must fail a bad request *before* it joins a
        micro-batch and sinks its co-batched waiters).
        """
        valid = set(self.attributes)
        for pos, row in enumerate(rows):
            unknown = [k for k in row if k not in valid]
            if unknown:
                raise ArtifactError(
                    f"row {pos} carries unknown attribute(s) {unknown!r}; "
                    f"the detector was fitted on {self.attributes!r}"
                )

    def rows_to_table(
        self, rows: Sequence[Mapping[str, str]], name: str = "rows"
    ) -> Table:
        """Build a schema-aligned :class:`Table` from row dicts."""
        self.validate_rows(rows)
        columns = {
            attr: [row.get(attr, "") for row in rows]
            for attr in self.attributes
        }
        return Table(self.attributes, columns, name=name)
