"""Resumable streaming score jobs (serving subsystem, PR 8).

A ``score_csv`` run over a million-row file is hours of work whose
shards are individually cheap to verify: scoring is deterministic, and
PR 7's manifest already records one SHA-256 per shard mask.  This
module turns that shape into a crash-safe journal so a job killed at
shard 900/1000 resumes at shard 900 instead of row 0 — the serve-side
twin of :class:`repro.llm.checkpoint.CheckpointedLLM`.

Journal layout (one directory)::

    journal/
      journal.jsonl   line 1: header {format, version, fingerprint}
                      then one JSON record per completed shard:
                      {index, row_offset, n_rows, error_cells,
                       mask_sha256, data_offset, data_len}
      masks.bin       the shards' raw mask bytes, concatenated at the
                      recorded offsets

Crash-safety contract:

* **append order** — a shard's mask bytes are written (and fsynced) to
  ``masks.bin`` *before* its journal record; a record therefore only
  ever describes bytes that are fully on disk.
* **prefix recovery** — on resume the journal is trusted only up to
  the longest prefix of records that parse, chain their row offsets
  contiguously, and whose mask bytes match their checksum.  A torn
  tail (half-written record, garbage mask bytes, records beyond a
  truncated data file) is discarded by truncating both files — proven
  under seeded torn-write injection in ``tests/test_chaos_serving.py``.
* **fingerprint guard** — the header pins what the journal is a
  journal *of*: artifact checksum, schema fingerprint, source path +
  byte size, ``chunk_rows``, worker count and the bad-row policy.  Any
  mismatch (new artifact, re-chunked run, edited file) invalidates the
  journal and the job starts from shard 0 rather than resuming into a
  stream it no longer describes.

The injectable ``opener`` exists for the chaos layer
(:class:`repro.data.faults.FaultyIO`); production callers never pass
it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.data.mask import ErrorMask
from repro.errors import DataError
from repro.obs import log as obs_log

_log = obs_log.get_logger("repro.serving.jobs")

JOURNAL_FORMAT = "zeroed-score-journal"
JOURNAL_VERSION = 1
JOURNAL_NAME = "journal.jsonl"
MASKS_NAME = "masks.bin"


def job_fingerprint(
    scorer,
    source: str | Path,
    *,
    chunk_rows: int | None,
    n_jobs: int,
    bad_rows: str = "fail",
) -> dict:
    """Identity of one streaming score job, for the journal header.

    Two runs may share a journal iff every field matches: the artifact
    (by ``arrays.npz`` checksum when the scorer was loaded from disk,
    schema fingerprint + training provenance always), the source file
    (path and byte size), the shard size, the worker count and the
    bad-row policy.  Anything else and the recorded shards describe a
    different row stream or different frozen statistics — resuming
    over them would splice two jobs into one mask.
    """
    from repro.serving.artifact import schema_fingerprint

    path = Path(source)
    try:
        source_bytes = path.stat().st_size
    except OSError:
        source_bytes = None
    return {
        "artifact_sha256": scorer.info.get("arrays_sha256"),
        "schema_fingerprint": schema_fingerprint(scorer.attributes),
        "llm_model": scorer.llm_model,
        "train_rows": scorer.train_rows,
        "source": str(path),
        "source_bytes": source_bytes,
        "chunk_rows": chunk_rows,
        "jobs": n_jobs,
        "bad_rows": bad_rows,
    }


@dataclass(frozen=True)
class JournalShard:
    """One verified (or just-recorded) shard entry."""

    index: int
    row_offset: int
    n_rows: int
    error_cells: int
    mask_sha256: str
    data_offset: int
    data_len: int


class ScoreJournal:
    """Incremental per-shard journal for one streaming score job.

    Use :meth:`begin` (not the constructor) — it performs the
    fingerprint check and prefix recovery, then leaves the journal
    open for appending::

        journal = ScoreJournal.begin(directory, fingerprint, resume=True)
        for shard in journal.verified:      # replay, zero re-scoring
            ...
        journal.append(...)                 # continue from the cut
        journal.close()
    """

    def __init__(
        self,
        directory: str | Path,
        fingerprint: dict,
        *,
        opener=None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.verified: list[JournalShard] = []
        self.invalidated = False
        self._opener = opener or open
        self._journal_fh = None
        self._masks_fh = None

    # ------------------------------------------------------------------
    @classmethod
    def begin(
        cls,
        directory: str | Path,
        fingerprint: dict,
        *,
        resume: bool = False,
        opener=None,
    ) -> "ScoreJournal":
        """Open (and, with ``resume=True``, recover) a journal.

        Without ``resume`` any existing journal is discarded.  With it,
        a journal whose header fingerprint matches is trusted up to its
        longest valid prefix (``.verified``); a mismatched fingerprint
        sets ``.invalidated`` and starts fresh.
        """
        journal = cls(directory, fingerprint, opener=opener)
        journal.directory.mkdir(parents=True, exist_ok=True)
        if resume:
            journal._recover()
        else:
            journal._reset()
        journal._open_for_append()
        if journal.invalidated:
            _log.warning(
                "journal.invalidated",
                directory=str(journal.directory),
            )
        _log.info(
            "journal.begin",
            directory=str(journal.directory),
            resume=resume,
            verified_shards=len(journal.verified),
        )
        return journal

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    @property
    def masks_path(self) -> Path:
        return self.directory / MASKS_NAME

    @property
    def data_end(self) -> int:
        """First free byte offset in ``masks.bin``."""
        if not self.verified:
            return 0
        last = self.verified[-1]
        return last.data_offset + last.data_len

    # ------------------------------------------------------------------
    def shard_mask(self, shard: JournalShard, attributes: list[str]) -> ErrorMask:
        """Reconstruct one verified shard's mask from the data file."""
        with self._opener(self.masks_path, "rb") as fh:
            fh.seek(shard.data_offset)
            data = _read_exact(fh, shard.data_len)
        if hashlib.sha256(data).hexdigest() != shard.mask_sha256:
            raise DataError(
                f"journal shard {shard.index} failed its checksum on "
                f"re-read; the journal under {self.directory} is corrupt"
            )
        matrix = np.frombuffer(data, dtype=bool).reshape(
            shard.n_rows, len(attributes)
        )
        return ErrorMask(attributes, matrix.copy())

    def append(
        self,
        *,
        index: int,
        row_offset: int,
        mask: ErrorMask,
        mask_sha256: str,
    ) -> JournalShard:
        """Record one completed shard: mask bytes first, record second.

        Both writes are flushed and fsynced before returning, so a
        recorded shard survives any later crash; an OSError mid-append
        leaves at worst a torn tail the next resume truncates away.
        """
        if self._journal_fh is None:
            raise DataError("journal is closed")
        data = mask.matrix.tobytes()
        shard = JournalShard(
            index=index,
            row_offset=row_offset,
            n_rows=mask.n_rows,
            error_cells=mask.error_count(),
            mask_sha256=mask_sha256,
            data_offset=self.data_end,
            data_len=len(data),
        )
        self._masks_fh.write(data)
        self._masks_fh.flush()
        os.fsync(self._masks_fh.fileno())
        self._journal_fh.write(json.dumps(asdict(shard)) + "\n")
        self._journal_fh.flush()
        os.fsync(self._journal_fh.fileno())
        self.verified.append(shard)
        _log.debug(
            "journal.append",
            shard=shard.index,
            row_offset=shard.row_offset,
            rows=shard.n_rows,
            error_cells=shard.error_cells,
        )
        return shard

    def close(self) -> None:
        for fh in (self._journal_fh, self._masks_fh):
            if fh is not None:
                try:
                    fh.close()
                except OSError:  # already torn; nothing left to save
                    pass
        self._journal_fh = None
        self._masks_fh = None

    def __enter__(self) -> "ScoreJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """Start a fresh journal: header only, no shards."""
        self.verified = []
        with self._opener(self.journal_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._header()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        with self._opener(self.masks_path, "wb") as fh:
            fh.flush()

    def _header(self) -> dict:
        return {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
        }

    def _recover(self) -> None:
        """Trust the longest valid prefix of an existing journal."""
        if not self.journal_path.is_file() or not self.masks_path.is_file():
            self._reset()
            return
        try:
            with self._opener(
                self.journal_path, "r", encoding="utf-8"
            ) as fh:
                lines = fh.read().splitlines()
        except OSError:
            self._reset()
            return
        if not lines:
            self._reset()
            return
        header = _parse_json_line(lines[0])
        if (
            not isinstance(header, dict)
            or header.get("format") != JOURNAL_FORMAT
            or header.get("version") != JOURNAL_VERSION
            or header.get("fingerprint") != self.fingerprint
        ):
            # A different job's journal (or an unreadable header): the
            # recorded shards describe some other stream — invalidate.
            self.invalidated = self.journal_path.is_file()
            self._reset()
            return
        try:
            data_size = self.masks_path.stat().st_size
        except OSError:
            data_size = 0
        verified: list[JournalShard] = []
        expected_offset = 0
        data_end = 0
        with self._opener(self.masks_path, "rb") as data_fh:
            for line in lines[1:]:
                record = _parse_json_line(line)
                shard = _shard_from_record(record)
                if (
                    shard is None
                    or shard.index != len(verified)
                    or shard.row_offset != expected_offset
                    or shard.data_offset != data_end
                    or shard.data_offset + shard.data_len > data_size
                ):
                    break
                data_fh.seek(shard.data_offset)
                data = _read_exact(data_fh, shard.data_len)
                if (
                    len(data) != shard.data_len
                    or hashlib.sha256(data).hexdigest() != shard.mask_sha256
                ):
                    break
                verified.append(shard)
                expected_offset += shard.n_rows
                data_end = shard.data_offset + shard.data_len
        self.verified = verified
        # Truncate torn tails so appends continue from the valid cut.
        with self._opener(self.journal_path, "r+", encoding="utf-8") as fh:
            keep = lines[: 1 + len(verified)]
            fh.seek(0)
            fh.write("".join(line + "\n" for line in keep))
            fh.truncate()
        with self._opener(self.masks_path, "r+b") as fh:
            fh.truncate(data_end)

    def _open_for_append(self) -> None:
        self._journal_fh = self._opener(
            self.journal_path, "a", encoding="utf-8"
        )
        self._masks_fh = self._opener(self.masks_path, "ab")


def _parse_json_line(line: str):
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        return None


def _shard_from_record(record) -> JournalShard | None:
    if not isinstance(record, dict):
        return None
    try:
        shard = JournalShard(
            index=int(record["index"]),
            row_offset=int(record["row_offset"]),
            n_rows=int(record["n_rows"]),
            error_cells=int(record["error_cells"]),
            mask_sha256=str(record["mask_sha256"]),
            data_offset=int(record["data_offset"]),
            data_len=int(record["data_len"]),
        )
    except (KeyError, TypeError, ValueError):
        return None
    if shard.n_rows < 1 or shard.data_len < 0 or shard.data_offset < 0:
        return None
    return shard


def _read_exact(fh, size: int) -> bytes:
    """Read exactly ``size`` bytes, looping over short reads."""
    chunks: list[bytes] = []
    remaining = size
    while remaining > 0:
        chunk = fh.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
