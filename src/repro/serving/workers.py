"""Process-pool scoring backend for the serving front (PR 9).

The single-process :class:`~repro.serving.service.ScoringService`
scores every micro-batch on one thread inside the HTTP process: the
GIL-bound slices of featurization compete with request handling, and
one process caps throughput at one core.  :class:`WorkerPool` moves
the scoring off-process — N worker processes each hold the frozen
scorer(s), the front fans micro-batches to them and keeps only the
admission/shed/deadline bookkeeping.

Contract:

* **byte-identical masks** — a worker loads the *same* artifact with
  ``BatchScorer.from_artifact`` and runs the same deterministic
  scoring path, so the flags for a batch are bitwise the single-process
  flags for every worker count (pinned in
  ``tests/test_serving_service.py``);
* **per-worker scorer cache** — workers load artifacts lazily on first
  use and cache them keyed by path, validated by the artifact's
  ``arrays_sha256``: a hot reload (new checksum at the same or a new
  path) makes every worker reload before scoring its next batch, and a
  small LRU bounds resident scorers per worker for multi-tenant
  serving;
* **spawn, not fork** — the service runs threads (HTTP handlers, batch
  lanes); forking a threaded process can deadlock on inherited locks,
  so workers start from a fresh interpreter.  The first batch per
  worker pays the artifact load; steady state pays only row/flag
  serialization;
* **in-process inside each worker** — workers score with ``n_jobs=1``
  (one pool level: the process fan-out owns the parallelism), the same
  discipline as the streaming shard executor.

Failures inside a worker surface to the submitting lane as the
original exception (``ArtifactError`` etc. pickle cleanly), so the
service's error mapping is identical with and without workers.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import multiprocessing

import numpy as np

from repro.errors import ArtifactError, ReproError

#: Resident scorers per worker process before the per-worker LRU
#: evicts the least recently used (multi-tenant serving keeps the
#: front-side registry as the authoritative cache; workers only need
#: the actively scoring tail).
DEFAULT_MAX_RESIDENT_PER_WORKER = 8

#: Per-process scorer cache: path -> (arrays_sha256, BatchScorer).
#: Lives in the *worker* interpreter; the front process never touches
#: it.  OrderedDict gives LRU ordering via move_to_end.
_RESIDENT: "OrderedDict[str, tuple[str, object]]" = OrderedDict()
_MAX_RESIDENT = DEFAULT_MAX_RESIDENT_PER_WORKER


def _worker_scorer(path: str, arrays_sha256: str | None):
    """The worker-side cache lookup: load/reload/evict as needed."""
    from repro.serving.scorer import BatchScorer

    cached = _RESIDENT.get(path)
    if cached is not None:
        sha, scorer = cached
        if arrays_sha256 is None or sha == arrays_sha256:
            _RESIDENT.move_to_end(path)
            return scorer
        del _RESIDENT[path]  # stale: the artifact changed under us
    scorer = BatchScorer.from_artifact(path, n_jobs=1)
    sha = scorer.info.get("arrays_sha256")
    if arrays_sha256 is not None and sha != arrays_sha256:
        raise ArtifactError(
            f"worker loaded {path} with checksum {sha!r}, the front "
            f"expected {arrays_sha256!r} (artifact changed mid-swap?)"
        )
    _RESIDENT[path] = (sha, scorer)
    while len(_RESIDENT) > _MAX_RESIDENT:
        _RESIDENT.popitem(last=False)
    return scorer


def _score_batch(
    path: str,
    arrays_sha256: str | None,
    rows: list[dict],
    trace_id: str | None = None,
) -> np.ndarray:
    """Top-level task function (must be picklable for spawn).

    Spans cannot cross the pickle boundary, so the front sends only its
    ``trace_id`` string; binding it onto this worker's log context
    correlates worker-side log lines with the front process's trace.
    """
    from repro.obs import log as obs_log

    scorer = _worker_scorer(path, arrays_sha256)
    if trace_id is None:
        return scorer.score_rows(rows, name="request").mask.matrix
    with obs_log.bind(trace_id=trace_id):
        return scorer.score_rows(rows, name="request").mask.matrix


def _warm(path: str, arrays_sha256: str | None) -> str:
    """Pre-load an artifact into this worker's cache."""
    _worker_scorer(path, arrays_sha256)
    return path


class WorkerPoolBroken(ReproError):
    """A worker process died; the pool cannot score until restarted."""


class WorkerPool:
    """N spawn-started scoring processes behind one submit interface.

    The front submits ``(artifact_path, arrays_sha256, rows)`` and
    blocks for the boolean flag matrix; which worker runs it is the
    executor's choice.  Determinism is unaffected: scoring is a pure
    function of (artifact bytes, rows).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ArtifactError(
                f"worker pool needs >= 1 process, got {n_workers}"
            )
        self.n_workers = n_workers
        ctx = multiprocessing.get_context("spawn")
        self._pool = ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx
        )
        self._closed = False

    def score(
        self,
        path: str | Path,
        arrays_sha256: str | None,
        rows: list[dict],
    ) -> np.ndarray:
        """Score one micro-batch on some worker; blocks for the flags."""
        if self._closed:
            raise ReproError("worker pool is shut down")
        from repro.obs import trace

        try:
            return self._pool.submit(
                _score_batch, str(path), arrays_sha256, rows,
                trace.trace_id(),
            ).result()
        except BrokenProcessPool as exc:
            raise WorkerPoolBroken(
                f"a scoring worker died ({exc}); restart the service"
            ) from exc

    def warm(self, path: str | Path, arrays_sha256: str | None) -> None:
        """Best-effort pre-load across workers (cuts first-hit latency).

        ``ProcessPoolExecutor`` offers no per-worker targeting, so one
        warm task per worker is submitted; an idle pool will spread
        them, a busy one folds them into fewer workers — either way
        every worker self-heals lazily on its first real batch.
        """
        futures = [
            self._pool.submit(_warm, str(path), arrays_sha256)
            for _ in range(self.n_workers)
        ]
        for future in futures:
            try:
                future.result()
            except BrokenProcessPool as exc:  # pragma: no cover
                raise WorkerPoolBroken(
                    f"a scoring worker died while warming ({exc})"
                ) from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=False, cancel_futures=True)
