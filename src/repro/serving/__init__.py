"""Serving subsystem: persistent detector artifacts + warm scoring.

The train-once / score-many layer over the ZeroED pipeline (PR 5):

* :mod:`repro.serving.artifact` — versioned, tamper-evident on-disk
  ``DetectorArtifact`` (``manifest.json`` + ``arrays.npz``);
* :mod:`repro.serving.scorer` — :class:`BatchScorer`, featurizing
  unseen tables/rows against frozen training statistics with zero LLM
  calls;
* :mod:`repro.serving.service` — :class:`ScoringService`, a stdlib
  ``ThreadingHTTPServer`` JSON API with micro-batched request handling.
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    DetectorArtifact,
)
from repro.serving.scorer import BatchScorer, FrozenFeatureSpace
from repro.serving.service import ScoringService

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "BatchScorer",
    "DetectorArtifact",
    "FrozenFeatureSpace",
    "ScoringService",
]
