"""Serving subsystem: persistent detector artifacts + warm scoring.

The train-once / score-many layer over the ZeroED pipeline (PR 5):

* :mod:`repro.serving.artifact` — versioned, tamper-evident on-disk
  ``DetectorArtifact`` (``manifest.json`` + ``arrays.npz``);
* :mod:`repro.serving.scorer` — :class:`BatchScorer`, featurizing
  unseen tables/rows against frozen training statistics with zero LLM
  calls;
* :mod:`repro.serving.service` — :class:`ScoringService`, a stdlib
  ``ThreadingHTTPServer`` JSON API with micro-batched request handling,
  bounded-admission load shedding, per-request deadlines, graceful
  drain and hot artifact reload (PR 8);
* :mod:`repro.serving.streaming` — out-of-core sharded scoring and
  sampled fitting (PR 7);
* :mod:`repro.serving.jobs` — :class:`ScoreJournal`, the crash-safe
  per-shard journal that makes streaming score jobs resumable (PR 8).
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    DetectorArtifact,
)
from repro.serving.jobs import JournalShard, ScoreJournal, job_fingerprint
from repro.serving.scorer import BatchScorer, FrozenFeatureSpace
from repro.serving.service import (
    DeadlineExceeded,
    ScoringService,
    ServiceOverloaded,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "BatchScorer",
    "DeadlineExceeded",
    "DetectorArtifact",
    "FrozenFeatureSpace",
    "JournalShard",
    "ScoreJournal",
    "ScoringService",
    "ServiceOverloaded",
    "job_fingerprint",
]
