"""A stdlib HTTP scoring service over a :class:`BatchScorer`.

``ScoringService`` wraps a warm scorer in a ``ThreadingHTTPServer``
JSON API:

* ``POST /score`` — body ``{"rows": [{attr: value, ...}, ...]}``;
  responds with the per-row boolean error flags in schema order.
* ``GET /healthz`` — liveness plus serving counters, the fit-time
  degradation state and (when wired to a live pipeline) the circuit
  breaker's snapshot.
* ``GET /artifact`` — the loaded artifact's manifest summary (version,
  schema, engines, training provenance).

Hardening (PR 6): every error response is a structured JSON body
``{"error": <human message>, "code": <stable machine code>}`` — codes
are ``invalid_json``, ``bad_request``, ``payload_too_large``,
``not_found`` and ``internal`` — request bodies are capped at
``max_body_bytes`` (HTTP 413 beyond it, read in bounded chunks so an
oversized upload never materialises in memory), and socket reads carry
a ``read_timeout_s`` deadline so a stalled client cannot pin a handler
thread forever.

Requests are **micro-batched**: handler threads enqueue their rows and
block; a single scoring worker drains whatever accumulated within a
short linger window, scores it as *one* table (one featurization pass,
one detector sweep — the per-row cost amortises exactly like the
pipeline's columnar fast paths), and fans the per-row flags back to the
waiting handlers.  Scoring is row-independent (every feature consults
frozen training statistics, never the co-batched rows), so batching
never changes a response — a single request's flags are bitwise the
flags of any batch containing it (asserted in
``tests/test_serving_service.py``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ArtifactError, ReproError
from repro.serving.scorer import BatchScorer

#: How long the batching worker lingers after the first queued request
#: to let concurrent requests coalesce, and the row cap per batch.
DEFAULT_LINGER_S = 0.002
DEFAULT_MAX_BATCH_ROWS = 4096
#: How long a handler thread waits for its batch to be scored.
REQUEST_TIMEOUT_S = 120.0
#: Request-body cap (bytes) and per-connection socket read deadline —
#: the service-level defaults; both are constructor knobs.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
DEFAULT_READ_TIMEOUT_S = 30.0


@dataclass
class _Pending:
    """One enqueued /score request awaiting its slice of a batch."""

    rows: list[dict]
    event: threading.Event = field(default_factory=threading.Event)
    flags: list[list[bool]] | None = None
    batched_with: int = 0
    error: Exception | None = None


class _MicroBatcher:
    """Queue + worker that scores concurrent requests as one table."""

    def __init__(
        self,
        scorer: BatchScorer,
        linger_s: float = DEFAULT_LINGER_S,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
    ) -> None:
        self._scorer = scorer
        self._linger_s = linger_s
        self._max_batch_rows = max_batch_rows
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._stopped = False
        self.n_batches = 0
        self.n_rows = 0
        self._worker = threading.Thread(
            target=self._loop, name="score-batcher", daemon=True
        )
        self._worker.start()

    def submit(self, rows: list[dict]) -> _Pending:
        """Enqueue ``rows`` and block until their flags are ready."""
        pending = _Pending(rows=rows)
        with self._cond:
            if self._stopped:
                raise ReproError("scoring service is shut down")
            self._queue.append(pending)
            self._cond.notify_all()
        if not pending.event.wait(REQUEST_TIMEOUT_S):
            # Abandoned by its handler: drop it from the queue so the
            # worker never scores rows nobody will read (if it already
            # joined an in-flight batch, that batch finishes normally).
            with self._cond:
                try:
                    self._queue.remove(pending)
                except ValueError:
                    pass
            raise TimeoutError("scoring request timed out")
        if pending.error is not None:
            raise pending.error
        return pending

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._worker.join(timeout=5)

    # ------------------------------------------------------------------
    def _collect_batch(self) -> list[_Pending]:
        """Block for the first request, linger briefly for company."""
        with self._cond:
            while not self._queue and not self._stopped:
                self._cond.wait(0.1)
            if self._stopped and not self._queue:
                return []
            batch = [self._queue.popleft()]
            total = len(batch[0].rows)
            deadline = time.monotonic() + self._linger_s
            while total < self._max_batch_rows:
                if self._queue:
                    nxt = self._queue.popleft()
                    batch.append(nxt)
                    total += len(nxt.rows)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                if not self._queue:
                    break
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            rows = [row for pending in batch for row in pending.rows]
            try:
                if rows:
                    result = self._scorer.score_rows(rows, name="request")
                    flags = result.mask.matrix
                else:
                    flags = None
                offset = 0
                for pending in batch:
                    n = len(pending.rows)
                    pending.flags = (
                        flags[offset : offset + n].tolist() if n else []
                    )
                    pending.batched_with = len(rows)
                    offset += n
                self.n_batches += 1
                self.n_rows += len(rows)
            except Exception as exc:  # fan the failure to every waiter
                for pending in batch:
                    pending.error = exc
            finally:
                for pending in batch:
                    pending.event.set()


class ScoringService:
    """HTTP serving front-end for one loaded detector artifact."""

    def __init__(
        self,
        scorer: BatchScorer,
        host: str = "127.0.0.1",
        port: int = 0,
        linger_s: float = DEFAULT_LINGER_S,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        breaker_state=None,
    ) -> None:
        self.scorer = scorer
        self.started_at = time.time()
        self.n_requests = 0
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        #: Optional zero-arg callable returning the live circuit
        #: breaker's snapshot dict — wire it when the service fronts a
        #: pipeline that still holds its ResilientLLM (a service over a
        #: reloaded artifact has no breaker; /healthz reports null).
        self.breaker_state = breaker_state
        self._stats_lock = threading.Lock()
        self._batcher = _MicroBatcher(
            scorer, linger_s=linger_s, max_batch_rows=max_batch_rows
        )
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(self)
        )
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @classmethod
    def from_artifact(
        cls, path: str | Path, n_jobs: int | None = None, **kwargs
    ) -> "ScoringService":
        return cls(BatchScorer.from_artifact(path, n_jobs=n_jobs), **kwargs)

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringService":
        """Serve in a daemon thread (tests, embedding in other code)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="score-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._batcher.stop()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # ------------------------------------------------------------------
    def handle_score(self, payload: dict) -> dict:
        """Validate one /score payload and run it through the batcher."""
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ArtifactError('body must be {"rows": [{attr: value}, ...]}')
        normalised = [
            {str(k): "" if v is None else str(v) for k, v in row.items()}
            for row in rows
        ]
        # Validate before enqueueing: a bad request must fail alone,
        # not poison the micro-batch it would have joined.
        self.scorer.validate_rows(normalised)
        pending = self._batcher.submit(normalised)
        return {
            "attributes": self.scorer.attributes,
            "flags": pending.flags,
            "n_rows": len(normalised),
            "batched_with": pending.batched_with,
        }

    def health(self) -> dict:
        resilience = self.scorer.info.get("resilience") or {}
        breaker = None
        if self.breaker_state is not None:
            try:
                breaker = self.breaker_state()
            except Exception:  # health must never 500 over telemetry
                breaker = {"state": "unknown"}
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.n_requests,
            "batches": self._batcher.n_batches,
            "rows_scored": self._batcher.n_rows,
            "degraded_attrs": resilience.get("degraded_attrs") or {},
            "circuit_breaker": breaker,
        }


class _PayloadTooLarge(Exception):
    """Request body exceeded the service's ``max_body_bytes`` cap."""


def _make_handler(service: ScoringService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # StreamRequestHandler deadline on every socket read: a client
        # that stalls mid-body gets disconnected instead of pinning a
        # handler thread until process death.
        timeout = service.read_timeout_s

        def log_message(self, *args) -> None:  # keep test output quiet
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, status: int, code: str, message: str) -> None:
            # "error" stays a plain human-readable string (the wire
            # contract clients already parse); "code" is the stable
            # machine-routable label.
            self._send(status, {"error": message, "code": code})

        def _read_body(self) -> bytes:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError as exc:
                raise ArtifactError(
                    f"invalid Content-Length header: "
                    f"{self.headers.get('Content-Length')!r}"
                ) from exc
            cap = service.max_body_bytes
            if length > cap:
                raise _PayloadTooLarge
            return self.rfile.read(length)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._send(200, service.health())
            elif self.path == "/artifact":
                self._send(200, service.scorer.info)
            else:
                self._send_error(
                    404, "not_found", f"unknown path {self.path!r}"
                )

        def do_POST(self) -> None:
            if self.path != "/score":
                self._send_error(
                    404, "not_found", f"unknown path {self.path!r}"
                )
                return
            with service._stats_lock:
                service.n_requests += 1
            try:
                payload = json.loads(self._read_body() or b"{}")
                if not isinstance(payload, dict):
                    raise ArtifactError("body must be a JSON object")
                self._send(200, service.handle_score(payload))
            except _PayloadTooLarge:
                # The oversized body was never read; drop the
                # connection after replying so its bytes cannot be
                # misread as a follow-up request on the keep-alive.
                self.close_connection = True
                self._send_error(
                    413,
                    "payload_too_large",
                    f"request body exceeds the "
                    f"{service.max_body_bytes}-byte limit; split the "
                    f"rows across smaller /score requests",
                )
            except json.JSONDecodeError as exc:
                self._send_error(400, "invalid_json", f"invalid JSON: {exc}")
            except ReproError as exc:
                self._send_error(400, "bad_request", str(exc))
            except Exception as exc:  # internal failure, still JSON
                self._send_error(500, "internal", f"internal error: {exc}")

    return Handler
