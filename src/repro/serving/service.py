"""A stdlib HTTP scoring service over a :class:`BatchScorer`.

``ScoringService`` wraps a warm scorer in a ``ThreadingHTTPServer``
JSON API:

* ``POST /score`` — body ``{"rows": [{attr: value, ...}, ...]}``;
  responds with the per-row boolean error flags in schema order.
* ``GET /healthz`` — liveness plus serving counters, the fit-time
  degradation state and (when wired to a live pipeline) the circuit
  breaker's snapshot.
* ``GET /artifact`` — the loaded artifact's manifest summary (version,
  schema, engines, training provenance).

Hardening (PR 6): every error response is a structured JSON body
``{"error": <human message>, "code": <stable machine code>}`` — codes
are ``invalid_json``, ``bad_request``, ``payload_too_large``,
``not_found`` and ``internal`` — request bodies are capped at
``max_body_bytes`` (HTTP 413 beyond it, read in bounded chunks so an
oversized upload never materialises in memory), and socket reads carry
a ``read_timeout_s`` deadline so a stalled client cannot pin a handler
thread forever.

Resilience (PR 8):

* **load shedding** — admission to the micro-batch queue is bounded by
  ``max_queue_rows``; a request that would overflow it is *shed* with
  HTTP 503, code ``overloaded`` and a ``Retry-After`` header, instead
  of growing an unbounded backlog whose every waiter times out.  Shed
  requests never corrupt admitted ones (the queue is untouched).
* **deadlines** — each request carries a deadline (``deadline_s``
  constructor knob, per-request ``deadline_s`` field in the payload,
  whichever is sooner); a request still unscored when it expires gets
  HTTP 504, code ``deadline_exceeded``, and the worker discards
  expired entries instead of scoring rows nobody is waiting for.
* **graceful drain** — :meth:`ScoringService.drain` stops admitting
  (new /score requests get 503 ``draining``), waits for the queue and
  in-flight batch to finish, then stops; the CLI wires it to SIGTERM.
* **readiness vs liveness** — ``GET /readyz`` answers 200 only while
  the service admits work (503 while draining); ``GET /healthz`` stays
  liveness + counters (including shed / expired / reload counts).
* **hot reload** — ``POST /reload`` loads a new artifact (same schema
  required) and swaps the scorer atomically between batches: in-flight
  requests finish on the scorer they were admitted under.

Scale-out (PR 9):

* **multi-worker scoring** — ``workers=N`` (CLI ``serve --workers``)
  fans micro-batches to N :class:`~repro.serving.workers.WorkerPool`
  processes, each holding the frozen scorer; the front process keeps
  only admission/shed/deadline bookkeeping.  Masks are byte-identical
  to single-process scoring for every worker count (pinned in
  ``tests/test_serving_service.py``).  The batcher runs one scoring
  *lane* thread per worker so the pool actually scores N batches
  concurrently.
* **multi-tenant registry** — :meth:`ScoringService.from_artifacts`
  hosts many fitted datasets behind one port via an
  :class:`~repro.serving.registry.ArtifactRegistry` (LRU, memory
  budget).  ``POST /score`` routes by schema ``fingerprint`` or
  ``dataset`` payload field (default: the first artifact); batches
  coalesce only same-tenant requests; ``POST /reload`` becomes a
  registry upsert; ``GET /healthz`` reports residency and eviction
  counters.
* **artifact download** — ``GET /artifact/arrays`` streams the loaded
  artifact's ``arrays.npz`` in 64 KiB chunks (the ~46 MB file never
  materialises in handler memory); ``GET /artifact`` stays the small
  manifest summary.

Requests are **micro-batched**: handler threads enqueue their rows and
block; a single scoring worker drains whatever accumulated within a
short linger window, scores it as *one* table (one featurization pass,
one detector sweep — the per-row cost amortises exactly like the
pipeline's columnar fast paths), and fans the per-row flags back to the
waiting handlers.  Scoring is row-independent (every feature consults
frozen training statistics, never the co-batched rows), so batching
never changes a response — a single request's flags are bitwise the
flags of any batch containing it (asserted in
``tests/test_serving_service.py``).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ArtifactError, ReproError
from repro.obs import log as obs_log
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, PROMETHEUS_CONTENT_TYPE
from repro.serving.scorer import BatchScorer
from repro.serving.workers import WorkerPool, WorkerPoolBroken

_log = obs_log.get_logger("repro.serving.service")

#: How long the batching worker lingers after the first queued request
#: to let concurrent requests coalesce, and the row cap per batch.
DEFAULT_LINGER_S = 0.002
DEFAULT_MAX_BATCH_ROWS = 4096
#: How long a handler thread waits for its batch to be scored.
REQUEST_TIMEOUT_S = 120.0
#: Request-body cap (bytes) and per-connection socket read deadline —
#: the service-level defaults; both are constructor knobs.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
DEFAULT_READ_TIMEOUT_S = 30.0
#: Admission cap: rows allowed to wait in the micro-batch queue before
#: new requests are shed with 503, and the Retry-After hint they get.
DEFAULT_MAX_QUEUE_ROWS = 16_384
DEFAULT_RETRY_AFTER_S = 1


class ServiceOverloaded(ReproError):
    """The admission queue is full; the request was shed, not queued."""


class DeadlineExceeded(ReproError):
    """The request's deadline expired before its batch was scored."""


@dataclass
class _Pending:
    """One enqueued /score request awaiting its slice of a batch."""

    rows: list[dict]
    deadline: float | None = None
    #: Routing key (schema fingerprint in registry mode, None for
    #: single-tenant).  A batch only coalesces same-key entries —
    #: different tenants must never share a featurization pass.
    key: str | None = None
    event: threading.Event = field(default_factory=threading.Event)
    flags: list[list[bool]] | None = None
    batched_with: int = 0
    error: Exception | None = None


class _MicroBatcher:
    """Queue + lanes that score concurrent requests as one table.

    The queue is *bounded* (``max_queue_rows``): a submit that would
    overflow it raises :class:`ServiceOverloaded` without touching the
    queue — shedding is load-invisible to admitted requests.  Each
    entry may carry a monotonic deadline; the worker discards expired
    entries instead of scoring them, and the submitting handler raises
    :class:`DeadlineExceeded`.

    Scoring is delegated to ``score_fn(key, rows) -> bool matrix`` so
    the service decides the backend per batch — in-process scorer,
    worker pool, or registry lookup — and ``n_lanes`` scoring threads
    run the collect/score loop concurrently (one lane per worker
    process keeps a pool saturated; single-process serving keeps the
    original one-lane behaviour).  Entries coalesce into a batch only
    when they share a routing ``key``; a head-of-queue key switch ends
    the batch early rather than reordering requests.
    """

    def __init__(
        self,
        score_fn,
        linger_s: float = DEFAULT_LINGER_S,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
        max_queue_rows: int = DEFAULT_MAX_QUEUE_ROWS,
        n_lanes: int = 1,
    ) -> None:
        self._score_fn = score_fn
        self._linger_s = linger_s
        self._max_batch_rows = max_batch_rows
        self._max_queue_rows = max_queue_rows
        self._queue: deque[_Pending] = deque()
        self._queued_rows = 0
        self._inflight = 0
        self._cond = threading.Condition()
        self._stopped = False
        self.n_batches = 0
        self.n_rows = 0
        self.n_shed = 0
        self.n_expired = 0
        self._lanes = [
            threading.Thread(
                target=self._loop, name=f"score-lane-{i}", daemon=True
            )
            for i in range(max(1, n_lanes))
        ]
        for lane in self._lanes:
            lane.start()

    @property
    def queued_rows(self) -> int:
        return self._queued_rows

    def submit(
        self,
        rows: list[dict],
        deadline_s: float | None = None,
        key: str | None = None,
    ) -> _Pending:
        """Enqueue ``rows`` and block until their flags are ready."""
        pending = _Pending(
            rows=rows,
            deadline=(
                time.monotonic() + deadline_s
                if deadline_s is not None
                else None
            ),
            key=key,
        )
        with self._cond:
            if self._stopped:
                raise ReproError("scoring service is shut down")
            if self._queued_rows + len(rows) > self._max_queue_rows:
                self.n_shed += 1
                raise ServiceOverloaded(
                    f"admission queue is full "
                    f"({self._queued_rows} rows waiting, cap "
                    f"{self._max_queue_rows}); retry shortly"
                )
            self._queue.append(pending)
            self._queued_rows += len(rows)
            self._cond.notify_all()
        wait_s = (
            min(deadline_s, REQUEST_TIMEOUT_S)
            if deadline_s is not None
            else REQUEST_TIMEOUT_S
        )
        if not pending.event.wait(wait_s):
            # Abandoned by its handler: drop it from the queue so the
            # worker never scores rows nobody will read (if it already
            # joined an in-flight batch, that batch finishes normally).
            with self._cond:
                try:
                    self._queue.remove(pending)
                    self._queued_rows -= len(pending.rows)
                except ValueError:
                    pass
                if pending.deadline is not None:
                    self.n_expired += 1
            if pending.deadline is not None:
                raise DeadlineExceeded(
                    f"request deadline ({deadline_s}s) expired before "
                    f"its batch was scored"
                )
            raise TimeoutError("scoring request timed out")
        if pending.error is not None:
            raise pending.error
        return pending

    def idle(self) -> bool:
        """True when nothing is queued and no batch is being scored."""
        with self._cond:
            return not self._queue and self._inflight == 0

    def stats(self) -> dict:
        """Every batcher counter in *one* lock acquisition.

        ``/healthz`` and the ``/metrics`` collector both read this, so
        the two surfaces always agree and no reader ever sees a torn
        pair (e.g. ``n_batches`` from before a batch landed with
        ``n_rows`` from after).
        """
        with self._cond:
            return {
                "batches": self.n_batches,
                "rows": self.n_rows,
                "shed": self.n_shed,
                "expired": self.n_expired,
                "queued_rows": self._queued_rows,
                "inflight": self._inflight,
            }

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for lane in self._lanes:
            lane.join(timeout=5)

    # ------------------------------------------------------------------
    def _pop_live(self) -> _Pending | None:
        """Pop the next unexpired entry (caller holds the lock).

        Expired entries are failed with :class:`DeadlineExceeded` on
        the spot — their handler threads wake immediately rather than
        at their own wait timeout, and the worker never scores them.
        """
        while self._queue:
            pending = self._queue.popleft()
            self._queued_rows -= len(pending.rows)
            if (
                pending.deadline is not None
                and time.monotonic() > pending.deadline
            ):
                self.n_expired += 1
                pending.error = DeadlineExceeded(
                    "request deadline expired while queued"
                )
                pending.event.set()
                continue
            return pending
        return None

    def _pop_live_matching(self, key: str | None) -> _Pending | None:
        """Pop the head entry if it is live *and* shares ``key``.

        Expired heads are failed and skipped; a live head with a
        different routing key stays queued (FIFO order is preserved —
        the key switch just ends the current batch) and None is
        returned.
        """
        while self._queue:
            head = self._queue[0]
            if (
                head.deadline is not None
                and time.monotonic() > head.deadline
            ):
                self._queue.popleft()
                self._queued_rows -= len(head.rows)
                self.n_expired += 1
                head.error = DeadlineExceeded(
                    "request deadline expired while queued"
                )
                head.event.set()
                continue
            if head.key != key:
                return None
            self._queue.popleft()
            self._queued_rows -= len(head.rows)
            return head
        return None

    def _collect_batch(self) -> list[_Pending]:
        """Block for the first request, linger briefly for company."""
        with self._cond:
            first = None
            while first is None:
                while not self._queue and not self._stopped:
                    self._cond.wait(0.1)
                if self._stopped and not self._queue:
                    return []
                # May come back empty-handed when every queued entry
                # had already expired — keep waiting, don't stop.
                first = self._pop_live()
            batch = [first]
            total = len(first.rows)
            deadline = time.monotonic() + self._linger_s
            while total < self._max_batch_rows:
                if self._queue:
                    nxt = self._pop_live_matching(first.key)
                    if nxt is None:
                        break
                    batch.append(nxt)
                    total += len(nxt.rows)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                if not self._queue:
                    break
            self._inflight += 1
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            rows = [row for pending in batch for row in pending.rows]
            try:
                if rows:
                    flags = self._score_fn(batch[0].key, rows)
                else:
                    flags = None
                offset = 0
                for pending in batch:
                    n = len(pending.rows)
                    pending.flags = (
                        flags[offset : offset + n].tolist() if n else []
                    )
                    pending.batched_with = len(rows)
                    offset += n
                with self._cond:
                    self.n_batches += 1
                    self.n_rows += len(rows)
            except Exception as exc:  # fan the failure to every waiter
                for pending in batch:
                    pending.error = exc
            finally:
                for pending in batch:
                    pending.event.set()
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()


class ScoringService:
    """HTTP serving front-end over one or many detector artifacts."""

    def __init__(
        self,
        scorer: BatchScorer,
        host: str = "127.0.0.1",
        port: int = 0,
        linger_s: float = DEFAULT_LINGER_S,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        max_queue_rows: int = DEFAULT_MAX_QUEUE_ROWS,
        deadline_s: float | None = None,
        retry_after_s: int = DEFAULT_RETRY_AFTER_S,
        breaker_state=None,
        artifact_path: str | Path | None = None,
        workers: int = 0,
        registry=None,
        default_fingerprint: str | None = None,
    ) -> None:
        self.scorer = scorer
        self.started_at = time.time()
        self.n_requests = 0
        self.n_reloads = 0
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        #: Default per-request deadline; a payload's own "deadline_s"
        #: tightens (never loosens) it.  None = REQUEST_TIMEOUT_S only.
        self.deadline_s = deadline_s
        self.retry_after_s = retry_after_s
        #: Where the scorer was loaded from — the default /reload
        #: source.  None for live-pipeline services.
        self.artifact_path = (
            Path(artifact_path) if artifact_path is not None else None
        )
        #: Optional zero-arg callable returning the live circuit
        #: breaker's snapshot dict — wire it when the service fronts a
        #: pipeline that still holds its ResilientLLM (a service over a
        #: reloaded artifact has no breaker; /healthz reports null).
        self.breaker_state = breaker_state
        #: Multi-tenant mode: an ArtifactRegistry resolves routing keys
        #: (schema fingerprints) to scorers.  None = single-tenant with
        #: the PR 8 reload semantics.
        self._registry = registry
        self.default_fingerprint = default_fingerprint
        #: Worker-pool mode: batches score in N spawn-started processes
        #: that load the artifact themselves, so the front needs a path
        #: (in-memory-only scorers cannot cross a process boundary).
        if workers:
            if registry is None and self.artifact_path is None:
                raise ArtifactError(
                    "workers > 0 needs an artifact path (or a registry)"
                    " — worker processes load the scorer from disk"
                )
            self._pool = WorkerPool(workers)
        else:
            self._pool = None
        #: (path, arrays_sha256) of the single-tenant artifact, swapped
        #: as one tuple so worker batches never see a reload half-done.
        self._artifact_ref = (
            self.artifact_path,
            scorer.info.get("arrays_sha256"),
        )
        self._stats_lock = threading.Lock()
        self._draining = False
        #: Per-service metric namespace (no process-global registry, so
        #: tests running many services in one process never collide).
        self.metrics = MetricsRegistry()
        self._init_metrics()
        self._batcher = _MicroBatcher(
            self._score_batch_rows,
            linger_s=linger_s,
            max_batch_rows=max_batch_rows,
            max_queue_rows=max_queue_rows,
            n_lanes=workers if workers else 1,
        )
        self._server = _Server((host, port), _make_handler(self))
        self._thread: threading.Thread | None = None
        self._serving = False

    @classmethod
    def from_artifact(
        cls, path: str | Path, n_jobs: int | None = None, **kwargs
    ) -> "ScoringService":
        kwargs.setdefault("artifact_path", path)
        scorer = BatchScorer.from_artifact(path, n_jobs=n_jobs)
        # config.n_worker_procs is the persisted default; an explicit
        # workers= kwarg (CLI --workers) wins.
        kwargs.setdefault(
            "workers", getattr(scorer.config, "n_worker_procs", 0)
        )
        return cls(scorer, **kwargs)

    @classmethod
    def from_artifacts(
        cls,
        paths: list,
        budget_bytes: int | None = None,
        n_jobs: int | None = None,
        **kwargs,
    ) -> "ScoringService":
        """Host several fitted datasets behind one port (registry mode).

        The first path becomes the *default* tenant: it answers
        ``/score`` requests that name no ``fingerprint``/``dataset``,
        backs ``GET /artifact``, and is pinned against LRU eviction.
        ``budget_bytes`` bounds resident decoded-array memory; tenants
        evicted under pressure reload transparently on their next
        request.
        """
        from repro.serving.registry import ArtifactRegistry

        if not paths:
            raise ArtifactError("from_artifacts needs at least one path")
        registry = ArtifactRegistry(budget_bytes=budget_bytes, n_jobs=n_jobs)
        entries = [registry.upsert(p) for p in paths]
        default = entries[0]
        registry.pin(default.fingerprint)
        kwargs.setdefault("artifact_path", default.path)
        return cls(
            default.scorer,
            registry=registry,
            default_fingerprint=default.fingerprint,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def _init_metrics(self) -> None:
        """Register the service's metric namespace plus one collector.

        Event-driven metrics (HTTP counters, the latency histogram) are
        updated at the call site; everything the subsystems already
        count under their own locks — batcher shed/expired/row totals,
        registry hit/miss/eviction/load, fit-time token and resilience
        stats — is *bridged* by the collector at render time from the
        same snapshot functions ``/healthz`` reads, so the two surfaces
        can never disagree.
        """
        m = self.metrics
        self._m_http = m.counter(
            "repro_http_requests_total",
            "HTTP requests answered, by path and status",
            labelnames=("path", "status"),
        )
        self._m_latency = m.histogram(
            "repro_score_latency_seconds",
            "Batch scoring latency (one micro-batch), by tenant",
            labelnames=("tenant",),
        )
        self._m_tenant_rows = m.counter(
            "repro_tenant_scored_rows_total",
            "Rows scored, by tenant",
            labelnames=("tenant",),
        )
        self._m_worker_batches = m.counter(
            "repro_worker_batches_total",
            "Micro-batches dispatched to worker processes",
        )
        self._m_requests = m.counter(
            "repro_score_requests_total", "POST /score requests admitted"
        )
        self._m_reloads = m.counter(
            "repro_reloads_total", "Artifact reloads / registry upserts"
        )
        self._m_batches = m.counter(
            "repro_batches_total", "Micro-batches scored"
        )
        self._m_rows = m.counter(
            "repro_scored_rows_total", "Rows scored across all batches"
        )
        self._m_shed = m.counter(
            "repro_shed_total", "Requests shed at admission (queue full)"
        )
        self._m_expired = m.counter(
            "repro_deadline_expired_total",
            "Requests whose deadline expired before scoring",
        )
        self._m_queue_rows = m.gauge(
            "repro_queue_rows", "Rows waiting in the micro-batch queue"
        )
        self._m_inflight = m.gauge(
            "repro_inflight_batches", "Batches being scored right now"
        )
        self._m_draining = m.gauge(
            "repro_draining", "1 while the service drains for shutdown"
        )
        self._m_uptime = m.gauge(
            "repro_uptime_seconds", "Seconds since the service started"
        )
        self._m_workers = m.gauge(
            "repro_worker_processes", "Scoring worker processes"
        )
        self._m_reg = {
            stat: m.counter(
                f"repro_registry_{stat}_total",
                f"Artifact registry {stat} (multi-tenant mode)",
            )
            for stat in ("hits", "misses", "evictions", "loads")
        }
        self._m_reg_bytes = m.gauge(
            "repro_registry_resident_bytes",
            "Decoded array bytes resident in the artifact registry",
        )
        self._m_reg_tenants = m.gauge(
            "repro_registry_resident_tenants",
            "Tenants resident in the artifact registry",
        )
        self._m_fit_tokens = m.counter(
            "repro_fit_llm_tokens_total",
            "LLM tokens spent fitting the served artifact, by direction",
            labelnames=("direction",),
        )
        self._m_fit_requests = m.counter(
            "repro_fit_llm_requests_total",
            "LLM requests spent fitting the served artifact",
        )
        self._m_llm_retries = m.counter(
            "repro_llm_retries_total",
            "LLM attempts retried while fitting the served artifact",
        )
        self._m_llm_failed = m.counter(
            "repro_llm_failed_calls_total",
            "LLM calls that exhausted retries while fitting",
        )
        self._m_breaker_opens = m.counter(
            "repro_llm_breaker_opens_total",
            "Circuit-breaker open transitions while fitting",
        )
        self._m_breaker_open = m.gauge(
            "repro_llm_breaker_open",
            "1 while the live circuit breaker is open",
        )
        m.add_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Refresh bridged metrics from the subsystems' own snapshots."""
        stats = self._batcher.stats()
        self._m_batches.set_total(stats["batches"])
        self._m_rows.set_total(stats["rows"])
        self._m_shed.set_total(stats["shed"])
        self._m_expired.set_total(stats["expired"])
        self._m_queue_rows.set(stats["queued_rows"])
        self._m_inflight.set(stats["inflight"])
        with self._stats_lock:
            self._m_requests.set_total(self.n_requests)
            self._m_reloads.set_total(self.n_reloads)
        self._m_draining.set(1 if self._draining else 0)
        self._m_uptime.set(round(time.time() - self.started_at, 3))
        self._m_workers.set(self.n_workers)
        if self._registry is not None:
            snap = self._registry.snapshot()
            for stat, counter in self._m_reg.items():
                counter.set_total(snap[stat])
            self._m_reg_bytes.set(snap["resident_bytes"])
            self._m_reg_tenants.set(len(snap["resident"]))
        tokens = self.scorer.info.get("tokens") or {}
        if tokens:
            self._m_fit_tokens.set_total(
                tokens.get("input_tokens", 0), direction="input"
            )
            self._m_fit_tokens.set_total(
                tokens.get("output_tokens", 0), direction="output"
            )
            self._m_fit_requests.set_total(tokens.get("requests", 0))
        resilience = self.scorer.info.get("resilience") or {}
        fit_stats = resilience.get("fit_stats") or {}
        if fit_stats:
            self._m_llm_retries.set_total(fit_stats.get("retries", 0))
            self._m_llm_failed.set_total(fit_stats.get("failed_calls", 0))
            self._m_breaker_opens.set_total(
                fit_stats.get("breaker_opens", 0)
            )
        if self.breaker_state is not None:
            try:
                breaker = self.breaker_state()
            except Exception:
                breaker = {}
            self._m_breaker_open.set(
                1 if breaker.get("state") == "open" else 0
            )

    # ------------------------------------------------------------------
    def _score_batch_rows(self, key: str | None, rows: list[dict]):
        """The batcher's ``score_fn``: route one batch to its backend.

        Resolution happens at batch time (not admission time), so a
        reload or registry upsert takes effect at the next batch
        boundary — the same atomic-swap contract the single-process
        service always had.
        """
        with trace.span("batch", rows=len(rows)) as sp:
            if self._registry is not None and key is not None:
                entry = self._registry.get(key)
                tenant = entry.dataset or entry.fingerprint[:12]
                sp.set(tenant=tenant, key=key)
                if self._pool is not None:
                    flags = self._pool.score(
                        entry.path, entry.arrays_sha256, rows
                    )
                    self._m_worker_batches.inc()
                else:
                    flags = entry.scorer.score_rows(
                        rows, name="request"
                    ).mask.matrix
            else:
                tenant = self.scorer.info.get("dataset") or "default"
                sp.set(tenant=tenant)
                if self._pool is not None:
                    path, sha = self._artifact_ref
                    flags = self._pool.score(path, sha, rows)
                    self._m_worker_batches.inc()
                else:
                    flags = self.scorer.score_rows(
                        rows, name="request"
                    ).mask.matrix
        self._m_latency.observe(sp.seconds, tenant=tenant)
        self._m_tenant_rows.inc(len(rows), tenant=tenant)
        _log.debug(
            "score.batch",
            tenant=tenant,
            rows=len(rows),
            seconds=round(sp.seconds, 6),
        )
        return flags

    @property
    def registry(self):
        return self._registry

    @property
    def n_workers(self) -> int:
        return self._pool.n_workers if self._pool is not None else 0

    def warm_workers(self) -> None:
        """Pre-load the default artifact into every worker process.

        Optional: workers self-heal lazily on their first batch; the
        CLI calls this before announcing readiness so the first real
        request doesn't pay the artifact load.
        """
        if self._pool is None:
            return
        path, sha = self._artifact_ref
        if path is not None:
            self._pool.warm(path, sha)

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringService":
        """Serve in a daemon thread (tests, embedding in other code)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="score-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._serving = True
        try:
            self._server.serve_forever()
        finally:
            self._serving = False

    def stop(self) -> None:
        # BaseServer.shutdown() blocks on an event that only
        # serve_forever() sets — calling it on a never-started (or
        # already-stopped) service would wait forever.
        if self._serving:
            self._server.shutdown()
            self._serving = False
        self._server.server_close()
        self._batcher.stop()
        if self._pool is not None:
            self._pool.close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting, let in-flight work finish, then stop.

        New ``/score`` requests are rejected with 503 ``draining`` the
        moment this is called; already-admitted requests are scored and
        answered normally.  Returns True when the queue drained inside
        ``timeout_s`` (the service is stopped either way — a hung batch
        should not block process exit forever).
        """
        self._draining = True
        deadline = time.monotonic() + timeout_s
        drained = False
        while time.monotonic() < deadline:
            if self._batcher.idle():
                drained = True
                break
            time.sleep(0.02)
        self.stop()
        return drained

    # ------------------------------------------------------------------
    def handle_score(self, payload: dict) -> dict:
        """Validate one /score payload and run it through the batcher."""
        if self._draining:
            raise ServiceOverloaded(
                "service is draining for shutdown; retry against "
                "another replica"
            )
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ArtifactError('body must be {"rows": [{attr: value}, ...]}')
        deadline_s = self.deadline_s
        if "deadline_s" in payload:
            try:
                requested = float(payload["deadline_s"])
            except (TypeError, ValueError):
                raise ArtifactError(
                    f"deadline_s must be a positive number, "
                    f"got {payload['deadline_s']!r}"
                ) from None
            if requested <= 0:
                raise ArtifactError(
                    f"deadline_s must be a positive number, "
                    f"got {requested}"
                )
            deadline_s = (
                min(deadline_s, requested)
                if deadline_s is not None
                else requested
            )
        normalised = [
            {str(k): "" if v is None else str(v) for k, v in row.items()}
            for row in rows
        ]
        # Multi-tenant routing: an explicit fingerprint wins, a dataset
        # name resolves to one, and neither falls back to the pinned
        # default tenant.  Single-tenant services ignore both fields'
        # absence and route everything to their one scorer.
        key = None
        scorer = self.scorer
        if self._registry is not None:
            if payload.get("fingerprint") is not None:
                entry = self._registry.get(str(payload["fingerprint"]))
            elif payload.get("dataset") is not None:
                entry = self._registry.by_dataset(str(payload["dataset"]))
            else:
                entry = self._registry.get(self.default_fingerprint)
            key = entry.fingerprint
            scorer = entry.scorer
        # Validate before enqueueing: a bad request must fail alone,
        # not poison the micro-batch it would have joined.
        scorer.validate_rows(normalised)
        pending = self._batcher.submit(
            normalised, deadline_s=deadline_s, key=key
        )
        response = {
            "attributes": scorer.attributes,
            "flags": pending.flags,
            "n_rows": len(normalised),
            "batched_with": pending.batched_with,
        }
        if key is not None:
            response["fingerprint"] = key
        return response

    def reload_artifact(self, path: str | Path | None = None) -> dict:
        """Swap in a freshly loaded artifact without dropping requests.

        ``path`` defaults to the artifact the service was started from.

        Single-tenant: the new artifact must carry the same attribute
        schema — a service cannot change its wire contract mid-flight —
        anything else raises :class:`ArtifactError` and the old scorer
        keeps serving.

        Registry mode: reload is an *upsert* — a same-fingerprint
        artifact replaces that tenant, a new fingerprint adds one (the
        wire contract is per-tenant, so a new schema is a new tenant,
        not a mismatch).

        Either way the swap is atomic at a batch boundary: an in-flight
        batch finishes on the scorer it resolved when scoring started,
        and worker processes detect the changed ``arrays_sha256`` and
        reload before their next batch.
        """
        target = Path(path) if path is not None else self.artifact_path
        if target is None:
            raise ArtifactError(
                "no artifact path: the service was not started from an "
                "artifact and the reload request named none"
            )
        if self._registry is not None:
            entry = self._registry.upsert(target)
            if entry.fingerprint == self.default_fingerprint:
                self.scorer = entry.scorer
                self.artifact_path = entry.path
                self._artifact_ref = (entry.path, entry.arrays_sha256)
            with self._stats_lock:
                self.n_reloads += 1
            _log.info(
                "artifact.reloaded",
                artifact=str(target),
                fingerprint=entry.fingerprint,
            )
            return {
                "reloaded": True,
                "artifact": str(target),
                "fingerprint": entry.fingerprint,
                "resident": len(self._registry.fingerprints()),
                "llm_model": entry.scorer.llm_model,
                "train_rows": entry.scorer.train_rows,
                "arrays_sha256": entry.arrays_sha256,
                "reloads": self.n_reloads,
            }
        fresh = BatchScorer.from_artifact(
            target, n_jobs=self.scorer.config.n_jobs
        )
        if fresh.attributes != self.scorer.attributes:
            raise ArtifactError(
                f"reload schema mismatch: serving {self.scorer.attributes!r}"
                f", {target} carries {fresh.attributes!r}"
            )
        self.scorer = fresh
        self.artifact_path = target
        self._artifact_ref = (target, fresh.info.get("arrays_sha256"))
        with self._stats_lock:
            self.n_reloads += 1
        _log.info("artifact.reloaded", artifact=str(target))
        return {
            "reloaded": True,
            "artifact": str(target),
            "llm_model": fresh.llm_model,
            "train_rows": fresh.train_rows,
            "arrays_sha256": fresh.info.get("arrays_sha256"),
            "reloads": self.n_reloads,
        }

    def health(self) -> dict:
        resilience = self.scorer.info.get("resilience") or {}
        breaker = None
        if self.breaker_state is not None:
            try:
                breaker = self.breaker_state()
            except Exception:  # health must never 500 over telemetry
                breaker = {"state": "unknown"}
        # One lock-protected snapshot per request: a reader never sees
        # e.g. ``batches`` from before a batch landed with
        # ``rows_scored`` from after.  The /metrics collector reads the
        # same snapshot functions, so the two surfaces always agree.
        stats = self._batcher.stats()
        with self._stats_lock:
            n_requests = self.n_requests
            n_reloads = self.n_reloads
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": n_requests,
            "batches": stats["batches"],
            "rows_scored": stats["rows"],
            "queued_rows": stats["queued_rows"],
            "shed": stats["shed"],
            "deadline_expired": stats["expired"],
            "reloads": n_reloads,
            "degraded_attrs": resilience.get("degraded_attrs") or {},
            "circuit_breaker": breaker,
            "workers": self.n_workers,
            "registry": (
                self._registry.snapshot()
                if self._registry is not None
                else None
            ),
        }

    def readiness(self) -> tuple[int, dict]:
        """The /readyz answer: (status, body).

        Distinct from liveness: a draining replica is still *alive*
        (healthz 200, so orchestrators don't kill it mid-drain) but not
        *ready* (readyz 503, so load balancers stop routing to it).
        """
        if self._draining:
            return 503, {"ready": False, "reason": "draining"}
        return 200, {"ready": True}


class _Server(ThreadingHTTPServer):
    # Deep accept backlog: bursts past the admission cap must be shed
    # at the application layer with a clean 503 + Retry-After, not by
    # kernel connection resets when the default backlog (5) overflows.
    request_queue_size = 128
    daemon_threads = True


class _PayloadTooLarge(Exception):
    """Request body exceeded the service's ``max_body_bytes`` cap."""


def _make_handler(service: ScoringService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # TCP_NODELAY: the response is written as several small sends
        # (status line, headers, body); with Nagle on, the last one
        # waits ~40 ms for the client's delayed ACK on a keep-alive
        # connection — turning the reuse "win" into a 6x latency loss.
        disable_nagle_algorithm = True
        # StreamRequestHandler deadline on every socket read: a client
        # that stalls mid-body gets disconnected instead of pinning a
        # handler thread until process death.
        timeout = service.read_timeout_s

        #: Known endpoints; anything else is counted as "other" so a
        #: scanner probing random paths cannot explode the label space.
        _KNOWN_PATHS = {
            "/score", "/reload", "/healthz", "/readyz",
            "/artifact", "/artifact/arrays", "/metrics",
        }

        def log_message(self, *args) -> None:  # keep test output quiet
            pass

        def _count(self, status: int) -> None:
            path = (
                self.path if self.path in self._KNOWN_PATHS else "other"
            )
            service._m_http.inc(path=path, status=str(status))

        def _send(self, status: int, payload: dict) -> None:
            self._count(status)
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, status: int, code: str, message: str) -> None:
            # "error" stays a plain human-readable string (the wire
            # contract clients already parse); "code" is the stable
            # machine-routable label.
            self._send(status, {"error": message, "code": code})

        def _read_body(self) -> bytes:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError as exc:
                raise ArtifactError(
                    f"invalid Content-Length header: "
                    f"{self.headers.get('Content-Length')!r}"
                ) from exc
            cap = service.max_body_bytes
            if length > cap:
                raise _PayloadTooLarge
            return self.rfile.read(length)

        def _send_shed(self, message: str) -> None:
            # 503 + Retry-After: the one header a well-behaved client
            # needs to back off instead of hammering a full queue.
            self._count(503)
            body = json.dumps(
                {"error": message, "code": "overloaded"}
            ).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", str(service.retry_after_s))
            self.end_headers()
            self.wfile.write(body)

        def _stream_artifact_arrays(self) -> None:
            # Stream the bulk arrays file in bounded chunks: the ~46 MB
            # (v1) payload must never materialise in handler memory,
            # and Content-Length keeps the keep-alive connection clean.
            if service.artifact_path is None:
                self._send_error(
                    404,
                    "not_found",
                    "service was not started from an artifact directory",
                )
                return
            from repro.serving.artifact import ARRAYS_NAME

            arrays_path = service.artifact_path / ARRAYS_NAME
            if not arrays_path.is_file():
                self._send_error(
                    404, "not_found", f"{arrays_path} does not exist"
                )
                return
            size = arrays_path.stat().st_size
            self._count(200)
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(size))
            self.send_header(
                "Content-Disposition",
                f'attachment; filename="{ARRAYS_NAME}"',
            )
            self.end_headers()
            with open(arrays_path, "rb") as fh:
                while True:
                    chunk = fh.read(64 * 1024)
                    if not chunk:
                        break
                    self.wfile.write(chunk)

        def _send_metrics(self) -> None:
            # Prometheus text exposition — not JSON, so it bypasses
            # _send; the collector refreshes bridged metrics from the
            # same snapshots /healthz reads.
            body = service.metrics.render().encode("utf-8")
            self._count(200)
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._send(200, service.health())
            elif self.path == "/readyz":
                status, body = service.readiness()
                self._send(status, body)
            elif self.path == "/metrics":
                self._send_metrics()
            elif self.path == "/artifact":
                self._send(200, service.scorer.info)
            elif self.path == "/artifact/arrays":
                self._stream_artifact_arrays()
            else:
                self._send_error(
                    404, "not_found", f"unknown path {self.path!r}"
                )

        def do_POST(self) -> None:
            if self.path == "/reload":
                self._handle_reload()
                return
            if self.path != "/score":
                self._send_error(
                    404, "not_found", f"unknown path {self.path!r}"
                )
                return
            with service._stats_lock:
                service.n_requests += 1
            # Every log line emitted while this request is handled —
            # including batch-scoring lines on the lane threads via the
            # trace ids — carries the request id for correlation.
            request_id = uuid.uuid4().hex[:12]
            with obs_log.bind(request_id=request_id):
                self._handle_score_body()

        def _handle_score_body(self) -> None:
            try:
                payload = json.loads(self._read_body() or b"{}")
                if not isinstance(payload, dict):
                    raise ArtifactError("body must be a JSON object")
                response = service.handle_score(payload)
                _log.debug(
                    "score.ok",
                    rows=response["n_rows"],
                    batched_with=response["batched_with"],
                )
                self._send(200, response)
            except _PayloadTooLarge:
                # The oversized body was never read; drop the
                # connection after replying so its bytes cannot be
                # misread as a follow-up request on the keep-alive.
                self.close_connection = True
                self._send_error(
                    413,
                    "payload_too_large",
                    f"request body exceeds the "
                    f"{service.max_body_bytes}-byte limit; split the "
                    f"rows across smaller /score requests",
                )
            except json.JSONDecodeError as exc:
                self._send_error(400, "invalid_json", f"invalid JSON: {exc}")
            except ServiceOverloaded as exc:
                _log.warning("score.shed", error=str(exc))
                self._send_shed(str(exc))
            except DeadlineExceeded as exc:
                _log.warning("score.deadline_expired", error=str(exc))
                self._send_error(504, "deadline_exceeded", str(exc))
            except TimeoutError as exc:
                self._send_error(504, "deadline_exceeded", str(exc))
            except WorkerPoolBroken as exc:
                # A dead worker is a server fault, not a bad request.
                self._send_error(500, "internal", str(exc))
            except ReproError as exc:
                self._send_error(400, "bad_request", str(exc))
            except Exception as exc:  # internal failure, still JSON
                self._send_error(500, "internal", f"internal error: {exc}")

        def _handle_reload(self) -> None:
            try:
                payload = json.loads(self._read_body() or b"{}")
                if not isinstance(payload, dict):
                    raise ArtifactError("body must be a JSON object")
                self._send(
                    200, service.reload_artifact(payload.get("artifact"))
                )
            except _PayloadTooLarge:
                self.close_connection = True
                self._send_error(
                    413, "payload_too_large", "reload body too large"
                )
            except json.JSONDecodeError as exc:
                self._send_error(400, "invalid_json", f"invalid JSON: {exc}")
            except ReproError as exc:
                self._send_error(400, "bad_request", str(exc))
            except Exception as exc:
                self._send_error(500, "internal", f"internal error: {exc}")

    return Handler
