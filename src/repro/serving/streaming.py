"""Out-of-core sharded scoring and sampled fitting (streaming layer).

The fit/score split (PR 5) froze everything scoring needs into
per-attribute statistics, which makes scoring *embarrassingly
row-parallel*: a row's features and prediction depend only on the row's
own cells (plus the frozen training stats), never on which other rows
share the batch.  This module exploits that in two directions:

* **sharded scoring** — :func:`score_chunks` streams an arbitrarily
  large row source (typically :func:`repro.data.csvio.iter_csv_chunks`)
  shard-by-shard through a :class:`~repro.serving.scorer.BatchScorer`,
  fanning shards across the :mod:`repro.parallel` worker pool with a
  bounded read-ahead window, so peak memory is a small multiple of one
  shard whatever the total row count.  The assembled mask is
  **byte-identical** to the in-memory ``score_table`` for every
  ``(chunk_rows, jobs)`` combination (pinned in
  ``tests/test_streaming.py``), and the result carries a manifest with
  a SHA-256 checksum per shard mask.
* **sampled fitting** — :func:`reservoir_sample_chunks` draws a seeded
  uniform row sample from a chunk stream in one pass (Algorithm R,
  row-at-a-time, so the draw sequence — hence the sample — is
  independent of how the stream is chunked), letting the LLM-guided
  fit run on a bounded sample of a million-row table whose frozen
  statistics then score the full table shard-by-shard.
* **resumable jobs** (PR 8) — a :class:`~repro.serving.jobs.ScoreJournal`
  records every completed shard (mask bytes + SHA-256) under a job
  fingerprint as the stream is scored; a killed ``score_csv`` re-run
  with ``resume=True`` replays the journal's verified prefix with
  **zero re-scored shards** and continues from the cut, assembling a
  mask byte-identical to the uninterrupted run.  Malformed CSV rows
  can be quarantined to a sidecar (``bad_rows="quarantine"``) instead
  of killing the job.

Zero LLM calls happen anywhere in this module: a ``BatchScorer`` holds
no LLM client at all, and sampling is pure row selection.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.csvio import QuarantineWriter, iter_csv_chunks
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.errors import DataError
from repro.ml.rng import spawn
from repro.obs import trace
from repro.parallel import effective_jobs, parallel_map_stream
from repro.serving.jobs import ScoreJournal, job_fingerprint

#: Default shard size for out-of-core scoring when the caller does not
#: choose one (``config.chunk_rows`` overrides).  Sized so one shard's
#: strings + feature matrices stay tens of MB for the benchmark
#: tables' widths while keeping per-shard overhead negligible.
DEFAULT_CHUNK_ROWS = 50_000

MANIFEST_FORMAT = "zeroed-streaming-score-manifest"
MANIFEST_VERSION = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# ----------------------------------------------------------------------
# Sampled fit: one-pass seeded reservoir over a chunk stream
# ----------------------------------------------------------------------
@dataclass
class ReservoirSample:
    """A seeded uniform row sample drawn from a streamed table."""

    table: Table
    """The sampled rows, in their original stream order."""

    indices: list[int]
    """Global (stream-order) row ids of the sampled rows, ascending."""

    total_rows: int
    """Rows seen in the stream (the sample's population size)."""

    requested_rows: int
    seed: int
    source: str | None = None
    chunk_rows: int | None = None

    def provenance(self) -> dict:
        """JSON-safe sample provenance for artifact manifests.

        Records how the training rows were chosen — enough for an
        operator to reproduce the sample (method, seed, budget,
        population) and to checksum-verify the chosen row ids without
        storing all of them.
        """
        return {
            "method": "reservoir",
            "requested_rows": self.requested_rows,
            "sampled_rows": self.table.n_rows,
            "source_rows": self.total_rows,
            "seed": self.seed,
            "source": self.source,
            "chunk_rows": self.chunk_rows,
            "indices_sha256": _sha256(
                ",".join(str(i) for i in self.indices).encode()
            ),
        }


def reservoir_sample_chunks(
    chunks: Iterable[Table],
    sample_rows: int,
    seed: int,
    *,
    source: str | None = None,
    chunk_rows: int | None = None,
) -> ReservoirSample:
    """Draw ``sample_rows`` rows uniformly from a chunk stream.

    Algorithm R over the concatenated row stream: the first
    ``sample_rows`` rows fill the reservoir, then row ``i`` replaces a
    uniformly chosen slot with probability ``sample_rows / (i + 1)``.
    One RNG draw per row *beyond* the reservoir, in stream order — so
    for a fixed seed the sample is a pure function of the row sequence,
    independent of where chunk boundaries fall (pinned by a hypothesis
    property in ``tests/test_properties_pipeline.py``).  The sampled
    table keeps the rows in original order (order-stable), which keeps
    every downstream seeded stage independent of reservoir internals.
    """
    if sample_rows < 1:
        raise DataError(f"sample_rows must be >= 1, got {sample_rows}")
    rng = spawn(seed, "streaming/reservoir")
    reservoir: list[tuple[int, tuple[str, ...]]] = []
    attributes: list[str] | None = None
    name = "sample"
    total = 0
    for chunk in chunks:
        if attributes is None:
            attributes = chunk.attributes
            name = chunk.name
        elif chunk.attributes != attributes:
            raise DataError(
                f"chunk schema changed mid-stream: {chunk.attributes!r} "
                f"after {attributes!r}"
            )
        for local in range(chunk.n_rows):
            if total < sample_rows:
                reservoir.append((total, chunk.row_tuple(local)))
            else:
                j = int(rng.integers(0, total + 1))
                if j < sample_rows:
                    reservoir[j] = (total, chunk.row_tuple(local))
            total += 1
    if attributes is None:
        raise DataError("cannot sample from an empty chunk stream")
    reservoir.sort(key=lambda entry: entry[0])
    table = Table.from_rows(
        attributes, [row for _, row in reservoir], name=name
    )
    return ReservoirSample(
        table=table,
        indices=[i for i, _ in reservoir],
        total_rows=total,
        requested_rows=sample_rows,
        seed=seed,
        source=source,
        chunk_rows=chunk_rows,
    )


def reservoir_sample_csv(
    path: str | Path,
    sample_rows: int,
    seed: int,
    chunk_rows: int | None = None,
) -> ReservoirSample:
    """One-pass reservoir sample of a CSV file, fixed memory.

    Streams the file through :func:`iter_csv_chunks`; at no point do
    more than ``chunk_rows`` source rows plus the reservoir itself live
    in memory.
    """
    chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
    return reservoir_sample_chunks(
        iter_csv_chunks(path, chunk_rows),
        sample_rows,
        seed,
        source=str(path),
        chunk_rows=chunk_rows,
    )


# ----------------------------------------------------------------------
# Sharded scoring
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Bookkeeping for one scored shard (manifest entry)."""

    index: int
    row_offset: int
    n_rows: int
    error_cells: int
    mask_sha256: str
    seconds: float


@dataclass
class StreamingScoreResult:
    """A global mask assembled from shard-scored chunks, plus manifest.

    ``mask`` is the full-table mask — shard ``k``'s local row ``i`` at
    global row ``shards[k].row_offset + i`` — byte-identical to what
    the in-memory ``score_table`` produces on the concatenated table.
    """

    mask: ErrorMask
    shards: list[ShardResult]
    chunk_rows: int | None
    jobs: int
    seconds: float
    dataset: str | None = None
    details: dict = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.mask.n_rows

    @property
    def rows_per_s(self) -> float:
        return self.total_rows / self.seconds if self.seconds > 0 else 0.0

    def manifest(self) -> dict:
        """JSON-safe scoring manifest with per-shard checksums.

        The shard checksums let a consumer verify any re-scored shard
        against the recorded run (scoring is deterministic) without
        keeping shard masks around, and the global checksum pins the
        assembled mask.
        """
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "dataset": self.dataset,
            "chunk_rows": self.chunk_rows,
            "jobs": self.jobs,
            "n_shards": len(self.shards),
            "total_rows": self.total_rows,
            "error_cells": self.mask.error_count(),
            "seconds": round(self.seconds, 4),
            "rows_per_s": round(self.rows_per_s, 1),
            "mask_sha256": _sha256(self.mask.matrix.tobytes()),
            "attributes": self.mask.attributes,
            "shards": [
                {
                    "index": s.index,
                    "row_offset": s.row_offset,
                    "n_rows": s.n_rows,
                    "error_cells": s.error_cells,
                    "mask_sha256": s.mask_sha256,
                    "seconds": round(s.seconds, 4),
                }
                for s in self.shards
            ],
            "details": self.details,
        }

    def write_manifest(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.manifest(), indent=2) + "\n")
        return path


def score_chunks(
    scorer,
    chunks: Iterable[Table],
    *,
    chunk_rows: int | None = None,
    n_jobs: int = 1,
    journal: ScoreJournal | None = None,
) -> StreamingScoreResult:
    """Score a stream of table chunks, bounded memory, ordered assembly.

    ``scorer`` is a :class:`~repro.serving.scorer.BatchScorer`; each
    chunk goes through its ``score_table`` (zero LLM calls, frozen
    training statistics).  With ``n_jobs > 1`` shards fan across the
    worker pool via :func:`repro.parallel.parallel_map_stream` — each
    shard scored per-attribute-serially to keep one pool level — with
    a bounded read-ahead window, so at most ``~2 * jobs`` chunks are
    ever materialized.  Shard masks land at their global row offsets
    in stream order; because every shard's mask is a pure function of
    its own rows, the assembled mask is byte-identical for every
    ``(chunk_rows, n_jobs)`` combination and equal to the in-memory
    path.  Raises :class:`~repro.errors.ArtifactError` on the first
    chunk whose schema differs from the fitted one.

    With a ``journal`` (see :mod:`repro.serving.jobs`) every completed
    shard is persisted as it is assembled, and the journal's already-
    verified prefix is *replayed* instead of re-scored: those chunks
    are pulled from the stream only to confirm their shape, their
    masks come from disk.  The caller owns the journal's lifecycle
    (``close``); this function never closes it.
    """
    jobs = effective_jobs(n_jobs)
    # One pool level: the shard fan-out owns the workers, each shard
    # scores its attributes serially.  (jobs == 1 keeps the scorer's
    # own per-attribute setting — the plain serial loop.)
    shard_scorer = scorer.with_jobs(1) if jobs > 1 else scorer

    def with_offsets(stream: Iterable[Table]) -> Iterator[tuple[int, Table]]:
        offset = 0
        for chunk in stream:
            yield offset, chunk
            offset += chunk.n_rows

    def score_one(job: tuple[int, Table]):
        offset, chunk = job
        with trace.span(
            "shard", offset=offset, rows=chunk.n_rows
        ) as sp:
            result = shard_scorer.score_table(chunk, row_offset=offset)
        return offset, chunk, result, sp.seconds

    start = time.perf_counter()
    shard_masks: list[ErrorMask] = []
    shards: list[ShardResult] = []
    dataset = None
    stream = with_offsets(chunks)

    # Replay the journal's verified prefix: each recorded shard must
    # line up with the live stream (same offset, same row count) — a
    # drifted source means the fingerprint guard was defeated (e.g. a
    # same-size edit), and splicing would corrupt the mask.
    resumed = list(journal.verified) if journal is not None else []
    for record in resumed:
        try:
            offset, chunk = next(stream)
        except StopIteration:
            raise DataError(
                f"journal records {len(resumed)} shards but the source "
                f"stream ended after {record.index}; the source changed "
                "— re-run without resume"
            ) from None
        if offset != record.row_offset or chunk.n_rows != record.n_rows:
            raise DataError(
                f"journal shard {record.index} covers rows "
                f"{record.row_offset}..{record.row_offset + record.n_rows} "
                f"but the stream yields {offset}..{offset + chunk.n_rows}; "
                "the source changed — re-run without resume"
            )
        dataset = dataset or chunk.name
        shard_masks.append(journal.shard_mask(record, scorer.attributes))
        shards.append(
            ShardResult(
                index=record.index,
                row_offset=record.row_offset,
                n_rows=record.n_rows,
                error_cells=record.error_cells,
                mask_sha256=record.mask_sha256,
                seconds=0.0,
            )
        )

    for offset, chunk, result, seconds in parallel_map_stream(
        score_one, stream, n_jobs=jobs
    ):
        dataset = dataset or chunk.name
        shard = ShardResult(
            index=len(shards),
            row_offset=offset,
            n_rows=chunk.n_rows,
            error_cells=result.mask.error_count(),
            mask_sha256=_sha256(result.mask.matrix.tobytes()),
            seconds=seconds,
        )
        if journal is not None:
            journal.append(
                index=shard.index,
                row_offset=shard.row_offset,
                mask=result.mask,
                mask_sha256=shard.mask_sha256,
            )
        shard_masks.append(result.mask)
        shards.append(shard)
    if shard_masks:
        mask = ErrorMask.vstack(shard_masks)
    else:
        mask = ErrorMask.zeros(scorer.attributes, 0)
    details = {
        "engines": dict(scorer.info.get("engines") or {}),
        "train_rows": scorer.train_rows,
        "serving": True,
        "streaming": True,
    }
    if journal is not None:
        details["journal"] = str(journal.directory)
        details["resumed_shards"] = len(resumed)
        details["journal_invalidated"] = journal.invalidated
    return StreamingScoreResult(
        mask=mask,
        shards=shards,
        chunk_rows=chunk_rows,
        jobs=jobs,
        seconds=time.perf_counter() - start,
        dataset=dataset,
        details=details,
    )


def score_csv(
    scorer,
    path: str | Path,
    *,
    chunk_rows: int | None = None,
    n_jobs: int = 1,
    journal_dir: str | Path | None = None,
    resume: bool = False,
    bad_rows: str | None = None,
    quarantine_path: str | Path | None = None,
    opener=None,
) -> StreamingScoreResult:
    """Stream-score a CSV file shard-by-shard with bounded memory.

    The out-of-core ``score-csv`` path: the file is never materialized
    whole — :func:`repro.data.csvio.iter_csv_chunks` feeds
    :func:`score_chunks` one shard at a time.

    With ``journal_dir`` the run is **resumable**: every completed shard
    is journaled (see :mod:`repro.serving.jobs`), and ``resume=True``
    replays the journal's verified prefix without re-scoring, provided
    the job fingerprint (artifact, source path + size, ``chunk_rows``,
    worker count, bad-row policy) still matches — otherwise the journal
    is invalidated and the run restarts at shard 0.  ``bad_rows``
    (default: ``scorer.config.bad_rows``) picks the malformed-row
    policy; under ``"quarantine"`` offenders land in
    ``quarantine_path`` (default ``<path>.quarantine.jsonl``) instead
    of failing the job.  ``opener`` is the chaos-layer injection point
    for the journal and sidecar files.
    """
    path = Path(path)
    chunk_rows = chunk_rows or scorer.config.chunk_rows or DEFAULT_CHUNK_ROWS
    if bad_rows is None:
        bad_rows = getattr(scorer.config, "bad_rows", "fail")
    if resume and journal_dir is None:
        raise DataError("resume=True requires a journal_dir")
    jobs = effective_jobs(n_jobs)

    journal = None
    quarantine = None
    try:
        if bad_rows == "quarantine":
            quarantine = QuarantineWriter(
                quarantine_path or path.with_suffix(path.suffix + ".quarantine.jsonl"),
                opener=opener,
            )
        if journal_dir is not None:
            journal = ScoreJournal.begin(
                journal_dir,
                job_fingerprint(
                    scorer,
                    path,
                    chunk_rows=chunk_rows,
                    n_jobs=jobs,
                    bad_rows=bad_rows,
                ),
                resume=resume,
                opener=opener,
            )
        result = score_chunks(
            scorer,
            iter_csv_chunks(
                path, chunk_rows, bad_rows=bad_rows, quarantine=quarantine
            ),
            chunk_rows=chunk_rows,
            n_jobs=jobs,
            journal=journal,
        )
        if quarantine is not None:
            result.details["quarantined_rows"] = quarantine.total
            result.details["quarantine_path"] = str(quarantine.path)
        return result
    finally:
        if journal is not None:
            journal.close()
        if quarantine is not None:
            quarantine.close()


def iter_table_chunks(table: Table, chunk_rows: int) -> Iterator[Table]:
    """Slice an in-memory table into ``chunk_rows``-row chunks.

    The test/benchmark counterpart of ``iter_csv_chunks`` — chunked
    scoring of a table that already exists, e.g. to pin equivalence
    against ``score_table``.
    """
    if chunk_rows < 1:
        raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
    for start in range(0, table.n_rows, chunk_rows):
        yield table.select_rows(
            range(start, min(start + chunk_rows, table.n_rows))
        )
