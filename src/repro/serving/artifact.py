"""Versioned on-disk detector artifacts (serving subsystem, PR 5).

A fitted ZeroED pipeline is an expensive object to produce — criteria
reasoning, representative sampling, holistic LLM labeling, mutual
verification, MLP training — but a cheap one to *describe*: everything
scoring needs is a handful of per-attribute facts.  An artifact
captures exactly those facts in two files under one directory::

    artifact/
      manifest.json   structure: schema, config, engines, per-attribute
                      criteria (source + accuracy), model kinds,
                      embedding parameters, integrity checksum
      arrays.npz      bulk data: value-frequency tables, vicinity
                      pair/lhs counts, MLP flat parameter vectors,
                      scaler statistics

Design points:

* **Versioned** — ``format``/``version`` fields gate loading; a future
  incompatible layout bumps :data:`ARTIFACT_VERSION` and old readers
  fail with a clean :class:`~repro.errors.ArtifactError` instead of
  garbage scores.
* **Integrity-checked** — the manifest records the SHA-256 of
  ``arrays.npz`` and a fingerprint of the schema; checksum or
  fingerprint mismatches, unreadable JSON, pickled arrays, and
  non-compiling criteria all raise :class:`ArtifactError`.  These are
  *corruption* checks (truncated copies, bit rot, mismatched file
  pairs), **not** an authentication boundary: the checksums are
  unkeyed, and restoring an artifact compiles its criteria sources
  (in the restricted :mod:`repro.criteria` namespace), so load
  artifacts only from sources you trust, exactly as you would a
  pickle.
* **Bitwise-faithful** — MLP parameters and scaler statistics are
  stored at full precision in their training dtype, and the frozen
  featurizer statistics restore the exact lookup tables the live
  featurizer consults on foreign tables, so a reloaded
  :class:`~repro.serving.scorer.BatchScorer` reproduces the in-memory
  scorer's masks bit for bit (pinned in ``tests/test_serving.py``).
* **Forward-compatible provenance** — later PRs append *optional*
  manifest keys that old artifacts simply lack; readers treat an
  absent key as "recorded before that PR" and never fail on it.
  Current optional keys: ``resilience`` (PR 6 — degraded attributes
  and retry accounting from the fitting run; absent = pre-PR-6) and
  ``sample`` (PR 7 — reservoir-sampling provenance when the fit ran
  on a sampled subset: method, requested/sampled/source row counts,
  seed and an index checksum; ``null`` = the fit saw every row,
  absent = pre-PR-7).  New provenance must follow the same pattern:
  optional key, documented null/absent semantics, no version bump.

Format v2 (PR 9) — compressed, deduplicated storage
---------------------------------------------------

Version 1 stored every array raw in an uncompressed ``arrays.npz``;
the bulk of a real artifact is *strings* — per-attribute vocabularies
plus vicinity pair tables that repeat the same values thousands of
times, each padded to the array's widest entry by NumPy's fixed-width
unicode dtype.  Version 2 keeps the exact same logical arrays (and
``restore()`` is untouched) but encodes them before writing:

* **shared string pool** — every unicode array becomes an ``int32``
  index array into one deduplicated ``__pool__`` of distinct strings
  (first-appearance order, so the encoding is deterministic);
* **lossless numeric downcasts** — ``int64`` count arrays shrink to
  the smallest integer dtype that holds their range; ``float64``
  arrays (MLP parameters, scaler statistics) are stored as
  ``float32`` *only* when every element survives the round-trip
  bitwise, so fast-engine models (trained in float32) always shrink
  while exact-engine float64 models keep full precision;
* **compressed container** — the encoded arrays are written with
  ``np.savez_compressed`` (deflate) instead of ``np.savez``.

Decoding restores the original arrays — values *and* dtypes —
bit-for-bit, so a v2 round-trip scores byte-identically to v1 and to
the in-memory scorer.  The ``encoding`` manifest key records which
keys were pooled/downcast; the SHA-256 integrity scheme is unchanged
(the checksum covers the on-disk payload).  Readers accept versions
1 and 2; ``save(..., version=1)`` still writes the v1 layout for
back-compat tooling and tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import ZeroEDConfig
from repro.core.detector import ErrorDetector
from repro.core.featurize import AttributeFeaturizer
from repro.criteria import Criterion
from repro.errors import ArtifactError, ReproError
from repro.text.embeddings import SubwordHashEmbedding
from repro.version import __version__

ARTIFACT_FORMAT = "zeroed-detector-artifact"
ARTIFACT_VERSION = 2
#: Versions this reader understands.  v1 = raw uncompressed arrays
#: (PR 5); v2 = pooled strings + lossless downcasts + deflate (PR 9).
SUPPORTED_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: v2 string-pool array name inside ``arrays.npz`` — reserved; never a
#: logical array key (those are all ``a{i}_...``).
POOL_KEY = "__pool__"


def schema_fingerprint(attributes: list[str]) -> str:
    """Stable fingerprint of an attribute schema (order-sensitive)."""
    joined = "\x1f".join(attributes)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _str_array(values: list[str]) -> np.ndarray:
    if not values:
        return np.zeros(0, dtype="<U1")
    return np.asarray(values, dtype=np.str_)


#: Signed integer dtypes tried smallest-first for the v2 downcast.
_INT_DOWNCASTS = (np.int8, np.int16, np.int32)


def _encode_v2(
    arrays: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], dict]:
    """Encode logical arrays into the v2 on-disk layout.

    Returns ``(encoded_arrays, encoding_meta)``; the meta dict lands in
    the manifest under ``"encoding"`` and drives :func:`_decode_v2`.
    Every transformation is lossless: pooled strings decode to the
    identical unicode arrays, and numeric downcasts are applied only
    when the round-trip back to the source dtype is bitwise exact.
    """
    pool_index: dict[str, int] = {}
    encoded: dict[str, np.ndarray] = {}
    pooled: list[str] = []
    int_cast: dict[str, str] = {}
    float_cast: dict[str, str] = {}
    for key, arr in arrays.items():
        if arr.dtype.kind == "U":
            indices = np.empty(arr.shape[0], dtype=np.int32)
            for pos, value in enumerate(arr.tolist()):
                slot = pool_index.get(value)
                if slot is None:
                    slot = pool_index[value] = len(pool_index)
                indices[pos] = slot
            encoded[key] = indices
            pooled.append(key)
        elif arr.dtype == np.int64 and arr.ndim == 1:
            target = arr
            if arr.size:
                lo, hi = int(arr.min()), int(arr.max())
                for small in _INT_DOWNCASTS:
                    info = np.iinfo(small)
                    if info.min <= lo and hi <= info.max:
                        target = arr.astype(small)
                        break
            else:
                target = arr.astype(np.int8)
            encoded[key] = target
            if target.dtype != np.int64:
                int_cast[key] = "int64"
        elif arr.dtype == np.float64:
            shrunk = arr.astype(np.float32)
            if np.array_equal(
                shrunk.astype(np.float64), arr
            ) and np.array_equal(
                np.signbit(shrunk.astype(np.float64)), np.signbit(arr)
            ):
                encoded[key] = shrunk
                float_cast[key] = "float64"
            else:
                encoded[key] = arr
        else:
            encoded[key] = arr
    encoded[POOL_KEY] = _str_array(list(pool_index))
    meta = {
        "scheme": "pool+downcast",
        "pooled_strings": pooled,
        "int_cast": int_cast,
        "float_cast": float_cast,
    }
    return encoded, meta


def _decode_v2(
    encoded: dict[str, np.ndarray], meta: dict
) -> dict[str, np.ndarray]:
    """Invert :func:`_encode_v2` back to the logical v1-shaped arrays."""
    if not isinstance(meta, dict) or meta.get("scheme") != "pool+downcast":
        raise ArtifactError(
            f"v2 artifact has an unknown encoding scheme: "
            f"{meta.get('scheme') if isinstance(meta, dict) else meta!r}"
        )
    if POOL_KEY not in encoded:
        raise ArtifactError(f"v2 artifact is missing its {POOL_KEY} array")
    pool = encoded[POOL_KEY].tolist()
    pooled = set(meta.get("pooled_strings") or [])
    int_cast = meta.get("int_cast") or {}
    float_cast = meta.get("float_cast") or {}
    arrays: dict[str, np.ndarray] = {}
    for key, arr in encoded.items():
        if key == POOL_KEY:
            continue
        if key in pooled:
            if arr.size and (arr.min() < 0 or arr.max() >= len(pool)):
                raise ArtifactError(
                    f"{key}: string-pool index out of range"
                )
            arrays[key] = _str_array([pool[i] for i in arr.tolist()])
        elif key in int_cast:
            arrays[key] = arr.astype(int_cast[key])
        elif key in float_cast:
            arrays[key] = arr.astype(float_cast[key])
        else:
            arrays[key] = arr
    return arrays


@dataclass
class RestoredState:
    """Everything a scorer needs, rebuilt from an artifact."""

    config: ZeroEDConfig
    engine: str
    detector: ErrorDetector
    featurizers: dict[str, AttributeFeaturizer]
    correlated: dict[str, list[str]]
    attributes: list[str]
    llm_model: str
    train_rows: int
    info: dict


class DetectorArtifact:
    """In-memory form of one saved (or about-to-be-saved) artifact.

    ``manifest`` holds the JSON-serialisable structure; ``arrays`` maps
    flat keys (``a{i}_...``, indexed by attribute position) to NumPy
    arrays destined for ``arrays.npz``.
    """

    def __init__(self, manifest: dict, arrays: dict[str, np.ndarray]) -> None:
        self.manifest = manifest
        self.arrays = arrays

    # ------------------------------------------------------------------
    # Construction from a fitted pipeline
    # ------------------------------------------------------------------
    @classmethod
    def from_fitted(cls, fitted) -> "DetectorArtifact":
        """Capture a :class:`~repro.core.pipeline.FittedZeroED`."""
        config = fitted.config
        attributes = fitted.attributes
        arrays: dict[str, np.ndarray] = {}
        per_attribute: list[dict] = []
        models = fitted.detector.export_models()
        for i, attr in enumerate(attributes):
            featurizer = fitted.feature_space.featurizers[attr]
            frozen = featurizer.export_frozen()
            values = list(frozen["value_counts"])
            arrays[f"a{i}_values"] = _str_array(values)
            arrays[f"a{i}_counts"] = np.asarray(
                [frozen["value_counts"][v] for v in values], dtype=np.int64
            )
            vicinity_attrs = list(frozen["vicinity"])
            for j, q in enumerate(vicinity_attrs):
                pair_counts, lhs_counts = frozen["vicinity"][q]
                pairs = list(pair_counts)
                arrays[f"a{i}_v{j}_pair_lhs"] = _str_array(
                    [p[0] for p in pairs]
                )
                arrays[f"a{i}_v{j}_pair_rhs"] = _str_array(
                    [p[1] for p in pairs]
                )
                arrays[f"a{i}_v{j}_pair_count"] = np.asarray(
                    [pair_counts[p] for p in pairs], dtype=np.int64
                )
                lhs_values = list(lhs_counts)
                arrays[f"a{i}_v{j}_lhs_values"] = _str_array(lhs_values)
                arrays[f"a{i}_v{j}_lhs_counts"] = np.asarray(
                    [lhs_counts[v] for v in lhs_values], dtype=np.int64
                )
            accuracies = fitted.training[attr].criteria_accuracies
            criteria_spec = [
                {
                    "name": crit.name,
                    "source": crit.source,
                    "context_attrs": list(crit.context_attrs),
                    "accuracy": accuracies.get(crit.name),
                }
                for crit in featurizer.criteria
            ]
            model = models[attr]
            if model["kind"] == "constant":
                model_spec = {"kind": "constant", "constant": bool(model["constant"])}
            else:
                arrays[f"a{i}_mlp_flat"] = model["flat"]
                arrays[f"a{i}_scaler_mean"] = model["scaler_mean"]
                arrays[f"a{i}_scaler_scale"] = model["scaler_scale"]
                model_spec = {
                    "kind": "mlp",
                    "n_features": int(model["n_features"]),
                }
            per_attribute.append(
                {
                    "name": attr,
                    "correlated": list(frozen["correlated"]),
                    "vicinity": vicinity_attrs,
                    "n_rows": int(frozen["n_rows"]),
                    "criteria": criteria_spec,
                    "model": model_spec,
                }
            )
        embedding = fitted.feature_space.embedding
        manifest = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "created_at": time.time(),
            "package_version": __version__,
            "dataset": fitted.table.name,
            "train_rows": fitted.table.n_rows,
            "llm_model": fitted.llm.model_name,
            "attributes": attributes,
            "schema_fingerprint": schema_fingerprint(attributes),
            "config": dataclasses.asdict(config),
            "engines": {
                "sampling": config.sampling_engine,
                "detector": fitted.detector.engine,
            },
            "embedding": (
                {
                    "dim": embedding.dim,
                    "n_buckets": embedding.n_buckets,
                    "seed": config.seed,
                }
                if embedding is not None
                else None
            ),
            "per_attribute": per_attribute,
            # Fit-time degradation provenance (PR 6): which attributes
            # fell back to statistical signals, and at which stage.  An
            # operator deciding whether to trust or refit a detector
            # needs this next to the artifact, not in a lost fit log.
            "resilience": {
                "degraded_attrs": fitted.details.get("degraded_attrs", {}),
                # Retry/breaker accounting from the fitting run (PR 10):
                # feeds the serving layer's /metrics so operators see
                # how rough the fit was without digging up its logs.
                "fit_stats": fitted.details.get("resilience") or {},
            },
            # Fit-time token spend (PR 10): requests / input_tokens /
            # output_tokens / total_tokens from the fit's ledger.
            "tokens": dict(fitted.ledger_summary),
            # Fit-time sample provenance (PR 7): how the training rows
            # were chosen when the fit ran on a reservoir sample of a
            # larger table (null = the fit saw every row; key absent =
            # pre-PR-7 artifact, provenance unknown).  An operator
            # judging a detector against a million-row source needs
            # the sample budget/seed next to the artifact.
            "sample": fitted.details.get("sample"),
        }
        return cls(manifest, arrays)

    # ------------------------------------------------------------------
    # Disk round-trip
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, version: int | None = None) -> Path:
        """Write ``manifest.json`` + ``arrays.npz`` under ``path``.

        ``version`` picks the on-disk layout (default: the current
        :data:`ARTIFACT_VERSION`).  v2 pools strings, downcasts
        losslessly and compresses; v1 writes the historical raw
        uncompressed bundle — both decode to the same logical arrays,
        so the choice never changes scores, only bytes on disk.
        """
        version = ARTIFACT_VERSION if version is None else int(version)
        if version not in SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"cannot write artifact version {version}; supported: "
                f"{SUPPORTED_VERSIONS}"
            )
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = dict(self.manifest)
        manifest["version"] = version
        buffer = io.BytesIO()
        if version == 1:
            manifest.pop("encoding", None)
            np.savez(buffer, **self.arrays)
        else:
            encoded, encoding_meta = _encode_v2(self.arrays)
            manifest["encoding"] = encoding_meta
            np.savez_compressed(buffer, **encoded)
        payload = buffer.getvalue()
        (directory / ARRAYS_NAME).write_bytes(payload)
        manifest["arrays_sha256"] = hashlib.sha256(payload).hexdigest()
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        self.manifest = manifest
        return directory

    @classmethod
    def load(cls, path: str | Path) -> "DetectorArtifact":
        """Read and integrity-check an artifact directory.

        Raises :class:`ArtifactError` for anything short of a pristine
        artifact: missing files, invalid JSON, unknown format, a
        version this reader does not understand, a schema fingerprint
        that does not match the manifest's attribute list, or an
        ``arrays.npz`` whose checksum disagrees with the manifest.

        The checks catch corruption, not malice (see the module
        docstring): only load artifacts you trust — restoring one
        compiles its stored criteria sources.
        """
        directory = Path(path)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ArtifactError(f"{directory} has no {MANIFEST_NAME}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(
                f"{manifest_path} is not a valid manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise ArtifactError(f"{manifest_path} is not a JSON object")
        if manifest.get("format") != ARTIFACT_FORMAT:
            raise ArtifactError(
                f"{directory} is not a {ARTIFACT_FORMAT} "
                f"(format={manifest.get('format')!r})"
            )
        version = manifest.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"artifact version {version!r} is not supported by this "
                f"reader (supported: {SUPPORTED_VERSIONS})"
            )
        attributes = manifest.get("attributes")
        if not isinstance(attributes, list) or not attributes:
            raise ArtifactError(f"{manifest_path} has no attribute schema")
        if manifest.get("schema_fingerprint") != schema_fingerprint(attributes):
            raise ArtifactError(
                f"{manifest_path}: schema fingerprint does not match the "
                "attribute list (manifest tampered?)"
            )
        arrays_path = directory / ARRAYS_NAME
        if not arrays_path.is_file():
            raise ArtifactError(f"{directory} has no {ARRAYS_NAME}")
        payload = arrays_path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.get("arrays_sha256"):
            raise ArtifactError(
                f"{arrays_path}: checksum mismatch (tampered or truncated)"
            )
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as data:
                arrays = {key: data[key] for key in data.files}
        # BadZipFile: a bundle truncated *before* it was signed passes
        # the checksum but still is not a readable zip.
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ArtifactError(
                f"{arrays_path} is not a valid array bundle: {exc}"
            ) from exc
        if version >= 2:
            arrays = _decode_v2(arrays, manifest.get("encoding"))
        return cls(manifest, arrays)

    # ------------------------------------------------------------------
    # Restoration
    # ------------------------------------------------------------------
    def restore(self) -> RestoredState:
        """Rebuild featurizers and detector from this artifact.

        Structural problems — a config that fails validation, criteria
        sources that no longer compile, missing or misshapen arrays —
        surface as :class:`ArtifactError`.
        """
        manifest = self.manifest
        try:
            return self._restore()
        except ArtifactError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact for {manifest.get('dataset', '?')!r} could not "
                f"be restored: {exc}"
            ) from exc

    def _restore(self) -> RestoredState:
        manifest = self.manifest
        arrays = self.arrays
        config = ZeroEDConfig(**manifest["config"])
        engine = manifest["engines"]["detector"]
        attributes = list(manifest["attributes"])
        embedding_spec = manifest.get("embedding")
        embedding = (
            SubwordHashEmbedding.shared(
                dim=int(embedding_spec["dim"]),
                n_buckets=int(embedding_spec["n_buckets"]),
                seed=int(embedding_spec["seed"]),
            )
            if embedding_spec is not None and config.use_semantic_features
            else None
        )
        featurizers: dict[str, AttributeFeaturizer] = {}
        correlated: dict[str, list[str]] = {}
        models: dict[str, dict] = {}
        per_attribute = manifest["per_attribute"]
        if len(per_attribute) != len(attributes):
            raise ArtifactError(
                "per-attribute entries do not align with the schema"
            )
        for i, (attr, spec) in enumerate(zip(attributes, per_attribute)):
            if spec["name"] != attr:
                raise ArtifactError(
                    f"per-attribute entry {i} names {spec['name']!r}, "
                    f"schema says {attr!r}"
                )
            criteria = [
                Criterion.from_spec(
                    attr,
                    {
                        "name": c["name"],
                        "source": c["source"],
                        "context_attrs": c.get("context_attrs", []),
                    },
                )
                for c in spec["criteria"]
            ]
            values = arrays[f"a{i}_values"].tolist()
            counts = arrays[f"a{i}_counts"].tolist()
            vicinity: dict[str, tuple[dict, dict]] = {}
            for j, q in enumerate(spec["vicinity"]):
                pair_lhs = arrays[f"a{i}_v{j}_pair_lhs"].tolist()
                pair_rhs = arrays[f"a{i}_v{j}_pair_rhs"].tolist()
                pair_count = arrays[f"a{i}_v{j}_pair_count"].tolist()
                lhs_values = arrays[f"a{i}_v{j}_lhs_values"].tolist()
                lhs_counts = arrays[f"a{i}_v{j}_lhs_counts"].tolist()
                vicinity[q] = (
                    dict(zip(zip(pair_lhs, pair_rhs), pair_count)),
                    dict(zip(lhs_values, lhs_counts)),
                )
            correlated[attr] = list(spec["correlated"])
            featurizers[attr] = AttributeFeaturizer.from_frozen(
                attr=attr,
                value_counts=dict(zip(values, counts)),
                n_rows=int(spec["n_rows"]),
                correlated=correlated[attr],
                vicinity=vicinity,
                embedding=embedding,
                criteria=criteria,
                config=config,
            )
            model_spec = spec["model"]
            if model_spec["kind"] == "constant":
                models[attr] = {
                    "kind": "constant",
                    "constant": bool(model_spec["constant"]),
                }
            elif model_spec["kind"] == "mlp":
                models[attr] = {
                    "kind": "mlp",
                    "flat": arrays[f"a{i}_mlp_flat"],
                    "n_features": int(model_spec["n_features"]),
                    "scaler_mean": arrays[f"a{i}_scaler_mean"],
                    "scaler_scale": arrays[f"a{i}_scaler_scale"],
                }
            else:
                raise ArtifactError(
                    f"unknown model kind {model_spec['kind']!r} for "
                    f"attribute {attr!r}"
                )
        detector = ErrorDetector.from_models(config, engine, models)
        info = {
            "format": manifest["format"],
            "version": manifest["version"],
            "dataset": manifest.get("dataset"),
            "train_rows": manifest.get("train_rows"),
            "llm_model": manifest.get("llm_model"),
            "attributes": attributes,
            "engines": manifest["engines"],
            "package_version": manifest.get("package_version"),
            "created_at": manifest.get("created_at"),
            # Absent in pre-PR-6 artifacts: degradation state unknown.
            "resilience": manifest.get("resilience"),
            # Absent in pre-PR-10 artifacts: fit token spend unknown.
            "tokens": manifest.get("tokens"),
            # Absent in pre-PR-7 artifacts: sample provenance unknown;
            # None thereafter means the fit saw every row.
            "sample": manifest.get("sample"),
            # The saved arrays' checksum doubles as the artifact's
            # identity for resumable-job fingerprints (PR 8).
            "arrays_sha256": manifest.get("arrays_sha256"),
        }
        return RestoredState(
            config=config,
            engine=engine,
            detector=detector,
            featurizers=featurizers,
            correlated=correlated,
            attributes=attributes,
            llm_model=str(manifest.get("llm_model", "unknown")),
            train_rows=int(manifest.get("train_rows", 0)),
            info=info,
        )
