"""Multi-tenant artifact cache for the scoring service (PR 9).

One fitted detector per service process stops scaling the moment a
deployment serves many datasets: either every dataset gets its own
process (memory × tenants) or operators juggle reloads.
:class:`ArtifactRegistry` lets one service host many fitted datasets:

* **keyed by schema fingerprint** — the artifact manifest's
  ``schema_fingerprint`` (SHA-256 of the attribute list) is the tenant
  key; upserting an artifact with a fingerprint already resident
  *replaces* it (that is exactly what a hot reload is), a new
  fingerprint *adds* a tenant.  ``dataset`` names resolve to
  fingerprints as a convenience, so clients can route by either.
* **LRU within a memory budget** — each entry is charged its decoded
  array bytes (the dominant resident cost of a scorer; the v2
  compressed file on disk would *under*-charge).  Inserting past
  ``budget_bytes`` evicts least-recently-*scored* entries — never the
  pinned default, never the entry being inserted — and counts the
  eviction.  Evicted tenants are remembered by path: a later request
  for that fingerprint reloads transparently (a *miss*), so eviction
  degrades latency, not availability.
* **thread-safe, atomic swaps** — routing hands out immutable entry
  snapshots; an in-flight batch keeps scoring on the scorer it was
  routed to even if the tenant is replaced or evicted mid-batch (plain
  reference semantics, the same contract as the single-tenant hot
  reload).

``snapshot()`` feeds ``GET /healthz``: resident tenants (fingerprint,
dataset, bytes, path), the budget, and the hit/miss/eviction/load
counters an operator needs to size the budget.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ArtifactError
from repro.serving.scorer import BatchScorer


@dataclass(frozen=True)
class RegistryEntry:
    """One resident tenant: an immutable routing snapshot."""

    fingerprint: str
    dataset: str | None
    path: Path
    scorer: BatchScorer
    arrays_sha256: str | None
    resident_bytes: int
    loaded_at: float = field(default_factory=time.time)


def _load_entry(path: str | Path, n_jobs: int | None) -> RegistryEntry:
    """Load + integrity-check an artifact into a registry entry."""
    from repro.serving.artifact import DetectorArtifact

    artifact = DetectorArtifact.load(path)
    # Decoded array bytes: what the scorer actually keeps resident
    # (the on-disk v2 file is deflate-compressed and would undercount).
    resident = sum(arr.nbytes for arr in artifact.arrays.values())
    state = artifact.restore()
    scorer = BatchScorer(
        config=state.config,
        detector=state.detector,
        featurizers=state.featurizers,
        correlated=state.correlated,
        attributes=state.attributes,
        llm_model=state.llm_model,
        train_rows=state.train_rows,
        info=state.info,
        n_jobs=n_jobs,
    )
    manifest = artifact.manifest
    return RegistryEntry(
        fingerprint=manifest["schema_fingerprint"],
        dataset=manifest.get("dataset"),
        path=Path(path),
        scorer=scorer,
        arrays_sha256=manifest.get("arrays_sha256"),
        resident_bytes=resident,
    )


class ArtifactRegistry:
    """LRU cache of fitted detectors, one service → many datasets."""

    def __init__(
        self,
        budget_bytes: int | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ArtifactError(
                f"registry budget must be >= 1 byte or None, "
                f"got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._n_jobs = n_jobs
        self._lock = threading.Lock()
        #: fingerprint -> entry, most recently *used* last.
        self._resident: dict[str, RegistryEntry] = {}
        self._last_used: dict[str, float] = {}
        #: fingerprint -> artifact path, survives eviction so a miss
        #: can reload transparently.
        self._known_paths: dict[str, Path] = {}
        self._pinned: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.loads = 0

    # ------------------------------------------------------------------
    def upsert(self, path: str | Path) -> RegistryEntry:
        """Load an artifact and make it resident (add or replace).

        Replacing happens when the loaded artifact's schema
        fingerprint is already resident — the multi-tenant form of the
        single-tenant hot reload.  Returns the new entry.
        """
        entry = _load_entry(path, self._n_jobs)
        with self._lock:
            self.loads += 1
            self._resident[entry.fingerprint] = entry
            self._known_paths[entry.fingerprint] = entry.path
            self._last_used[entry.fingerprint] = time.monotonic()
            self._evict_over_budget(keep=entry.fingerprint)
        return entry

    def pin(self, fingerprint: str) -> None:
        """Exempt a tenant (the service's default) from eviction."""
        with self._lock:
            self._pinned.add(fingerprint)

    def get(self, fingerprint: str) -> RegistryEntry:
        """Resolve a tenant; reloads from its known path on a miss.

        Raises :class:`ArtifactError` for a fingerprint the registry
        has never seen.
        """
        with self._lock:
            entry = self._resident.get(fingerprint)
            if entry is not None:
                self.hits += 1
                self._last_used[fingerprint] = time.monotonic()
                return entry
            known = self._known_paths.get(fingerprint)
        if known is None:
            raise ArtifactError(
                f"no artifact registered for schema fingerprint "
                f"{fingerprint!r}"
            )
        # Evicted tenant: reload outside the lock (disk IO), then race
        # benignly — last loader wins, both entries score identically.
        entry = _load_entry(known, self._n_jobs)
        if entry.fingerprint != fingerprint:
            raise ArtifactError(
                f"artifact at {known} no longer carries fingerprint "
                f"{fingerprint!r} (file replaced?)"
            )
        with self._lock:
            self.misses += 1
            self.loads += 1
            self._resident[fingerprint] = entry
            self._last_used[fingerprint] = time.monotonic()
            self._evict_over_budget(keep=fingerprint)
        return entry

    def by_dataset(self, dataset: str) -> RegistryEntry:
        """Resolve a tenant by its training dataset name."""
        with self._lock:
            matches = [
                fp
                for fp, entry in self._resident.items()
                if entry.dataset == dataset
            ]
        if not matches:
            raise ArtifactError(
                f"no resident artifact was fitted on dataset {dataset!r}"
            )
        if len(matches) > 1:
            raise ArtifactError(
                f"dataset {dataset!r} is ambiguous across "
                f"{len(matches)} resident artifacts; route by "
                f"fingerprint instead"
            )
        return self.get(matches[0])

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._resident)

    # ------------------------------------------------------------------
    def _evict_over_budget(self, keep: str) -> None:
        """Drop LRU entries until within budget (caller holds lock)."""
        if self.budget_bytes is None:
            return
        def total() -> int:
            return sum(e.resident_bytes for e in self._resident.values())

        while total() > self.budget_bytes and len(self._resident) > 1:
            victims = sorted(
                (
                    fp
                    for fp in self._resident
                    if fp != keep and fp not in self._pinned
                ),
                key=lambda fp: self._last_used.get(fp, 0.0),
            )
            if not victims:
                return
            victim = victims[0]
            del self._resident[victim]
            self._last_used.pop(victim, None)
            self.evictions += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The /healthz view: residency + counters."""
        with self._lock:
            resident = [
                {
                    "fingerprint": entry.fingerprint,
                    "dataset": entry.dataset,
                    "path": str(entry.path),
                    "resident_bytes": entry.resident_bytes,
                    "pinned": entry.fingerprint in self._pinned,
                }
                for entry in self._resident.values()
            ]
            return {
                "resident": resident,
                "resident_bytes": sum(
                    e["resident_bytes"] for e in resident
                ),
                "budget_bytes": self.budget_bytes,
                "known": len(self._known_paths),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "loads": self.loads,
            }
