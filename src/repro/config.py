"""Configuration for the ZeroED pipeline.

Defaults follow the paper's implementation details (§IV-A): label 5% of
the data, cluster count = data size × label rate, 2 correlated
attributes, batches of 20 tuples, a two-layer MLP, Qwen2.5-72b as the
default LLM.  The four ablation switches correspond to Table IV's rows
(w/o Guid. / Crit. / Corr. / Veri.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Step-2 clustering engines; the single source for the sampling
#: layer's dispatch (concrete engines only — ``auto`` resolves to one
#: of these before reaching the sampling layer).
SAMPLING_ENGINES = ("exact", "fast")

#: Step-4 MLP engines (detector dispatch), mirroring the
#: sampling-engine pattern.
DETECTOR_ENGINES = ("exact", "fast")

#: What config validation and the CLI accept: the concrete engines
#: plus ``auto``, which picks per table at detect time.
SAMPLING_ENGINE_CHOICES = SAMPLING_ENGINES + ("auto",)
DETECTOR_ENGINE_CHOICES = DETECTOR_ENGINES + ("auto",)

#: ``engine="auto"`` crossover: at or above this row count the fast
#: engine wins; below it the exact engine is already sub-second and
#: the fast engine's restart/collapse overhead makes it *slower* (the
#: ~2k crossover measured in BENCH_sampling.json, which also matches
#: where the fast detector's subsample cap starts paying off).
AUTO_ENGINE_MIN_ROWS = 2_000


@dataclass
class ZeroEDConfig:
    """All tunables of the ZeroED pipeline."""

    # --- data sampling and labeling (§III-C) ---
    label_rate: float = 0.05
    """Fraction of values per attribute the LLM labels (= cluster count
    / column size)."""

    batch_size: int = 20
    """Tuples per LLM labeling batch."""

    clustering: str = "kmeans"
    """Sampling strategy: 'kmeans', 'agglomerative', or 'random'
    (Table VI)."""

    sampling_engine: str = "exact"
    """Step-2 clustering engine.  'exact' (default) runs full Lloyd
    k-means and produces byte-identical masks run-over-run and
    release-over-release; 'fast' collapses duplicate feature rows and
    runs mini-batch k-means over blocked float32 GEMMs — ≥5× faster at
    10k rows, deterministic under the seed, but cluster boundaries
    (hence masks) may differ from 'exact' within the tolerance band
    recorded in tests/test_sampling_engine.py; 'auto' resolves per
    table at detect time — 'fast' at >= AUTO_ENGINE_MIN_ROWS rows,
    'exact' below."""

    # --- feature representation (§III-B) ---
    n_correlated: int = 2
    """Top-k NMI-correlated attributes whose base features are
    concatenated (Fig. 10 sweeps 1-5)."""

    embedding_dim: int = 32
    """Dimensionality of the semantic (subword-hash) embedding block."""

    use_criteria_features: bool = True
    """Ablation switch: error reason-aware criteria features
    (w/o Crit.)."""

    use_correlated_features: bool = True
    """Ablation switch: correlated-attribute feature concatenation
    (w/o Corr.)."""

    use_semantic_features: bool = True
    """Extension switch: semantic embedding block (feature-block
    ablation beyond the paper's Table IV)."""

    use_statistical_features: bool = True
    """Extension switch: value/vicinity/pattern frequency block."""

    criteria_sample_size: int = 40
    """Random tuples serialized into the criteria-reasoning prompt."""

    # --- guidelines and labeling (§III-C) ---
    use_guidelines: bool = True
    """Ablation switch: two-step guideline generation (w/o Guid.)."""

    # --- training data construction (§III-D, Algorithm 1) ---
    use_verification: bool = True
    """Ablation switch: mutual verification + augmentation (w/o
    Veri.)."""

    propagate_labels: bool = True
    """In-cluster label propagation (separable extension switch)."""

    criteria_accuracy_threshold: float = 0.5
    """Algorithm 1 line 11: minimum accuracy on right-labeled data for a
    criterion to survive."""

    data_pass_threshold: float = 0.9
    """Algorithm 1 line 17: minimum criteria pass-rate for a propagated
    right-label to survive."""

    data_verify_accuracy: float = 0.85
    """Only criteria at least this accurate on right-labeled data may
    veto propagated right labels.  Below it, a criterion is still kept
    as a feature (Algorithm 1's 0.5 bar) but is too noisy to delete
    training rows — deletion by a wrong criterion creates blind spots
    the detector turns into false positives."""

    augment_ratio: float = 1.0
    """Target (augmented errors) / (needed to balance classes); 1.0
    balances the training set."""

    # --- detector (§III-D) ---
    mlp_hidden: int = 64
    mlp_epochs: int = 60
    mlp_lr: float = 3e-3
    decision_threshold: float = 0.5

    detector_engine: str = "exact"
    """Step-4 MLP engine.  'exact' (default) trains and predicts in
    float64 with the historical operation order — masks stay
    byte-identical run-over-run and release-over-release; 'fast' runs
    the same loop in float32 over multiplicity-weighted unique training
    rows (capped at a seeded subsample) and predicts once per unique
    feature row — deterministic under the seed, but probabilities
    (hence masks) may shift within the tolerance band recorded in
    tests/test_step34_engine.py; 'auto' resolves per table at detect
    time — 'fast' at >= AUTO_ENGINE_MIN_ROWS rows, 'exact' below."""

    # --- LLM ---
    llm_model: str = "qwen2.5-72b"
    """Profile name for the simulated backend (Table V)."""

    # --- LLM fault tolerance (resilience layer) ---
    llm_max_retries: int = 2
    """Retries per LLM call beyond the first attempt (0 disables).
    Transient failures only: timeouts, HTTP 408/429/5xx, malformed
    replies; other 4xx fail immediately."""

    llm_backoff_s: float = 0.5
    """Base retry sleep; retry ``k`` waits ``base * 2**(k-1)`` (plus
    deterministic seeded jitter), capped at ``llm_backoff_max_s``."""

    llm_backoff_max_s: float = 30.0

    llm_timeout_s: float | None = None
    """Per-attempt wall-clock bound enforced by the resilience layer
    (None trusts the client's own transport timeout)."""

    llm_breaker_threshold: int = 10
    """Consecutive failed attempts that open the circuit breaker
    (fail-fast until the cooldown); 0 disables the breaker."""

    llm_breaker_cooldown_s: float = 30.0

    degrade_on_failure: bool = True
    """Per-attribute graceful degradation: when an attribute's LLM
    stage exhausts its retries, fall back to pattern/frequency-only
    signals for that attribute (recorded in
    ``result.details["degraded_attrs"]``) instead of aborting the fit.
    False restores fail-fast: the first exhausted call raises."""

    checkpoint_dir: str | None = None
    """Directory for per-attribute fit checkpoints.  When set, every
    LLM response is persisted as it arrives and an interrupted fit
    rerun with the same table/seed/model resumes from disk without
    re-spending tokens (see :mod:`repro.llm.checkpoint`)."""

    # --- out-of-core execution (streaming layer) ---
    sample_rows: int | None = None
    """Fit-time row budget: when set and the training table is larger,
    :meth:`ZeroED.fit` draws a seeded reservoir sample of this many
    rows in one streaming pass and runs the LLM-guided phase on the
    sample only — the frozen statistics then score the full table
    out-of-core through the chunked scorer.  The sample is
    deterministic under ``seed`` and independent of how the row stream
    is chunked.  ``None`` (default) fits on every row."""

    chunk_rows: int | None = None
    """Preferred shard size for out-of-core scoring
    (``score-csv --chunk-rows`` / :mod:`repro.serving.streaming`).
    ``None`` leaves the choice to the call site
    (``streaming.DEFAULT_CHUNK_ROWS``); the chunked mask is
    byte-identical to the in-memory one for every value."""

    bad_rows: str = "fail"
    """Malformed-CSV-row policy for streamed scoring: ``"fail"``
    (default) raises on the first row longer than the header —
    the historical behaviour; ``"quarantine"`` records offenders in a
    JSONL sidecar and drops them from the stream, so one corrupt row
    deep in a large file becomes a repairable journal entry instead of
    a dead job (see :mod:`repro.data.csvio`)."""

    # --- execution ---
    n_jobs: int = 1
    """Worker threads for the per-attribute stages (Step-2 sampling,
    Step-3 verification + assembly, Step-4 detector train/predict).
    1 (default) runs the serial path bit-for-bit; -1 means one worker
    per CPU core.  Masks are byte-identical for every value — each
    per-attribute task is a pure function of (seed, attr) and results
    are collected in attribute order (see repro.parallel)."""

    n_worker_procs: int = 0
    """Scoring worker *processes* for the serving front (``repro serve
    --workers``).  0 (default) scores in-process — the single-process
    PR 8 behaviour; N >= 1 fans micro-batches to N spawn-started
    worker processes each holding the frozen scorer (see
    :mod:`repro.serving.workers`).  Masks are byte-identical for every
    value; only throughput changes.  Orthogonal to ``n_jobs``: workers
    score with ``n_jobs=1`` internally (one pool level)."""

    # --- observability (repro.obs) ---
    trace_out: str | None = None
    """Write a Chrome trace-event JSON file (loadable in Perfetto /
    ``chrome://tracing``) covering the fit's span tree — every stage
    plus the per-attribute fan-outs — to this path.  Tracing is
    observe-only: masks are byte-identical with it on or off.  ``None``
    (default) keeps the free no-op tracer."""

    log_json: bool = False
    """Emit structured JSON-lines logs on stderr (one object per
    record: timestamp, level, event, fields, trace/request-id
    correlation).  False keeps the library quiet unless the embedding
    application configured ``logging`` itself."""

    log_level: str | None = None
    """Log threshold for the ``repro`` logger hierarchy when set
    (``debug``/``info``/``warning``/``error``/``critical``); ``None``
    leaves logging unconfigured (quiet by default)."""

    # --- misc ---
    seed: int = 0
    min_cluster_count: int = 4
    max_cluster_count: int = 500
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.label_rate <= 1.0:
            raise ConfigError(f"label_rate {self.label_rate} outside (0, 1]")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.n_correlated < 0:
            raise ConfigError("n_correlated must be >= 0")
        if self.clustering not in ("kmeans", "agglomerative", "random"):
            raise ConfigError(
                f"clustering must be kmeans/agglomerative/random, "
                f"got {self.clustering!r}"
            )
        if self.sampling_engine not in SAMPLING_ENGINE_CHOICES:
            raise ConfigError(
                f"sampling_engine must be one of {SAMPLING_ENGINE_CHOICES}, "
                f"got {self.sampling_engine!r}"
            )
        if self.detector_engine not in DETECTOR_ENGINE_CHOICES:
            raise ConfigError(
                f"detector_engine must be one of {DETECTOR_ENGINE_CHOICES}, "
                f"got {self.detector_engine!r}"
            )
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ConfigError(
                f"n_jobs must be >= 1 or -1 (all cores), got {self.n_jobs}"
            )
        if self.n_worker_procs < 0:
            raise ConfigError(
                f"n_worker_procs must be >= 0 (0 = in-process), "
                f"got {self.n_worker_procs}"
            )
        for name in ("criteria_accuracy_threshold", "data_pass_threshold"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if self.llm_max_retries < 0:
            raise ConfigError(
                f"llm_max_retries must be >= 0, got {self.llm_max_retries}"
            )
        for name in ("llm_backoff_s", "llm_backoff_max_s",
                     "llm_breaker_cooldown_s"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.llm_timeout_s is not None and self.llm_timeout_s <= 0:
            raise ConfigError(
                f"llm_timeout_s must be positive or None, "
                f"got {self.llm_timeout_s}"
            )
        if self.llm_breaker_threshold < 0:
            raise ConfigError(
                f"llm_breaker_threshold must be >= 0, "
                f"got {self.llm_breaker_threshold}"
            )
        for name in ("sample_rows", "chunk_rows"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(
                    f"{name} must be >= 1 or None, got {value}"
                )
        if self.log_level is not None:
            from repro.obs.log import LEVELS

            if self.log_level.lower() not in LEVELS:
                raise ConfigError(
                    f"log_level must be one of {LEVELS} or None, "
                    f"got {self.log_level!r}"
                )
        if self.bad_rows not in ("fail", "quarantine"):
            raise ConfigError(
                f"bad_rows must be 'fail' or 'quarantine', "
                f"got {self.bad_rows!r}"
            )

    def resolve_sampling_engine(self, n_rows: int) -> str:
        """Concrete Step-2 engine for a table of ``n_rows`` rows."""
        if self.sampling_engine != "auto":
            return self.sampling_engine
        return "fast" if n_rows >= AUTO_ENGINE_MIN_ROWS else "exact"

    def resolve_detector_engine(self, n_rows: int) -> str:
        """Concrete Step-4 engine for a table of ``n_rows`` rows."""
        if self.detector_engine != "auto":
            return self.detector_engine
        return "fast" if n_rows >= AUTO_ENGINE_MIN_ROWS else "exact"

    def clusters_for(self, n_rows: int) -> int:
        """Cluster count for one attribute: data size × label rate."""
        k = int(round(n_rows * self.label_rate))
        return max(self.min_cluster_count, min(k, self.max_cluster_count, n_rows))

    def ablated(self, component: str) -> "ZeroEDConfig":
        """A copy with one paper ablation applied.

        ``component`` is one of ``guid``, ``crit``, ``corr``, ``veri``
        (Table IV's rows).
        """
        import dataclasses

        switches = {
            "guid": {"use_guidelines": False},
            "crit": {"use_criteria_features": False},
            "corr": {"use_correlated_features": False},
            "veri": {"use_verification": False},
        }
        if component not in switches:
            raise ConfigError(
                f"unknown ablation {component!r}; one of {sorted(switches)}"
            )
        return dataclasses.replace(self, **switches[component])
