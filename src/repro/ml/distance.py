"""Shared squared-Euclidean distance kernel for clustering.

Every nearest-centre assignment in the library — Lloyd k-means,
mini-batch k-means, the agglomerative fallback assignment, the random
sampling baseline, and centroid-representative selection — routes
through this module so the ``||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2``
expansion, its GEMM tiling, and its tie-break semantics live in one
place.

Two regimes:

* **exact** (the default): one float64 GEMM over all rows, evaluating
  literally ``argmin(||c||^2 - 2 x.c)`` — bit-for-bit the expression
  the call sites inlined historically, so default-engine detection
  masks stay byte-identical.
* **fast** (opt-in via ``block_rows`` / ``working_dtype``): the GEMM is
  tiled over row blocks (bounded ``block_rows x k`` scratch at any
  ``n x k``) and optionally run in float32 for ~2x multiply throughput.
  Float32 may flip argmin near-ties, which is why it is opt-in and
  gated behind the ``sampling_engine = "fast"`` config switch.
"""

from __future__ import annotations

import numpy as np

#: Row-block size used by the fast engine: 4096 x 500 float32 scratch
#: is ~8 MB, comfortably cache-friendly without GEMM-fragmenting.
FAST_BLOCK_ROWS = 4096


def row_norms_sq(x: np.ndarray) -> np.ndarray:
    """``||x_i||^2`` per row, the reusable term of the expansion."""
    return np.einsum("ij,ij->i", x, x)


def nearest_centers(
    x: np.ndarray,
    centers: np.ndarray,
    *,
    block_rows: int | None = None,
    working_dtype: np.dtype | type | None = None,
    return_sq_dists: bool = False,
    x_sq: np.ndarray | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Index of the nearest centre per row (ties -> lowest index).

    With ``block_rows``/``working_dtype`` left at ``None`` this is the
    exact kernel: a single float64 ``x @ centers.T`` and
    ``argmin(c_sq - 2 cross)``, byte-identical to the historical inline
    implementations.  ``return_sq_dists`` additionally returns the
    squared distance to the assigned centre (needs ``x_sq`` or
    computes it; clipped at 0 against cancellation).
    """
    xw, cw = x, centers
    if working_dtype is not None:
        xw = np.ascontiguousarray(x, dtype=working_dtype)
        cw = np.ascontiguousarray(centers, dtype=working_dtype)
    c_sq = row_norms_sq(cw)
    n = xw.shape[0]
    step = max(1, n) if block_rows is None else max(1, int(block_rows))
    labels = np.empty(n, dtype=np.intp)
    best = np.empty(n, dtype=xw.dtype) if return_sq_dists else None
    for start in range(0, n, step):
        stop = min(start + step, n)
        cross = xw[start:stop] @ cw.T
        scores = c_sq[None, :] - 2.0 * cross
        block_labels = np.argmin(scores, axis=1)
        labels[start:stop] = block_labels
        if best is not None:
            best[start:stop] = scores[
                np.arange(stop - start), block_labels
            ]
    if best is None:
        return labels
    if x_sq is None:
        x_sq = row_norms_sq(xw)
    return labels, np.maximum(best + x_sq, 0.0)


def assigned_sq_dists(
    x: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
    *,
    x_sq: np.ndarray | None = None,
    c_sq: np.ndarray | None = None,
) -> np.ndarray:
    """``||x_i - centers[labels_i]||^2`` via the norm expansion.

    The per-row ``einsum`` against gathered centres reproduces the
    k-means empty-cluster-repair arithmetic exactly (it predates this
    module); it is also the inertia kernel.
    """
    if x_sq is None:
        x_sq = row_norms_sq(x)
    if c_sq is None:
        c_sq = row_norms_sq(centers)
    return (
        x_sq
        - 2.0 * np.einsum("ij,ij->i", x, centers[labels])
        + c_sq[labels]
    )


def assigned_dists(
    x: np.ndarray, centers: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """``||x_i - centers[labels_i]||`` by explicit difference.

    One whole-matrix gather + norm instead of a per-cluster Python
    loop; each row's arithmetic is identical to
    ``np.linalg.norm(x[members] - centroid, axis=1)`` on the same
    values, so representative selection keeps its historical floats.
    """
    return np.linalg.norm(x - centers[labels], axis=1)


def collapse_duplicate_rows(
    x: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(unique_rows, codes, counts)`` with ``unique_rows[codes] == x``.

    Byte-wise row interning (the PR 1 value-interning idea applied to
    feature matrices): rows are compared as raw bytes after ``+0.0``
    canonicalises signed zeros, so NaN-holding rows also dedupe
    consistently.  ``unique_rows`` are real rows of ``x`` (first
    occurrence in byte order), not reconstructed values.
    """
    x = np.ascontiguousarray(x)
    if x.shape[1] == 0:
        codes = np.zeros(x.shape[0], dtype=np.intp)
        return x[:1], codes, np.array([x.shape[0]])
    view = (
        np.ascontiguousarray(x + 0.0)
        .view(np.dtype((np.void, x.dtype.itemsize * x.shape[1])))
        .ravel()
    )
    _, first_idx, codes, counts = np.unique(
        view, return_index=True, return_inverse=True, return_counts=True
    )
    return x[first_idx], codes.astype(np.intp, copy=False), counts
