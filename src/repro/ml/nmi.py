"""Normalised mutual information between categorical attributes.

ZeroED selects each attribute's top-k correlated attributes by NMI
(§III-B, "Unified Feature Representation"); probabilities are estimated
by value frequencies, exactly as the paper describes.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np


def entropy(values: Sequence[str]) -> float:
    """Shannon entropy (nats) of the empirical value distribution."""
    n = len(values)
    if n == 0:
        return 0.0
    counts = np.array(list(Counter(values).values()), dtype=float)
    p = counts / n
    return float(-np.sum(p * np.log(p)))


def mutual_information(xs: Sequence[str], ys: Sequence[str]) -> float:
    """Empirical mutual information (nats) between two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError("columns must be aligned")
    n = len(xs)
    if n == 0:
        return 0.0
    joint = Counter(zip(xs, ys))
    px = Counter(xs)
    py = Counter(ys)
    mi = 0.0
    for (x, y), c_xy in joint.items():
        p_xy = c_xy / n
        mi += p_xy * np.log(p_xy * n * n / (px[x] * py[y]))
    return float(max(mi, 0.0))


def normalized_mutual_information(
    xs: Sequence[str], ys: Sequence[str]
) -> float:
    """NMI(x, y) = I(x; y) / sqrt(H(x) H(y)), in [0, 1].

    Returns 0.0 when either column is constant (zero entropy), since a
    constant attribute carries no correlation signal.
    """
    hx = entropy(xs)
    hy = entropy(ys)
    if hx <= 0.0 or hy <= 0.0:
        return 0.0
    nmi = mutual_information(xs, ys) / np.sqrt(hx * hy)
    return float(min(max(nmi, 0.0), 1.0))
