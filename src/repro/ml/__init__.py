"""Machine-learning substrate: clustering, MLP, metrics, NMI, scaling."""

from repro.ml.agglomerative import AgglomerativeClustering
from repro.ml.kmeans import KMeans
from repro.ml.metrics import PRF, precision_recall_f1, score_masks
from repro.ml.mlp import MLPClassifier
from repro.ml.nmi import (
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.ml.rng import as_generator, spawn
from repro.ml.scaler import StandardScaler

__all__ = [
    "PRF",
    "AgglomerativeClustering",
    "KMeans",
    "MLPClassifier",
    "StandardScaler",
    "as_generator",
    "entropy",
    "mutual_information",
    "normalized_mutual_information",
    "precision_recall_f1",
    "score_masks",
    "spawn",
]
