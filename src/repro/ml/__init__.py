"""Machine-learning substrate: clustering, MLP, metrics, NMI, scaling."""

from repro.ml.agglomerative import AgglomerativeClustering
from repro.ml.distance import (
    assigned_sq_dists,
    collapse_duplicate_rows,
    nearest_centers,
    row_norms_sq,
)
from repro.ml.kmeans import KMeans
from repro.ml.metrics import PRF, precision_recall_f1, score_masks
from repro.ml.minibatch import MiniBatchKMeans
from repro.ml.mlp import MLPClassifier
from repro.ml.nmi import (
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.ml.rng import as_generator, spawn
from repro.ml.scaler import StandardScaler

__all__ = [
    "PRF",
    "AgglomerativeClustering",
    "KMeans",
    "MLPClassifier",
    "MiniBatchKMeans",
    "StandardScaler",
    "as_generator",
    "assigned_sq_dists",
    "collapse_duplicate_rows",
    "entropy",
    "mutual_information",
    "nearest_centers",
    "normalized_mutual_information",
    "precision_recall_f1",
    "row_norms_sq",
    "score_masks",
    "spawn",
]
