"""Feature standardisation (mean-zero, unit-variance)."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class StandardScaler:
    """Per-feature standardisation; constant features are left at zero.

    Mirrors the sklearn API (``fit`` / ``transform`` / ``fit_transform``)
    so pipeline code reads conventionally.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
