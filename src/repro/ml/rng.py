"""Seeded randomness helpers.

Every stochastic component in the library takes an explicit seed (or an
``np.random.Generator``) so that experiment runs are reproducible; this
module centralises the coercion logic.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def as_generator(seed: RngLike) -> np.random.Generator:
    """Coerce an int seed / generator / None into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: RngLike, key: str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a string key.

    Deriving per-component generators (rather than sharing one) keeps
    each pipeline stage's randomness stable when other stages change.
    """
    if isinstance(seed, np.random.Generator):
        # Derive a child deterministically from the parent's bit stream.
        child_seed = int(seed.integers(0, 2**63 - 1))
    else:
        child_seed = 0 if seed is None else int(seed)
    mixed = np.random.SeedSequence(
        [child_seed, _key_to_int(key)]
    )
    return np.random.default_rng(mixed)


def _key_to_int(key: str) -> int:
    total = 0
    for ch in key:
        total = (total * 131 + ord(ch)) % (2**31 - 1)
    return total
