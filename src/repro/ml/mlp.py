"""A two-layer MLP binary classifier trained with Adam.

The paper's detector is "a simple Multilayer Perceptron ... two layers
with ReLU activations" optimised with cross-entropy.  This is a compact
NumPy implementation with mini-batching, class weighting (dirty cells
are the minority class even after augmentation) and early stopping on
training loss plateau.

Two execution engines share one training loop:

* ``exact`` (default) — float64 with a *buffer-reusing* Adam step: all
  six parameter tensors live as views into one flat vector, moments and
  temporaries are preallocated once, and every update runs in place in
  the seed implementation's exact operation order, so the trained
  parameters are **bitwise identical** to the historical per-key
  dict-of-arrays loop (elementwise IEEE ops have no cross-element
  interaction, and each multiply/add keeps its original operands).
* ``fast`` (opt-in) — the same loop in float32: roughly twice the GEMM
  throughput on AVX2 hardware, deterministic under the seed, but
  probabilities (hence downstream masks) may shift within the parity
  band recorded in ``tests/test_step34_engine.py``.

``predict_proba`` reuses caller-provided workspace buffers (one set per
``(rows, hidden)`` shape, shared across a table's attributes by
``ErrorDetector.predict``) and, on the fast engine, processes the input
in row-blocked float32 tiles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.rng import RngLike, as_generator

#: Detector execution engines (mirrors ``config.SAMPLING_ENGINES``).
MLP_ENGINES = ("exact", "fast")

#: Row-block size for fast-engine prediction tiles.
PREDICT_BLOCK_ROWS = 65_536

_PARAM_KEYS = ("w1", "b1", "w2", "b2", "w3", "b3")


class Workspace:
    """Reusable named scratch buffers keyed by (name, shape, dtype).

    One instance can serve many forward/backward passes and many
    models: a buffer is allocated on first request and handed back on
    every later request with the same name/shape/dtype.  Callers must
    not hold two live references to the same name at once.
    """

    def __init__(self) -> None:
        self._bufs: dict[tuple, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (name, shape, np.dtype(dtype))
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf


class MLPClassifier:
    """Binary classifier: input → hidden(ReLU) → hidden(ReLU) → sigmoid.

    Parameters
    ----------
    hidden:
        Width of the two hidden layers.
    epochs, batch_size, lr:
        Training budget, mini-batch size and Adam learning rate.
    class_weight:
        ``"balanced"`` re-weights the loss inversely to class frequency;
        ``None`` leaves classes unweighted.
    patience:
        Early-stop after this many epochs without loss improvement.
    seed:
        Weight initialisation / shuffling seed.
    engine:
        ``"exact"`` (float64, bitwise-reproducible reference results)
        or ``"fast"`` (float32 forward/backward, see module docstring).
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 60,
        batch_size: int = 128,
        lr: float = 3e-3,
        class_weight: str | None = "balanced",
        patience: int = 10,
        seed: RngLike = 0,
        engine: str = "exact",
    ) -> None:
        if engine not in MLP_ENGINES:
            raise ValueError(
                f"engine must be one of {MLP_ENGINES}, got {engine!r}"
            )
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.class_weight = class_weight
        self.patience = patience
        self.engine = engine
        self._dtype = np.float64 if engine == "exact" else np.float32
        self._rng = as_generator(seed)
        self._params: dict[str, np.ndarray] | None = None
        self._flat: np.ndarray | None = None
        self.n_features_: int | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MLPClassifier":
        """Train on ``(x, y)``.

        ``sample_weight`` scales each example's loss contribution — the
        multiplicity channel for training over collapsed duplicate rows
        (class balancing then uses the *weighted* class totals, so the
        objective matches the expanded training set).  ``None`` keeps
        the historical unweighted path bit-for-bit.
        """
        x = np.ascontiguousarray(x, dtype=self._dtype)
        y = np.asarray(y, dtype=self._dtype).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be 2-D and aligned with y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if sample_weight is not None:
            sample_weight = np.asarray(
                sample_weight, dtype=self._dtype
            ).ravel()
            if sample_weight.shape != y.shape:
                raise ValueError("sample_weight must align with y")
            if not np.all(sample_weight > 0):
                raise ValueError("sample_weight entries must be positive")
        n, d = x.shape
        h = self.hidden
        dtype = self._dtype
        flat, views = self._init_flat_params(d)
        weights = self._sample_weights(y, sample_weight)
        # Adam state and temporaries: one flat float vector per role,
        # allocated once and updated in place every step.
        moment1 = np.zeros_like(flat)
        moment2 = np.zeros_like(flat)
        grad_flat = np.empty_like(flat)
        grads = _views_into(grad_flat, d, h)
        tmp = np.empty_like(flat)
        tmp2 = np.empty_like(flat)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        lr = self.lr
        batch = min(self.batch_size, n)
        ws = Workspace()
        xb = ws.get("xb", (batch, d), dtype)
        yb = ws.get("yb", (batch,), dtype)
        wb = ws.get("wb", (batch,), dtype)
        step = 0
        best_loss = np.inf
        stale = 0
        self.loss_history_ = []
        for _epoch in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                nb = len(idx)
                np.take(x, idx, axis=0, out=xb[:nb])
                np.take(y, idx, out=yb[:nb])
                np.take(weights, idx, out=wb[:nb])
                loss = _forward_backward_ws(
                    views, grads, xb[:nb], yb[:nb], wb[:nb], ws
                )
                epoch_loss += loss * nb
                step += 1
                # Adam, in place, in the seed implementation's exact
                # operation order (each line's comment is the historical
                # expression it reproduces bitwise).
                moment1 *= beta1                    # beta1 * m
                np.multiply(grad_flat, 1.0 - beta1, out=tmp)
                moment1 += tmp                      # ... + (1 - beta1) * g
                moment2 *= beta2                    # beta2 * v
                np.multiply(grad_flat, 1.0 - beta2, out=tmp)
                tmp *= grad_flat                    # (1 - beta2) * g * g
                moment2 += tmp
                np.divide(moment1, 1.0 - beta1**step, out=tmp)   # m_hat
                np.divide(moment2, 1.0 - beta2**step, out=tmp2)  # v_hat
                np.sqrt(tmp2, out=tmp2)
                tmp2 += eps                         # sqrt(v_hat) + eps
                tmp *= lr                           # lr * m_hat
                tmp /= tmp2
                flat -= tmp                         # params -= update
            epoch_loss /= n
            self.loss_history_.append(epoch_loss)
            if epoch_loss < best_loss - 1e-5:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        self._params = views
        self._flat = flat
        self.n_features_ = d
        return self

    def predict_proba(
        self, x: np.ndarray, workspace: Workspace | None = None
    ) -> np.ndarray:
        """Probability of the positive (erroneous) class per row.

        ``workspace`` supplies reusable activation buffers (shared
        across calls and models with equal row counts); without one the
        buffers are allocated locally.  The exact engine runs one
        full-matrix float64 pass — the historical arithmetic, bit for
        bit; the fast engine runs float32 row-blocked tiles.
        """
        if self._params is None:
            raise NotFittedError("MLPClassifier.predict_proba before fit")
        ws = workspace if workspace is not None else Workspace()
        if self.engine == "fast":
            x = np.ascontiguousarray(x, dtype=np.float32)
            n = x.shape[0]
            out = np.empty(n)
            for start in range(0, max(n, 1), PREDICT_BLOCK_ROWS):
                block = x[start : start + PREDICT_BLOCK_ROWS]
                if block.shape[0]:
                    out[start : start + block.shape[0]] = self._forward(
                        block, ws
                    )
            return out
        x = np.ascontiguousarray(x, dtype=np.float64)
        return self._forward(x, ws)

    def _forward(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        params = self._params
        n = x.shape[0]
        h = self.hidden
        dtype = self._dtype
        h1 = ws.get("p_h1", (n, h), dtype)
        h2 = ws.get("p_h2", (n, h), dtype)
        logits = ws.get("p_logits", (n, 1), dtype)
        np.matmul(x, params["w1"], out=h1)
        h1 += params["b1"]
        np.maximum(h1, 0.0, out=h1)
        np.matmul(h1, params["w2"], out=h2)
        h2 += params["b2"]
        np.maximum(h2, 0.0, out=h2)
        np.matmul(h2, params["w3"], out=logits)
        logits += params["b3"]
        return np.asarray(_sigmoid(logits.ravel()), dtype=np.float64)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(x) >= threshold

    # ------------------------------------------------------------------
    def export_flat_params(self) -> np.ndarray:
        """The trained parameters as one flat vector (a copy).

        The serialization channel for detector artifacts: together with
        ``n_features_`` and the constructor hyperparameters it restores
        a bitwise-identical model via :meth:`load_flat_params`.
        """
        if self._flat is None:
            raise NotFittedError("export_flat_params before fit")
        return self._flat.copy()

    def load_flat_params(self, flat: np.ndarray, n_features: int) -> "MLPClassifier":
        """Adopt a flat parameter vector exported by a trained model.

        The vector is copied into this model's dtype; a size mismatch
        against ``(n_features, hidden)`` raises ``ValueError`` (the
        artifact layer wraps it in ``ArtifactError``).
        """
        d, h = int(n_features), self.hidden
        expected = d * h + h + h * h + h + h + 1
        flat = np.asarray(flat)
        if flat.ndim != 1 or flat.size != expected:
            raise ValueError(
                f"flat parameter vector has {flat.size} entries, expected "
                f"{expected} for n_features={d}, hidden={h}"
            )
        self._flat = np.array(flat, dtype=self._dtype)  # always a copy
        self._params = _views_into(self._flat, d, h)
        self.n_features_ = d
        return self

    # ------------------------------------------------------------------
    def _init_flat_params(
        self, d: int
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """He-initialised parameters as views into one flat vector."""
        h = self.hidden

        def he(fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
            return self._rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)

        init = {
            "w1": he(d, (d, h)),
            "b1": np.zeros(h),
            "w2": he(h, (h, h)),
            "b2": np.zeros(h),
            "w3": he(h, (h, 1)),
            "b3": np.zeros(1),
        }
        flat = np.empty(d * h + h + h * h + h + h + 1, dtype=self._dtype)
        views = _views_into(flat, d, h)
        for key in _PARAM_KEYS:
            views[key][...] = init[key]
        return flat, views

    def _sample_weights(
        self, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> np.ndarray:
        if sample_weight is None:
            # Historical unweighted path, kept bit-for-bit.
            if self.class_weight != "balanced":
                return np.ones_like(y)
            n = len(y)
            n_pos = float(y.sum())
            n_neg = n - n_pos
            if n_pos == 0 or n_neg == 0:
                return np.ones_like(y)
            w_pos = n / (2.0 * n_pos)
            w_neg = n / (2.0 * n_neg)
            return np.where(y > 0.5, w_pos, w_neg).astype(self._dtype)
        if self.class_weight != "balanced":
            combined = np.asarray(sample_weight, dtype=float)
        else:
            # Balanced classes over the *expanded* multiplicities.
            n = float(sample_weight.sum())
            n_pos = float((sample_weight * y).sum())
            n_neg = n - n_pos
            if n_pos == 0 or n_neg == 0:
                combined = np.asarray(sample_weight, dtype=float)
            else:
                w_pos = n / (2.0 * n_pos)
                w_neg = n / (2.0 * n_neg)
                combined = np.where(y > 0.5, w_pos, w_neg) * sample_weight
        # Normalise to mean 1: the expanded-set balanced weights average
        # exactly 1 by construction, so this keeps the loss and gradient
        # scale — hence Adam dynamics and the 1e-5 loss-plateau rule —
        # consistent with training on the expanded rows.
        combined = combined / (combined.sum() / len(combined))
        return combined.astype(self._dtype)


def _views_into(flat: np.ndarray, d: int, h: int) -> dict[str, np.ndarray]:
    """The six parameter tensors as reshaped views of ``flat``."""
    shapes = {
        "w1": (d, h), "b1": (h,), "w2": (h, h), "b2": (h,),
        "w3": (h, 1), "b3": (1,),
    }
    views: dict[str, np.ndarray] = {}
    offset = 0
    for key in _PARAM_KEYS:
        size = int(np.prod(shapes[key]))
        views[key] = flat[offset : offset + size].reshape(shapes[key])
        offset += size
    return views


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _forward_backward_ws(
    params: dict[str, np.ndarray],
    grads: dict[str, np.ndarray],
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    ws: Workspace,
) -> float:
    """Weighted BCE loss + gradients for one batch, into ``grads``.

    Allocation-free reformulation of the historical forward/backward:
    every array lands in a workspace buffer and every elementwise op
    runs in place, but each operation keeps the seed implementation's
    operands and order, so losses and gradients are bitwise identical
    (the ReLU masks use post-activation values — ``h > 0`` and
    ``z > 0`` agree everywhere, including at 0 and NaN).
    """
    n, d = x.shape
    h = params["w2"].shape[0]
    dtype = x.dtype
    z1 = ws.get("z1", (n, h), dtype)
    z2 = ws.get("z2", (n, h), dtype)
    lg = ws.get("lg", (n, 1), dtype)
    mask = ws.get("mask", (n, h), np.bool_)
    t1 = ws.get("t1", (n,), dtype)
    t2 = ws.get("t2", (n,), dtype)
    t3 = ws.get("t3", (n,), dtype)
    # Forward: z1/z2 hold the post-ReLU activations (h1/h2).
    np.matmul(x, params["w1"], out=z1)
    z1 += params["b1"]                       # x @ w1 + b1
    np.maximum(z1, 0.0, out=z1)              # h1
    np.matmul(z1, params["w2"], out=z2)
    z2 += params["b2"]
    np.maximum(z2, 0.0, out=z2)              # h2
    np.matmul(z2, params["w3"], out=lg)
    lg += params["b3"]                       # logits
    logits = lg.ravel()
    p = _sigmoid(logits)
    # The float64 bound is the historical 1e-9 (bitwise-preserved); in
    # float32 `1 - 1e-9` rounds to exactly 1.0 and log(1 - p) would hit
    # -inf, so the fast engine clips at its own representable margin.
    lo = 1e-9 if dtype == np.float64 else 1e-6
    p_clip = np.clip(p, lo, 1.0 - lo)
    # loss = -mean(w * (y*log(p) + (1-y)*log(1-p))), original op order.
    np.log(p_clip, out=t1)
    t1 *= y                                  # y * log(p_clip)
    np.subtract(1.0, y, out=t2)              # 1 - y
    np.subtract(1.0, p_clip, out=t3)
    np.log(t3, out=t3)
    t3 *= t2                                 # (1 - y) * log(1 - p_clip)
    t1 += t3
    t1 *= w                                  # w * (...)
    loss = float(-np.mean(t1))
    # dlogits = (w * (p - y) / n)[:, None]
    np.subtract(p, y, out=t1)
    t1 *= w                                  # w * (p - y)
    t1 /= n
    dlogits = t1.reshape(n, 1)
    dh2 = ws.get("dh2", (n, h), dtype)
    dh1 = ws.get("dh1", (n, h), dtype)
    np.matmul(z2.T, dlogits, out=grads["w3"])     # h2.T @ dlogits
    np.sum(dlogits, axis=0, out=grads["b3"])
    np.matmul(dlogits, params["w3"].T, out=dh2)
    np.greater(z2, 0, out=mask)
    dh2 *= mask                                   # dz2 = dh2 * (z2 > 0)
    np.matmul(z1.T, dh2, out=grads["w2"])         # h1.T @ dz2
    np.sum(dh2, axis=0, out=grads["b2"])
    np.matmul(dh2, params["w2"].T, out=dh1)
    np.greater(z1, 0, out=mask)
    dh1 *= mask                                   # dz1 = dh1 * (z1 > 0)
    np.matmul(x.T, dh1, out=grads["w1"])          # x.T @ dz1
    np.sum(dh1, axis=0, out=grads["b1"])
    return loss
