"""A two-layer MLP binary classifier trained with Adam.

The paper's detector is "a simple Multilayer Perceptron ... two layers
with ReLU activations" optimised with cross-entropy.  This is a compact
NumPy implementation with mini-batching, class weighting (dirty cells
are the minority class even after augmentation) and early stopping on
training loss plateau.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.rng import RngLike, as_generator


class MLPClassifier:
    """Binary classifier: input → hidden(ReLU) → hidden(ReLU) → sigmoid.

    Parameters
    ----------
    hidden:
        Width of the two hidden layers.
    epochs, batch_size, lr:
        Training budget, mini-batch size and Adam learning rate.
    class_weight:
        ``"balanced"`` re-weights the loss inversely to class frequency;
        ``None`` leaves classes unweighted.
    patience:
        Early-stop after this many epochs without loss improvement.
    seed:
        Weight initialisation / shuffling seed.
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 60,
        batch_size: int = 128,
        lr: float = 3e-3,
        class_weight: str | None = "balanced",
        patience: int = 10,
        seed: RngLike = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.class_weight = class_weight
        self.patience = patience
        self._rng = as_generator(seed)
        self._params: dict[str, np.ndarray] | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be 2-D and aligned with y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        n, d = x.shape
        params = self._init_params(d)
        weights = self._sample_weights(y)
        m = {k: np.zeros_like(v) for k, v in params.items()}
        v = {k: np.zeros_like(v) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        best_loss = np.inf
        stale = 0
        self.loss_history_ = []
        for _epoch in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb, wb = x[idx], y[idx], weights[idx]
                loss, grads = _forward_backward(params, xb, yb, wb)
                epoch_loss += loss * len(idx)
                step += 1
                for key, g in grads.items():
                    m[key] = beta1 * m[key] + (1 - beta1) * g
                    v[key] = beta2 * v[key] + (1 - beta2) * g * g
                    m_hat = m[key] / (1 - beta1**step)
                    v_hat = v[key] / (1 - beta2**step)
                    params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
            epoch_loss /= n
            self.loss_history_.append(epoch_loss)
            if epoch_loss < best_loss - 1e-5:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        self._params = params
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive (erroneous) class per row."""
        if self._params is None:
            raise NotFittedError("MLPClassifier.predict_proba before fit")
        x = np.asarray(x, dtype=float)
        h1 = np.maximum(x @ self._params["w1"] + self._params["b1"], 0.0)
        h2 = np.maximum(h1 @ self._params["w2"] + self._params["b2"], 0.0)
        logits = h2 @ self._params["w3"] + self._params["b3"]
        return _sigmoid(logits.ravel())

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(x) >= threshold

    # ------------------------------------------------------------------
    def _init_params(self, d: int) -> dict[str, np.ndarray]:
        h = self.hidden

        def he(fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
            return self._rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)

        return {
            "w1": he(d, (d, h)),
            "b1": np.zeros(h),
            "w2": he(h, (h, h)),
            "b2": np.zeros(h),
            "w3": he(h, (h, 1)),
            "b3": np.zeros(1),
        }

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight != "balanced":
            return np.ones_like(y)
        n = len(y)
        n_pos = float(y.sum())
        n_neg = n - n_pos
        if n_pos == 0 or n_neg == 0:
            return np.ones_like(y)
        w_pos = n / (2.0 * n_pos)
        w_neg = n / (2.0 * n_neg)
        return np.where(y > 0.5, w_pos, w_neg)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _forward_backward(
    params: dict[str, np.ndarray],
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
) -> tuple[float, dict[str, np.ndarray]]:
    """Weighted binary cross-entropy loss and gradients for one batch."""
    n = x.shape[0]
    z1 = x @ params["w1"] + params["b1"]
    h1 = np.maximum(z1, 0.0)
    z2 = h1 @ params["w2"] + params["b2"]
    h2 = np.maximum(z2, 0.0)
    logits = (h2 @ params["w3"] + params["b3"]).ravel()
    p = _sigmoid(logits)
    p_clip = np.clip(p, 1e-9, 1.0 - 1e-9)
    loss = float(
        -np.mean(w * (y * np.log(p_clip) + (1 - y) * np.log(1 - p_clip)))
    )
    dlogits = (w * (p - y) / n)[:, None]
    grads = {
        "w3": h2.T @ dlogits,
        "b3": dlogits.sum(axis=0),
    }
    dh2 = dlogits @ params["w3"].T
    dz2 = dh2 * (z2 > 0)
    grads["w2"] = h1.T @ dz2
    grads["b2"] = dz2.sum(axis=0)
    dh1 = dz2 @ params["w2"].T
    dz1 = dh1 * (z1 > 0)
    grads["w1"] = x.T @ dz1
    grads["b1"] = dz1.sum(axis=0)
    return loss, grads
