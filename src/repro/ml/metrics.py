"""Detection metrics: precision, recall, F1 (cell-level, as in the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.mask import ErrorMask


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 with the underlying confusion counts."""

    precision: float
    recall: float
    f1: float
    tp: int
    fp: int
    fn: int

    def as_row(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f}"
        )


def precision_recall_f1(
    predicted: np.ndarray, truth: np.ndarray
) -> PRF:
    """Compute PRF over aligned boolean vectors.

    Precision is the share of flagged cells that are truly erroneous;
    recall the share of true errors flagged; F1 their harmonic mean.
    All-zero denominators yield 0.0, matching how the cleaning
    literature reports degenerate detectors (e.g. Katara's zeros).
    """
    predicted = np.asarray(predicted, dtype=bool).ravel()
    truth = np.asarray(truth, dtype=bool).ravel()
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {truth.shape}"
        )
    tp = int(np.sum(predicted & truth))
    fp = int(np.sum(predicted & ~truth))
    fn = int(np.sum(~predicted & truth))
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return PRF(precision, recall, f1, tp, fp, fn)


def score_masks(predicted: ErrorMask, truth: ErrorMask) -> PRF:
    """PRF between a predicted and a ground-truth error mask."""
    if predicted.attributes != truth.attributes:
        raise ValueError("masks must share the attribute schema")
    return precision_recall_f1(predicted.flat(), truth.flat())
