"""Average-linkage agglomerative clustering (Table VI baseline).

Used in the clustering-method comparison of the paper (random vs
agglomerative vs k-means sampling).  Built on SciPy's hierarchical
clustering; for large inputs a seeded subsample is clustered and the
remaining points are assigned to the nearest cluster mean, keeping the
comparison tractable at benchmark scale.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from repro.errors import NotFittedError
from repro.ml.distance import nearest_centers
from repro.ml.rng import RngLike, as_generator


class AgglomerativeClustering:
    """Average-linkage hierarchical clustering cut at ``n_clusters``."""

    def __init__(
        self,
        n_clusters: int,
        max_points: int = 2000,
        seed: RngLike = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_points = max_points
        self._rng = as_generator(seed)
        self.labels_: np.ndarray | None = None
        self.cluster_centers_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "AgglomerativeClustering":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("expected a non-empty 2-D matrix")
        n = x.shape[0]
        k = min(self.n_clusters, n)
        if k == 1:
            labels = np.zeros(n, dtype=int)
        elif n <= self.max_points:
            labels = self._cluster_exact(x, k)
        else:
            labels = self._cluster_subsampled(x, k)
        self.labels_ = labels
        self.cluster_centers_ = _centers_from_labels(x, labels)
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("predict called before fit")
        return _nearest(np.asarray(x, dtype=float), self.cluster_centers_)

    # ------------------------------------------------------------------
    def _cluster_exact(self, x: np.ndarray, k: int) -> np.ndarray:
        tree = linkage(x, method="average")
        # fcluster labels are 1-based.
        return fcluster(tree, t=k, criterion="maxclust") - 1

    def _cluster_subsampled(self, x: np.ndarray, k: int) -> np.ndarray:
        idx = self._rng.choice(x.shape[0], size=self.max_points, replace=False)
        sample = x[np.sort(idx)]
        sample_labels = self._cluster_exact(sample, k)
        centers = _centers_from_labels(sample, sample_labels)
        return _nearest(x, centers)


def _centers_from_labels(x: np.ndarray, labels: np.ndarray) -> np.ndarray:
    ids = np.unique(labels)
    centers = np.empty((len(ids), x.shape[1]))
    for row, cid in enumerate(ids):
        centers[row] = x[labels == cid].mean(axis=0)
    return centers


def _nearest(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    # Shared exact kernel; same expansion this function used to inline.
    return nearest_centers(x, centers)
