"""Mini-batch k-means (Sculley 2010) for the fast sampling engine.

Step-2 representative sampling runs one k-means per attribute with
``k = rows x label_rate`` clusters; exact Lloyd iteration is a full
``n x k`` GEMM per step plus a full-data k-means++ pass and dominates
end-to-end time once featurization is columnar.  Mini-batch k-means
replaces each full pass with a small sampled batch and per-centre
decaying learning rates, seeds over a subsample, and finishes with a
couple of full Lloyd refinement steps, cutting the GEMM volume by
roughly ``n / batch_size`` while landing within a few percent of the
exact engine's inertia.

Determinism and robustness contract (property-tested):

* fixed seed => identical ``labels_`` / ``cluster_centers_``;
* ``k`` is clipped to the number of distinct rows, so clusters can
  always be made non-empty;
* after the final repair pass no cluster is empty: centres that ended
  up unused (e.g. never drawn into any batch) are re-seeded on
  distinct farthest rows, exactly like the exact engine's repair;
* optional ``sample_weight`` makes clustering over collapsed duplicate
  rows equivalent to clustering the expanded matrix — the hook the
  duplicate-row collapse in ``core.sampling`` relies on.

All bulk distance work runs through the shared blocked kernel
(:mod:`repro.ml.distance`) on a float32 copy of the data — seeding,
batch updates, and refinement assignments; the refinement means,
repair, and ``inertia_`` are float64 so the reported objective is not
a casualty of the speed path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.distance import (
    FAST_BLOCK_ROWS,
    assigned_sq_dists,
    nearest_centers,
)
from repro.ml.kmeans import _count_distinct_rows
from repro.ml.rng import RngLike, as_generator


class MiniBatchKMeans:
    """Mini-batch k-means with k-means++ seeding over a subsample.

    Parameters
    ----------
    n_clusters:
        Requested cluster count; clipped to the number of distinct
        rows at fit time.
    batch_size:
        Rows drawn (with replacement, weight-proportionally when
        ``sample_weight`` is given) per update step.  Inputs with
        ``n <= batch_size`` use every row each step, degrading
        gracefully to deterministic full-batch updates.
    max_iter:
        Maximum number of batch update steps.
    polish_iters:
        Full Lloyd refinement sweeps after the batch phase (blocked
        float32 assignment, float64 means).  These recover most of the
        inertia gap between mini-batch and exact Lloyd for a small
        fixed cost.
    tol:
        Squared-centre-shift convergence threshold; the batch phase
        stops after ``3`` consecutive sub-``tol`` steps (mini-batch
        shifts are noisy, a single small step is not convergence).
    init_size:
        Subsample size for k-means++ seeding; defaults to
        ``max(3 * n_clusters, 2 * batch_size)``.
    n_init:
        Independent restarts; the run with the lowest (weighted)
        inertia wins.  Small problems — few distinct rows per cluster —
        are local-optimum lotteries where a single init can land far
        from the exact engine's solution; restarts are how the fast
        engine buys back parity there, and they only make sense where
        a run is cheap, so callers enable them for small inputs.
    seed:
        Seed or generator; fixes batch draws and seeding.
    """

    def __init__(
        self,
        n_clusters: int,
        batch_size: int = 1024,
        max_iter: int = 25,
        polish_iters: int = 2,
        tol: float = 1e-6,
        init_size: int | None = None,
        n_init: int = 1,
        seed: RngLike = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.polish_iters = polish_iters
        self.tol = tol
        self.init_size = init_size
        self.n_init = n_init
        self._rng = as_generator(seed)
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def fit(
        self, x: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "MiniBatchKMeans":
        x = np.ascontiguousarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("expected a non-empty 2-D matrix")
        n = x.shape[0]
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (n,):
                raise ValueError("sample_weight must have one entry per row")
            if np.any(weights <= 0):
                raise ValueError("sample_weight entries must be > 0")
        else:
            weights = None
        k = min(self.n_clusters, _count_distinct_rows(x, self.n_clusters))

        # One float32 copy up front; every batch gather and GEMM reads
        # it, so per-call casts never touch the data again.
        xw = np.ascontiguousarray(x, dtype=np.float32)
        best: tuple[float, np.ndarray, np.ndarray, int] | None = None
        for _ in range(self.n_init):
            centers, n_iter = self._batch_phase(xw, weights, k)
            labels, centers64 = self._refine(x, xw, weights, centers, k)
            dists = np.maximum(
                assigned_sq_dists(x, centers64, labels), 0.0
            )
            inertia = float(
                dists.sum() if weights is None else dists @ weights
            )
            if best is None or inertia < best[0]:
                best = (inertia, labels, centers64, n_iter)
        assert best is not None
        self.inertia_, self.labels_, self.cluster_centers_, self.n_iter_ = (
            best
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("MiniBatchKMeans.predict called before fit")
        return nearest_centers(
            np.asarray(x, dtype=float), self.cluster_centers_
        )

    def fit_predict(
        self, x: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> np.ndarray:
        self.fit(x, sample_weight=sample_weight)
        assert self.labels_ is not None
        return self.labels_

    # ------------------------------------------------------------------
    def _batch_phase(
        self, xw: np.ndarray, weights: np.ndarray | None, k: int
    ) -> tuple[np.ndarray, int]:
        """Seed, then run decaying-learning-rate batch updates."""
        n = xw.shape[0]
        centers = self._seed_centers(xw, weights, k)
        batch = min(self.batch_size, n)
        probs = None if weights is None else weights / weights.sum()
        accumulated = np.zeros(k)  # per-centre weight seen so far
        small_steps = 0
        n_iter = 0
        for iteration in range(self.max_iter):
            if batch == n:
                idx = np.arange(n)
                bw = weights
            elif probs is None:
                idx = self._rng.integers(0, n, size=batch)
                bw = None
            else:
                # Weight-proportional draw already encodes the weights;
                # re-weighting the drawn rows would square their
                # influence (w² instead of the w-weighted objective).
                idx = self._rng.choice(n, size=batch, p=probs)
                bw = None
            bx = xw[idx]
            labels = nearest_centers(bx, centers)
            sums, batch_weight = _label_sums(bx, labels, bw, k)
            hit = batch_weight > 0
            accumulated[hit] += batch_weight[hit]
            eta = (batch_weight[hit] / accumulated[hit]).astype(np.float32)
            old = centers[hit]
            means = (sums[hit] / batch_weight[hit, None]).astype(np.float32)
            centers[hit] = (1.0 - eta[:, None]) * old + eta[:, None] * means
            n_iter = iteration + 1
            shift = float(np.sum((centers[hit] - old) ** 2))
            small_steps = small_steps + 1 if shift <= self.tol else 0
            if small_steps >= 3:
                break
        return centers, n_iter

    def _seed_centers(
        self, xw: np.ndarray, weights: np.ndarray | None, k: int
    ) -> np.ndarray:
        """Weighted k-means++ over a seeded subsample (float32)."""
        n = xw.shape[0]
        size = self.init_size
        if size is None:
            size = max(3 * k, 2 * min(self.batch_size, n))
        size = min(size, n)
        if size == n:
            xs = xw
            ws = weights
        else:
            # Uniform subsample; the kept rows carry their multiplicity
            # through ``ws`` below.  A weight-proportional draw here
            # would double-count heavy rows (picked more often AND
            # weighted) without being able to replicate them.
            idx = np.sort(self._rng.choice(n, size=size, replace=False))
            xs = xw[idx]
            ws = None if weights is None else weights[idx]
        m = xs.shape[0]
        uniform = np.full(m, 1.0 / m) if ws is None else ws / ws.sum()
        centers = np.empty((k, xw.shape[1]), dtype=np.float32)
        first = int(self._rng.choice(m, p=uniform))
        centers[0] = xs[first]
        diff = xs - centers[0]
        closest = np.einsum("ij,ij->i", diff, diff).astype(float)
        for c in range(1, k):
            scores = closest if ws is None else ws * closest
            total = float(scores.sum())
            if total <= 0.0:
                # Every subsampled point coincides with a chosen centre;
                # the final repair re-seeds the resulting empty clusters
                # on distinct rows of the full matrix.
                centers[c:] = centers[0]
                break
            pick = int(self._rng.choice(m, p=scores / total))
            centers[c] = xs[pick]
            diff = xs - centers[c]
            np.minimum(
                closest, np.einsum("ij,ij->i", diff, diff), out=closest
            )
        return centers

    def _refine(
        self,
        x: np.ndarray,
        xw: np.ndarray,
        weights: np.ndarray | None,
        centers: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lloyd refinement sweeps, each with empty-cluster repair.

        The exact engine repairs empty clusters *inside* its Lloyd loop
        and keeps optimising afterwards; repairing only once at the end
        leaves the re-seeded centres un-refined and costs several
        percent of inertia.  Each sweep here assigns (blocked float32),
        repairs, then recomputes float64 means; a final exact float64
        assignment + repair makes ``labels_`` consistent with
        ``cluster_centers_`` and never leaves a cluster empty.
        """
        centers64 = centers.astype(float)
        for _ in range(self.polish_iters):
            labels = nearest_centers(
                xw,
                centers64.astype(np.float32),
                block_rows=FAST_BLOCK_ROWS,
            )
            labels = self._repair_empty(x, centers64, labels, k)
            sums, counts = _label_sums(x, labels, weights, k)
            present = counts > 0
            centers64[present] = sums[present] / counts[present, None]
        labels = nearest_centers(x, centers64, block_rows=FAST_BLOCK_ROWS)
        labels = self._repair_empty(x, centers64, labels, k)
        return labels, centers64

    def _repair_empty(
        self,
        x: np.ndarray,
        centers: np.ndarray,
        labels: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Re-seed empty clusters on distinct farthest rows (in place).

        Centres that attracted no rows (duplicate seeds, centres never
        drawn into a batch) move to the row farthest from its assigned
        centre — masking duplicates of already-chosen rows so two
        simultaneously-empty clusters never collapse onto one point,
        mirroring the exact engine's repair — and the assignment is
        recomputed.  With ``k`` clipped to distinct rows this converges
        to zero empties; the loop is bounded defensively.
        """
        for _ in range(10):
            counts = np.bincount(labels, minlength=k)
            empty = np.nonzero(counts == 0)[0]
            if not len(empty):
                break
            dists = assigned_sq_dists(x, centers, labels)
            for c in empty:
                farthest = x[int(np.argmax(dists))]
                centers[c] = farthest
                dists[(x == farthest).all(axis=1)] = -np.inf
            labels = nearest_centers(x, centers, block_rows=FAST_BLOCK_ROWS)
        return labels


def _label_sums(
    x: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray | None,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-label row sums and total weights via sort + ``reduceat``.

    ``np.add.at`` on a ``(k, d)`` target is an order of magnitude
    slower than grouping the rows contiguously and reducing segment
    ranges; labels are small ints so the stable argsort is cheap.
    """
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_labels)) + 1)
    )
    present = sorted_labels[starts]
    rows = x[order]
    if weights is not None:
        rows = rows * weights[order, None]
    sums = np.zeros((k, x.shape[1]))
    sums[present] = np.add.reduceat(rows, starts, axis=0)
    totals = np.zeros(k)
    if weights is None:
        counts = np.diff(np.concatenate((starts, [len(labels)])))
        totals[present] = counts
    else:
        totals = np.bincount(labels, weights=weights, minlength=k)
    return sums, totals
