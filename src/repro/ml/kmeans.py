"""Lloyd's k-means with k-means++ initialisation.

ZeroED clusters every attribute's unified feature vectors and samples
cluster centroids for LLM labeling (§III-C).  The paper picks k-means
for its bias toward dense regions and its budget-controlled cluster
count; this implementation exposes exactly what the sampler needs:
``labels_``, ``cluster_centers_`` and deterministic seeding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.distance import (
    assigned_sq_dists,
    nearest_centers,
    row_norms_sq,
)
from repro.ml.rng import RngLike, as_generator


class KMeans:
    """Vectorised Lloyd iteration with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters; clipped to the number of distinct points at
        fit time (clusters never come out empty).
    max_iter, tol:
        Lloyd iteration budget and centre-shift convergence tolerance.
    seed:
        Seed or generator for initialisation.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: RngLike = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self._rng = as_generator(seed)
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("expected a non-empty 2-D matrix")
        k = min(self.n_clusters, _count_distinct_rows(x, self.n_clusters))
        centers = self._init_plus_plus(x, k)
        labels = np.zeros(x.shape[0], dtype=int)
        x_sq = row_norms_sq(x)  # reused across iterations
        for iteration in range(self.max_iter):
            labels = _nearest_center(x, centers)
            new_centers = centers.copy()
            empty: list[int] = []
            for c in range(k):
                members = x[labels == c]
                if len(members):
                    new_centers[c] = members.mean(axis=0)
                else:
                    empty.append(c)
            if empty:
                # Re-seed each empty cluster at the point farthest from
                # its assigned centre (the standard repair), excluding
                # points already chosen so two simultaneously-empty
                # clusters never collapse onto the same centre.  All
                # rows equal to the chosen point are masked, not just
                # the chosen row — feature rows are heavily duplicated
                # (identical value/context pairs gather identical
                # vectors), and a duplicate would re-collapse the pair.
                dists = assigned_sq_dists(x, centers, labels, x_sq=x_sq)
                for c in empty:
                    farthest = x[int(np.argmax(dists))]
                    new_centers[c] = farthest
                    dists[(x == farthest).all(axis=1)] = -np.inf
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift <= self.tol:
                break
        self.cluster_centers_ = centers
        self.labels_ = _nearest_center(x, centers)
        self.inertia_ = float(
            np.maximum(
                assigned_sq_dists(x, centers, self.labels_, x_sq=x_sq), 0.0
            ).sum()
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        return _nearest_center(np.asarray(x, dtype=float), self.cluster_centers_)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        self.fit(x)
        assert self.labels_ is not None
        return self.labels_

    # ------------------------------------------------------------------
    def _init_plus_plus(self, x: np.ndarray, k: int) -> np.ndarray:
        n = x.shape[0]
        centers = np.empty((k, x.shape[1]))
        first = int(self._rng.integers(n))
        centers[0] = x[first]
        closest_sq = _sq_dist_to(x, centers[0])
        for c in range(1, k):
            total = float(closest_sq.sum())
            if total <= 0.0:
                # All remaining points coincide with chosen centres.
                centers[c:] = centers[0]
                break
            probs = closest_sq / total
            idx = int(self._rng.choice(n, p=probs))
            centers[c] = x[idx]
            closest_sq = np.minimum(closest_sq, _sq_dist_to(x, centers[c]))
        return centers


def _sq_dist_to(x: np.ndarray, center: np.ndarray) -> np.ndarray:
    diff = x - center
    return np.einsum("ij,ij->i", diff, diff)


def _nearest_center(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    # The shared kernel's exact (unblocked float64) path evaluates the
    # same ||c||^2 - 2 x.c expansion this function used to inline.
    return nearest_centers(x, centers)


def _count_distinct_rows(x: np.ndarray, limit: int | None = None) -> int:
    """Distinct rows of ``x``, short-circuited at ``limit``.

    Only ``min(n_clusters, distinct)`` matters to the caller, so the
    scan hashes row bytes chunk-by-chunk and stops as soon as ``limit``
    distinct rows have been seen — on large matrices with many distinct
    rows this replaces a full lexicographic sort with a few chunks.
    """
    if x.shape[1] == 0:
        return min(1, x.shape[0])
    # +0.0 canonicalises -0.0 so the byte-wise comparison agrees with
    # value equality (np.unique semantics) on signed zeros.
    view = np.ascontiguousarray(x + 0.0).view(
        np.dtype((np.void, x.dtype.itemsize * x.shape[1]))
    ).ravel()
    seen: set = set()
    for start in range(0, view.shape[0], 4096):
        seen.update(view[start : start + 4096].tolist())
        if limit is not None and len(seen) >= limit:
            return limit
    return len(seen)
