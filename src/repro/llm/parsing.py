"""Parsers turning raw LLM text into the pipeline's structured payloads.

A real model answers in prose and code fences; the pipeline needs
criterion specs, 0/1 label lists, augmented value lists, per-attribute
verdicts.  These parsers are shared by any text-in/text-out client
(:class:`~repro.llm.http_client.HTTPChatLLM`) and are deliberately
lenient — models decorate output, and a parse miss should degrade to
"no answer" rather than crash the pipeline.
"""

from __future__ import annotations

import re

_CODE_FENCE = re.compile(r"```(?:python)?\s*\n(.*?)```", re.DOTALL)
_DEF_RE = re.compile(r"^def\s+([A-Za-z_]\w*)\s*\(", re.MULTILINE)
_LABEL_RE = re.compile(r"[01]")
_YES_NO_RE = re.compile(
    r"([A-Za-z_][\w ]*?)\s*[:\-]\s*(yes|no)\b", re.IGNORECASE
)
_ROW_ATTR_RE = re.compile(r"row\.get\(\s*['\"]([^'\"]+)['\"]", re.DOTALL)
_ROW_INDEX_RE = re.compile(r"row\[\s*['\"]([^'\"]+)['\"]\s*\]")


def extract_code_blocks(text: str) -> list[str]:
    """All fenced code blocks; falls back to the whole text if it looks
    like bare code (starts with def/import)."""
    blocks = [m.group(1).strip() for m in _CODE_FENCE.finditer(text)]
    if blocks:
        return blocks
    stripped = text.strip()
    if stripped.startswith(("def ", "import ", "from ")):
        return [stripped]
    return []


def split_functions(block: str) -> list[tuple[str, str]]:
    """Split a code block into (name, source) per top-level def."""
    matches = list(_DEF_RE.finditer(block))
    out = []
    for i, match in enumerate(matches):
        start = match.start()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(block)
        out.append((match.group(1), block[start:end].rstrip() + "\n"))
    return out


def parse_criteria(text: str, attr: str) -> list[dict]:
    """Parse criterion function sources out of an LLM reply.

    ``context_attrs`` is inferred from the source: any attribute other
    than ``attr`` accessed via ``row[...]`` / ``row.get(...)``.
    """
    specs = []
    for block in extract_code_blocks(text):
        for name, source in split_functions(block):
            accessed = set(_ROW_ATTR_RE.findall(source))
            accessed |= set(_ROW_INDEX_RE.findall(source))
            accessed.discard(attr)
            # 'attr' is the parameter name, not a column.
            accessed.discard("attr")
            specs.append(
                {
                    "name": name,
                    "source": source,
                    "context_attrs": sorted(accessed),
                }
            )
    return specs


def parse_analysis_functions(text: str) -> list[dict]:
    """Parse distribution-analysis function sources."""
    specs = []
    for block in extract_code_blocks(text):
        for name, source in split_functions(block):
            specs.append({"name": name, "source": source})
    return specs


def parse_labels(text: str, expected: int) -> list[int]:
    """Parse a 0/1 label sequence; short answers pad with 0 (clean)."""
    labels = [int(ch) for ch in _LABEL_RE.findall(text)][:expected]
    while len(labels) < expected:
        labels.append(0)
    return labels


def parse_values(text: str, limit: int | None = None) -> list[str]:
    """Parse one generated value per non-empty line, stripping bullets."""
    out = []
    for line in text.splitlines():
        line = line.strip()
        line = re.sub(r"^(?:[-*•]|\d+[.)])\s*", "", line)
        line = line.strip("\"'")
        if line:
            out.append(line)
        if limit is not None and len(out) >= limit:
            break
    return out


def parse_tuple_verdicts(text: str) -> dict[str, bool]:
    """Parse 'attr: yes/no' verdicts from a tuple-check reply."""
    out: dict[str, bool] = {}
    for match in _YES_NO_RE.finditer(text):
        attr = match.group(1).strip()
        out[attr] = match.group(2).lower() == "yes"
    return out
