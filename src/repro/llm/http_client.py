"""HTTP client for OpenAI-compatible chat APIs (vLLM, OpenAI, ...).

The paper runs open models on vLLM and GPT-4o-mini over the OpenAI
API — both speak the ``/v1/chat/completions`` protocol this client
targets.  Replies are plain text; :mod:`repro.llm.parsing` converts
them into the structured payloads the pipeline expects, so ``ZeroED(
llm=HTTPChatLLM(...))`` is a drop-in swap for the simulated backend.

The transport is injectable, which keeps the client fully testable
offline (and lets callers add retries/backoff policies).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from collections.abc import Callable

from repro.errors import LLMError, LLMTimeoutError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm import parsing

#: transport(url, headers, body_bytes, timeout) -> response text
Transport = Callable[[str, dict, bytes, float], str]

#: How much of an HTTP error body survives into the raised message —
#: enough for the server's JSON error object, not a whole HTML page.
ERROR_BODY_LIMIT = 500


def urllib_transport(
    url: str, headers: dict, body: bytes, timeout: float
) -> str:
    """Default transport over urllib (no third-party dependencies).

    HTTP error responses (429 rate limits, 5xx) carry their status and
    a truncated body in the raised :class:`LLMError` — API servers put
    the actionable detail ("rate limit exceeded, retry after ...",
    "model not found") in the body, and the resilience layer routes on
    ``status_code``.  Socket deadlines surface as
    :class:`LLMTimeoutError`.
    """
    request = urllib.request.Request(
        url, data=body, headers=headers, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        try:
            detail = exc.read(ERROR_BODY_LIMIT).decode("utf-8", "replace")
        except OSError:
            detail = "<unreadable body>"
        raise LLMError(
            f"HTTP {exc.code} from {url}: {detail.strip()}",
            status_code=exc.code,
        ) from exc
    except TimeoutError as exc:
        raise LLMTimeoutError(
            f"request to {url} timed out after {timeout:.1f}s"
        ) from exc
    except urllib.error.URLError as exc:
        if isinstance(exc.reason, TimeoutError):
            raise LLMTimeoutError(
                f"request to {url} timed out after {timeout:.1f}s"
            ) from exc
        raise LLMError(f"request to {url} failed: {exc.reason}") from exc


class HTTPChatLLM(LLMClient):
    """Chat-completions client with pipeline-payload parsing."""

    def __init__(
        self,
        base_url: str,
        model: str,
        api_key: str = "",
        temperature: float = 0.0,
        max_tokens: int = 4096,
        timeout: float = 120.0,
        transport: Transport = urllib_transport,
    ) -> None:
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self.model = model
        self.api_key = api_key
        self.temperature = temperature
        self.max_tokens = max_tokens
        self.timeout = timeout
        self.transport = transport

    @property
    def model_name(self) -> str:
        return self.model

    # ------------------------------------------------------------------
    def _complete(self, request: LLMRequest) -> LLMResponse:
        text = self._chat(request.prompt)
        return LLMResponse(
            text=text, payload=self._parse(request, text)
        )

    def _chat(self, prompt: str) -> str:
        body = json.dumps(
            {
                "model": self.model,
                "temperature": self.temperature,
                "max_tokens": self.max_tokens,
                "messages": [{"role": "user", "content": prompt}],
            }
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        url = f"{self.base_url}/chat/completions"
        try:
            raw = self.transport(url, headers, body, self.timeout)
        except LLMError:
            raise  # already carries status_code / timeout semantics
        except TimeoutError as exc:
            raise LLMTimeoutError(
                f"chat request to {url} timed out: {exc}"
            ) from exc
        except Exception as exc:
            raise LLMError(f"chat request to {url} failed: {exc}") from exc
        try:
            payload = json.loads(raw)
            return payload["choices"][0]["message"]["content"]
        except (json.JSONDecodeError, KeyError, IndexError, TypeError) as exc:
            raise LLMError(f"malformed chat response: {exc}") from exc

    # ------------------------------------------------------------------
    def _parse(self, request: LLMRequest, text: str):
        kind = request.kind
        payload = request.payload
        if kind in ("criteria", "contrastive_criteria"):
            return parsing.parse_criteria(text, payload.get("attr", ""))
        if kind == "analysis_functions":
            return parsing.parse_analysis_functions(text)
        if kind == "label_batch":
            return parsing.parse_labels(
                text, expected=len(payload.get("values", []))
            )
        if kind == "augment":
            return parsing.parse_values(text, limit=payload.get("n"))
        if kind == "tuple_check":
            return parsing.parse_tuple_verdicts(text)
        # guideline / error_descriptions: the text is the payload.
        return text
