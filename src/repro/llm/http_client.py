"""HTTP client for OpenAI-compatible chat APIs (vLLM, OpenAI, ...).

The paper runs open models on vLLM and GPT-4o-mini over the OpenAI
API — both speak the ``/v1/chat/completions`` protocol this client
targets.  Replies are plain text; :mod:`repro.llm.parsing` converts
them into the structured payloads the pipeline expects, so ``ZeroED(
llm=HTTPChatLLM(...))`` is a drop-in swap for the simulated backend.

The transport is injectable, which keeps the client fully testable
offline (and lets callers add retries/backoff policies).
"""

from __future__ import annotations

import json
import urllib.request
from collections.abc import Callable

from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm import parsing

#: transport(url, headers, body_bytes, timeout) -> response text
Transport = Callable[[str, dict, bytes, float], str]


def urllib_transport(
    url: str, headers: dict, body: bytes, timeout: float
) -> str:
    """Default transport over urllib (no third-party dependencies)."""
    request = urllib.request.Request(
        url, data=body, headers=headers, method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read().decode("utf-8")


class HTTPChatLLM(LLMClient):
    """Chat-completions client with pipeline-payload parsing."""

    def __init__(
        self,
        base_url: str,
        model: str,
        api_key: str = "",
        temperature: float = 0.0,
        max_tokens: int = 4096,
        timeout: float = 120.0,
        transport: Transport = urllib_transport,
    ) -> None:
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self.model = model
        self.api_key = api_key
        self.temperature = temperature
        self.max_tokens = max_tokens
        self.timeout = timeout
        self.transport = transport

    @property
    def model_name(self) -> str:
        return self.model

    # ------------------------------------------------------------------
    def _complete(self, request: LLMRequest) -> LLMResponse:
        text = self._chat(request.prompt)
        return LLMResponse(
            text=text, payload=self._parse(request, text)
        )

    def _chat(self, prompt: str) -> str:
        body = json.dumps(
            {
                "model": self.model,
                "temperature": self.temperature,
                "max_tokens": self.max_tokens,
                "messages": [{"role": "user", "content": prompt}],
            }
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        url = f"{self.base_url}/chat/completions"
        try:
            raw = self.transport(url, headers, body, self.timeout)
        except Exception as exc:
            raise LLMError(f"chat request to {url} failed: {exc}") from exc
        try:
            payload = json.loads(raw)
            return payload["choices"][0]["message"]["content"]
        except (json.JSONDecodeError, KeyError, IndexError, TypeError) as exc:
            raise LLMError(f"malformed chat response: {exc}") from exc

    # ------------------------------------------------------------------
    def _parse(self, request: LLMRequest, text: str):
        kind = request.kind
        payload = request.payload
        if kind in ("criteria", "contrastive_criteria"):
            return parsing.parse_criteria(text, payload.get("attr", ""))
        if kind == "analysis_functions":
            return parsing.parse_analysis_functions(text)
        if kind == "label_batch":
            return parsing.parse_labels(
                text, expected=len(payload.get("values", []))
            )
        if kind == "augment":
            return parsing.parse_values(text, limit=payload.get("n"))
        if kind == "tuple_check":
            return parsing.parse_tuple_verdicts(text)
        # guideline / error_descriptions: the text is the payload.
        return text
