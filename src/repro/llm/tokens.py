"""Token estimation and usage accounting.

The paper's Fig. 8 compares input/output token consumption between
ZeroED and FM_ED.  Offline we cannot call a tokenizer service, so we
estimate tokens with the standard ~4-characters-per-token heuristic
plus a word-boundary floor, which tracks BPE counts closely enough for
relative comparisons.  :class:`TokenLedger` accumulates usage per
request kind so benchmarks can break costs down by pipeline stage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


def estimate_tokens(text: str) -> int:
    """Estimate the BPE token count of ``text``.

    Uses max(words, chars/4): prose is bounded by the word count,
    code/serialised data by the character heuristic.
    """
    if not text:
        return 0
    words = len(text.split())
    return max(words, len(text) // 4)


@dataclass
class TokenUsage:
    """Input/output token totals."""

    input_tokens: int = 0
    output_tokens: int = 0

    @property
    def total(self) -> int:
        return self.input_tokens + self.output_tokens

    def add(self, other: "TokenUsage") -> None:
        self.input_tokens += other.input_tokens
        self.output_tokens += other.output_tokens


@dataclass
class TokenLedger:
    """Accumulates token usage per request kind and overall.

    ``record`` is guarded by a lock: per-attribute pipeline stages may
    issue LLM requests from worker threads (``config.n_jobs > 1``), and
    the read-modify-write totals must not lose increments.  The sums
    are order-independent, so parallel stages report the same token
    counts as serial ones.
    """

    total: TokenUsage = field(default_factory=TokenUsage)
    by_kind: dict[str, TokenUsage] = field(default_factory=dict)
    n_requests: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, kind: str, input_tokens: int, output_tokens: int) -> None:
        usage = TokenUsage(input_tokens, output_tokens)
        with self._lock:
            self.total.add(usage)
            self.by_kind.setdefault(kind, TokenUsage()).add(usage)
            self.n_requests += 1

    def reset(self) -> None:
        with self._lock:
            self.total = TokenUsage()
            self.by_kind = {}
            self.n_requests = 0

    def summary(self) -> dict[str, int]:
        return {
            "requests": self.n_requests,
            "input_tokens": self.total.input_tokens,
            "output_tokens": self.total.output_tokens,
            "total_tokens": self.total.total,
        }
