"""Prompt templates and tabular serialization (paper §III-B / Fig. 5).

Templates are universal across datasets — the only human effort the
framework requires.  Serialization follows the paper: a tuple becomes a
string of ``attribute: value`` pairs, NULLs rendered as empty strings.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def serialize_tuple(row: Mapping[str, str]) -> str:
    """``{a1: v1, a2: v2, ...}`` serialization of one tuple."""
    inner = ", ".join(f"{attr}: {value}" for attr, value in row.items())
    return "{" + inner + "}"


def serialize_rows(rows: Sequence[Mapping[str, str]]) -> str:
    """Newline-joined serialization of several tuples."""
    return "\n".join(serialize_tuple(r) for r in rows)


ERROR_DESCRIPTIONS = """\
Common error types in tabular data:
1. Missing values: empty fields, NULLs, or placeholder markers (N/A, -, ?).
2. Typos: misspellings or character-level mistakes from manual input.
3. Pattern violations: values whose format differs from the attribute's
   expected format (dates, codes, phone numbers, identifiers).
4. Outliers: values far outside the attribute's statistical distribution
   or expected domain.
5. Rule violations: inconsistencies across related attributes, where one
   attribute's value contradicts what another determines.
"""


CRITERIA_PROMPT = """\
You are a top data scientist in data cleaning. For the attribute
'{attr}' of the '{dataset}' table, reason about possible error causes
and write executable Python error-checking criteria.

Each criterion must be a function `def is_clean_<aspect>(row, attr)` that
returns True when the value `row[attr]` looks clean from that aspect.

Here are randomly sampled tuples from the table:
{samples}

{error_descriptions}
Generate multi-perspective criteria (missing, format, domain/range, and
consistency with the correlated attributes {correlated}) tailored to
this attribute. Import anything you need inside the functions.
"""


ANALYSIS_FUNCTIONS_PROMPT = """\
Based on the column '{attr}' of the '{dataset}' table with examples:
{samples}

Please generate Python functions to analyze the data distribution from
various perspectives, so that we can verify whether an error is
reasonable or not. Each function should:
1. Take parameters (table, attr_name)
2. Return a string containing the detailed analysis results
3. Not enumerate all values, showing representative ones
4. Import necessary libraries inside the function

Example function code snippet:
```python
def distr_analysis_<perspective>(table, attr_name):
    # Your logic here
    return 'Detailed description of the analysis results'
```
"""


GUIDELINE_PROMPT = """\
You are a top data scientist in data cleaning. Please generate a
comprehensive guideline for identifying and analyzing common errors in
the '{attr}' attribute of the '{dataset}' table.

Here is the data distribution analysis for the attribute '{attr}':
{analysis}

Here are examples for '{attr}' with strongly correlated attribute values:
{samples}

Please first explain the meaning of attribute '{attr}'. Then, for each
error type below, considering the data distribution analysis results,
provide specific causes, examples, and detection methods for '{attr}':
{error_descriptions}
NOTE: When analyzing potential errors, only flag values as errors when
you have high confidence.
"""


LABEL_BATCH_PROMPT = """\
You are a meticulous data-cleaning expert. Using the following error
detection guideline for attribute '{attr}' of the '{dataset}' table,
decide for each listed value whether it is erroneous (1) or clean (0).

Guideline:
{guideline}

Values to label (each with its correlated attribute context):
{batch}

Answer with one 0/1 label per value, in order.
"""


CONTRASTIVE_CRITERIA_PROMPT = """\
You are refining error-checking criteria for attribute '{attr}' of the
'{dataset}' table via contrastive examples.

Values labeled ERRONEOUS:
{error_values}

Values labeled CLEAN:
{clean_values}

Study the subtle distinctions between the two groups and output improved
executable Python criteria `def is_clean_<aspect>(row, attr)` that accept
the clean values and reject the erroneous ones.
"""


AUGMENT_PROMPT = """\
You are generating realistic erroneous variants for data augmentation.

Task: for attribute '{attr}' of the '{dataset}' table, produce {n} new
erroneous values that maintain semantic similarity with the examples
while reflecting realistic error scenarios.

Example clean values: {clean_values}
Example observed errors and their apparent reasons: {error_desc}
"""


TUPLE_CHECK_PROMPT = """\
Is there an error in this tuple from the '{dataset}' table?

{tuple}

For each attribute, answer yes or no.
"""
