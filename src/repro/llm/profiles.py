"""LLM quality profiles for the simulated backend.

The paper's Table V compares ZeroED driven by five different LLMs.
Offline we model each model as a *quality profile*: per-error-type
labeling recall, a false-positive rate on clean values, and criteria
generation coverage/noise.  Values are calibrated so the paper's
ordering holds (Qwen2.5-72b best; GPT-4o-mini worst via poor precision;
larger models generally beat smaller ones), not to match absolute
scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.errortypes import ErrorType
from repro.errors import ConfigError


@dataclass(frozen=True)
class LLMProfile:
    """Behavioural parameters of one simulated LLM."""

    name: str
    #: Probability a true error of each type is flagged during labeling.
    recall_by_type: dict[ErrorType, float] = field(default_factory=dict)
    #: Probability a clean value is incorrectly flagged as erroneous.
    false_positive_rate: float = 0.03
    #: Probability each candidate criterion perspective is emitted.
    criteria_coverage: float = 0.9
    #: Relative sloppiness of generated thresholds/regexes (0 = exact).
    criteria_noise: float = 0.05
    #: Probability an augmented error value is a usable, realistic error.
    augment_fidelity: float = 0.9
    #: Salt mixed into the simulator's RNG so models disagree.
    seed_salt: int = 0

    def __post_init__(self) -> None:
        for prob_name in (
            "false_positive_rate", "criteria_coverage", "criteria_noise",
            "augment_fidelity",
        ):
            prob = getattr(self, prob_name)
            if not 0.0 <= prob <= 1.0:
                raise ConfigError(f"{prob_name}={prob} outside [0, 1]")

    def recall(self, error_type: ErrorType) -> float:
        return self.recall_by_type.get(error_type, 0.7)


def _recalls(mv: float, t: float, pv: float, o: float, rv: float) -> dict:
    return {
        ErrorType.MISSING: mv,
        ErrorType.TYPO: t,
        ErrorType.PATTERN: pv,
        ErrorType.OUTLIER: o,
        ErrorType.RULE: rv,
        ErrorType.MIXED: min(t, pv, o),
    }


QWEN_72B = LLMProfile(
    name="qwen2.5-72b",
    recall_by_type=_recalls(0.97, 0.90, 0.88, 0.85, 0.80),
    false_positive_rate=0.02,
    criteria_coverage=0.95,
    criteria_noise=0.03,
    augment_fidelity=0.95,
    seed_salt=1,
)

LLAMA_70B = LLMProfile(
    name="llama3.1-70b",
    recall_by_type=_recalls(0.94, 0.85, 0.82, 0.80, 0.72),
    false_positive_rate=0.04,
    criteria_coverage=0.9,
    criteria_noise=0.05,
    augment_fidelity=0.92,
    seed_salt=2,
)

LLAMA_8B = LLMProfile(
    name="llama3.1-8b",
    recall_by_type=_recalls(0.92, 0.80, 0.75, 0.72, 0.62),
    false_positive_rate=0.05,
    criteria_coverage=0.85,
    criteria_noise=0.08,
    augment_fidelity=0.85,
    seed_salt=3,
)

QWEN_7B = LLMProfile(
    name="qwen2.5-7b",
    recall_by_type=_recalls(0.86, 0.70, 0.65, 0.62, 0.50),
    false_positive_rate=0.09,
    criteria_coverage=0.75,
    criteria_noise=0.12,
    augment_fidelity=0.8,
    seed_salt=4,
)

GPT_4O_MINI = LLMProfile(
    name="gpt-4o-mini",
    # The paper found GPT-4o-mini recall-heavy but precision-poor.
    recall_by_type=_recalls(0.92, 0.78, 0.72, 0.70, 0.55),
    false_positive_rate=0.22,
    criteria_coverage=0.8,
    criteria_noise=0.15,
    augment_fidelity=0.8,
    seed_salt=5,
)

PROFILES: dict[str, LLMProfile] = {
    p.name: p
    for p in (QWEN_72B, LLAMA_70B, LLAMA_8B, QWEN_7B, GPT_4O_MINI)
}

DEFAULT_PROFILE = QWEN_72B


def get_profile(name: str) -> LLMProfile:
    """Look up a profile by model name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown LLM profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
