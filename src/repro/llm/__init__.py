"""LLM layer: client interface, prompts, profiles, simulated backend."""

from repro.llm.client import REQUEST_KINDS, LLMClient, LLMRequest, LLMResponse
from repro.llm.profiles import (
    DEFAULT_PROFILE,
    GPT_4O_MINI,
    LLAMA_8B,
    LLAMA_70B,
    LLMProfile,
    PROFILES,
    QWEN_7B,
    QWEN_72B,
    get_profile,
)
from repro.llm.tokens import TokenLedger, TokenUsage, estimate_tokens

__all__ = [
    "DEFAULT_PROFILE",
    "GPT_4O_MINI",
    "LLAMA_70B",
    "LLAMA_8B",
    "LLMClient",
    "LLMProfile",
    "LLMRequest",
    "LLMResponse",
    "PROFILES",
    "QWEN_72B",
    "QWEN_7B",
    "REQUEST_KINDS",
    "SimulatedLLM",
    "TokenLedger",
    "TokenUsage",
    "estimate_tokens",
    "get_profile",
]


def __getattr__(name: str):
    # SimulatedLLM imports repro.criteria (which is cheap) but keeping
    # the import lazy avoids a hard cycle if criteria ever grows.
    if name == "SimulatedLLM":
        from repro.llm.simulated.engine import SimulatedLLM

        return SimulatedLLM
    raise AttributeError(name)
