"""LLM layer: client interface, prompts, profiles, simulated backend,
resilience wrappers (retry/backoff/breaker), fit checkpoints, and the
deterministic fault-injection harness."""

from repro.llm.checkpoint import CheckpointedLLM, fit_fingerprint
from repro.llm.client import REQUEST_KINDS, LLMClient, LLMRequest, LLMResponse
from repro.llm.faults import FaultPlan, FaultStats, FaultyLLM, FaultyTransport
from repro.llm.profiles import (
    DEFAULT_PROFILE,
    GPT_4O_MINI,
    LLAMA_8B,
    LLAMA_70B,
    LLMProfile,
    PROFILES,
    QWEN_7B,
    QWEN_72B,
    get_profile,
)
from repro.llm.resilience import (
    ResilienceStats,
    ResilientLLM,
    RetryPolicy,
    is_retryable,
)
from repro.llm.tokens import TokenLedger, TokenUsage, estimate_tokens

__all__ = [
    "CheckpointedLLM",
    "DEFAULT_PROFILE",
    "FaultPlan",
    "FaultStats",
    "FaultyLLM",
    "FaultyTransport",
    "GPT_4O_MINI",
    "LLAMA_70B",
    "LLAMA_8B",
    "LLMClient",
    "LLMProfile",
    "LLMRequest",
    "LLMResponse",
    "PROFILES",
    "QWEN_72B",
    "QWEN_7B",
    "REQUEST_KINDS",
    "ResilienceStats",
    "ResilientLLM",
    "RetryPolicy",
    "SimulatedLLM",
    "TokenLedger",
    "TokenUsage",
    "estimate_tokens",
    "fit_fingerprint",
    "get_profile",
    "is_retryable",
]


def __getattr__(name: str):
    # SimulatedLLM imports repro.criteria (which is cheap) but keeping
    # the import lazy avoids a hard cycle if criteria ever grows.
    if name == "SimulatedLLM":
        from repro.llm.simulated.engine import SimulatedLLM

        return SimulatedLLM
    raise AttributeError(name)
