"""The LLM client interface.

Every LLM interaction in the pipeline goes through
:class:`LLMClient.complete` with a typed :class:`LLMRequest`.  The
request carries both the *prompt text* (what a real API would receive —
used for token accounting) and a *structured payload* (the same
information, machine-readable) so the offline simulated backend can
respond deterministically.  Swapping in a real API client only requires
implementing ``_complete`` against the prompt text.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.errors import LLMError
from repro.llm.tokens import TokenLedger, estimate_tokens


#: Request kinds issued by the pipeline and baselines.
REQUEST_KINDS: tuple[str, ...] = (
    "criteria",              # error-checking criteria reasoning (§III-B)
    "analysis_functions",    # distribution-analysis function generation
    "guideline",             # ED guideline synthesis (Fig. 5)
    "error_descriptions",    # generic error-type descriptions
    "label_batch",           # holistic batch labeling (§III-C)
    "contrastive_criteria",  # criteria refinement (Algorithm 1 lines 4-7)
    "augment",               # semantic error augmentation (Algorithm 1)
    "tuple_check",           # FM_ED-style per-tuple query
)


@dataclass
class LLMRequest:
    """One LLM call: prompt text plus structured context."""

    kind: str
    prompt: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise LLMError(f"unknown request kind {self.kind!r}")


@dataclass
class LLMResponse:
    """The model's reply: text (token-accounted) plus parsed payload."""

    text: str
    payload: Any = None


class LLMClient(abc.ABC):
    """Abstract LLM client with built-in token accounting."""

    def __init__(self) -> None:
        self.ledger = TokenLedger()

    @property
    @abc.abstractmethod
    def model_name(self) -> str:
        """Identifier of the underlying model (e.g. 'qwen2.5-72b')."""

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Serve a request, recording input/output token usage."""
        response = self._complete(request)
        self.ledger.record(
            request.kind,
            estimate_tokens(request.prompt),
            estimate_tokens(response.text),
        )
        return response

    @abc.abstractmethod
    def _complete(self, request: LLMRequest) -> LLMResponse:
        """Produce a response for ``request`` (no accounting here)."""
