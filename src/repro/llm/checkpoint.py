"""Per-attribute fit checkpoints: resume without re-spending tokens.

A 10k-row fit spends ~770k input tokens across a few hundred LLM
calls; an interruption (crash, circuit breaker, SIGKILL) used to throw
all of it away.  :class:`CheckpointedLLM` wraps any client and
persists every successful response to disk, grouped into **one JSON
file per attribute** (the pipeline's unit of work)::

    <checkpoint_dir>/
      _meta.json            run fingerprint (schema + seed + model)
      attr-<slug>.json      {request-key: {"text": ..., "payload": ...}}

On a later fit with the same fingerprint, any request whose key is
already on disk is answered from the file — zero tokens recorded, zero
backend calls — so a rerun after an interruption only pays for the
work the first run never finished.

Keys are ``sha256(kind + prompt)``: the prompt embeds the table
sample, the seed-derived row choices and the config-driven phrasing,
so any change that could change the answer changes the key.  The
fingerprint is a coarser guard that wipes the directory's relevance
wholesale (different table, schema, seed or model ⇒ stale files are
ignored and overwritten).

The wrapper composes *outside* the resilience layer —
``CheckpointedLLM(ResilientLLM(client))`` — so cache hits skip the
retry machinery entirely and misses get its full protection.

Payloads are cached only when they round-trip through JSON (every
pipeline payload does: criterion/function specs, 0/1 label lists,
value lists, guideline text, verdict dicts); anything else is served
but not persisted.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path

from repro.llm.client import LLMClient, LLMRequest, LLMResponse

META_NAME = "_meta.json"
_GLOBAL_GROUP = "_global"


def fit_fingerprint(
    table, config, model_name: str
) -> str:
    """Identity of one fit's LLM workload.

    Anything that changes which requests the pipeline issues — the
    table (name, size, schema), the seed, the labeling budget, or the
    model — must change the fingerprint, so checkpoints never leak
    between workloads.
    """
    basis = json.dumps(
        {
            "dataset": table.name,
            "n_rows": table.n_rows,
            "attributes": table.attributes,
            "seed": config.seed,
            "llm_model": model_name,
            "label_rate": config.label_rate,
            "batch_size": config.batch_size,
        },
        sort_keys=True,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def _slug(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:80]
    return cleaned or "attr"


class CheckpointedLLM(LLMClient):
    """Write-through LLM response cache over a checkpoint directory."""

    def __init__(
        self, inner: LLMClient, directory: str | Path, fingerprint: str
    ) -> None:
        super().__init__()
        self.inner = inner
        self.ledger = inner.ledger  # shared: hits simply record nothing
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.n_hits = 0
        self.n_misses = 0
        self._lock = threading.Lock()
        self._groups: dict[str, dict[str, dict]] = {}
        self._load()

    @property
    def model_name(self) -> str:
        return self.inner.model_name

    # ------------------------------------------------------------------
    def complete(self, request: LLMRequest) -> LLMResponse:
        group = self._group_for(request)
        key = self._key(request)
        with self._lock:
            entry = self._groups.get(group, {}).get(key)
        if entry is not None:
            with self._lock:
                self.n_hits += 1
            return LLMResponse(
                text=entry["text"], payload=entry["payload"]
            )
        response = self.inner.complete(request)
        with self._lock:
            self.n_misses += 1
        self._store(group, key, response)
        return response

    def _complete(self, request: LLMRequest) -> LLMResponse:
        # Interface stub; complete() is overridden wholesale so token
        # accounting stays with the inner client (and is skipped on
        # cache hits — that is the point).
        return self.inner._complete(request)

    def summary(self) -> dict:
        with self._lock:
            return {
                "directory": str(self.directory),
                "hits": self.n_hits,
                "misses": self.n_misses,
            }

    # ------------------------------------------------------------------
    @staticmethod
    def _group_for(request: LLMRequest) -> str:
        attr = request.payload.get("attr")
        return _slug(str(attr)) if attr else _GLOBAL_GROUP

    @staticmethod
    def _key(request: LLMRequest) -> str:
        basis = request.kind + "\x1f" + request.prompt
        return hashlib.sha256(basis.encode("utf-8", "replace")).hexdigest()

    def _load(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        meta_path = self.directory / META_NAME
        stale = True
        try:
            meta = json.loads(meta_path.read_text())
            stale = meta.get("fingerprint") != self.fingerprint
        except (OSError, ValueError):
            pass
        if stale:
            # Different workload (or no/corrupt meta): start fresh.
            # Old files are left behind but ignored; the first store
            # per group overwrites them.
            meta_path.write_text(
                json.dumps({"fingerprint": self.fingerprint}) + "\n"
            )
            return
        for path in sorted(self.directory.glob("attr-*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # a torn write from the interrupted run
            entries = data.get("entries")
            if data.get("fingerprint") == self.fingerprint and isinstance(
                entries, dict
            ):
                self._groups[data.get("group", path.stem)] = entries

    def _store(self, group: str, key: str, response: LLMResponse) -> None:
        try:  # cache only JSON-faithful payloads
            payload = json.loads(json.dumps(response.payload))
        except (TypeError, ValueError):
            return
        with self._lock:
            entries = self._groups.setdefault(group, {})
            entries[key] = {"text": response.text, "payload": payload}
            snapshot = dict(entries)
        body = json.dumps(
            {
                "fingerprint": self.fingerprint,
                "group": group,
                "entries": snapshot,
            }
        )
        path = self.directory / f"attr-{group}.json"
        # Unique temp name per writer thread: concurrent stores to one
        # group (possible under n_jobs > 1) must not tear each other.
        tmp = self.directory / f".attr-{group}.{threading.get_ident()}.tmp"
        try:
            tmp.write_text(body + "\n")
            tmp.replace(path)  # atomic: a crash never tears the file
        except OSError:
            # Checkpointing is best-effort; a full disk must not fail
            # the fit that the checkpoint exists to protect.
            pass
