"""Fault tolerance for LLM clients: retries, backoff, circuit breaking.

A production fit spends minutes and hundreds of thousands of tokens on
one table; a single flaky HTTP call must not abort it.
:class:`ResilientLLM` composes over any :class:`~repro.llm.client.
LLMClient` and adds:

* **retries with exponential backoff** — transient failures (timeouts,
  429/5xx, malformed replies) are retried up to ``max_retries`` times
  with exponentially growing, capped sleeps;
* **deterministic seeded jitter** — the backoff jitter derives from
  ``(seed, request kind, prompt checksum, attempt)``, so two runs of
  the same workload sleep identically (no ``random.random()`` — the
  reproducibility contract extends to the failure path);
* **per-call timeout** — an optional wall-clock bound per attempt,
  enforced in a watchdog thread for clients whose transport cannot
  time out on its own;
* **a circuit breaker** — after ``breaker_threshold`` *consecutive*
  failed attempts the circuit opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError` until ``breaker_cooldown_s``
  elapses; the first call after the cooldown is a half-open probe that
  closes the circuit on success and re-opens it on failure;
* **metering** — every attempt, retry, exhausted call and breaker
  transition is counted in a thread-safe :class:`ResilienceStats`
  ledger alongside the token ledger (which is *shared* with the inner
  client: the wrapper is invisible to token accounting).

Retryability: failures without an HTTP status (network errors,
timeouts, unparseable replies) and statuses 408/429/5xx are retryable;
other 4xx are permanent and fail immediately.

Non-LLM exceptions (``KeyboardInterrupt``, programming errors) are
never retried — they propagate so bugs stay loud.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.errors import CircuitOpenError, LLMError, LLMTimeoutError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.obs import log as obs_log

_log = obs_log.get_logger("repro.llm.resilience")

#: HTTP statuses worth retrying on top of status-less failures.
RETRYABLE_STATUS_CODES = frozenset({408, 429})


def is_retryable(exc: LLMError) -> bool:
    """Whether a failure is transient (worth retrying)."""
    if isinstance(exc, CircuitOpenError):
        return False
    status = getattr(exc, "status_code", None)
    if status is None:
        return True  # network error, timeout, malformed reply
    return status in RETRYABLE_STATUS_CODES or status >= 500


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the resilience layer (see ``ZeroEDConfig.llm_*``)."""

    max_retries: int = 2
    """Retries *beyond* the first attempt (0 disables retrying)."""

    backoff_base_s: float = 0.5
    """Sleep before retry ``k`` is ``base * 2**(k-1)``, capped below."""

    backoff_max_s: float = 30.0
    jitter: float = 0.1
    """Each sleep is scaled by ``1 + jitter * u`` with a deterministic
    ``u`` in [-1, 1) derived from (seed, kind, prompt, attempt)."""

    timeout_s: float | None = None
    """Per-attempt wall-clock bound; ``None`` trusts the client's own
    transport timeout (no watchdog thread per call)."""

    breaker_threshold: int = 10
    """Consecutive failed attempts that trip the breaker; 0 disables
    the breaker entirely."""

    breaker_cooldown_s: float = 30.0

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Build the policy from a :class:`~repro.config.ZeroEDConfig`."""
        return cls(
            max_retries=config.llm_max_retries,
            backoff_base_s=config.llm_backoff_s,
            backoff_max_s=config.llm_backoff_max_s,
            timeout_s=config.llm_timeout_s,
            breaker_threshold=config.llm_breaker_threshold,
            breaker_cooldown_s=config.llm_breaker_cooldown_s,
        )


@dataclass
class ResilienceStats:
    """Thread-safe counters for the failure path.

    Invariants (asserted by the chaos suite): every failed attempt is
    either retried or ends its call, so
    ``n_failed_attempts == n_retries + n_failed_calls``; and with the
    breaker closed every fault the backend raised is seen exactly once,
    so ``n_failed_attempts`` equals the injected fault count.
    """

    n_calls: int = 0
    n_attempts: int = 0
    n_failed_attempts: int = 0
    n_retries: int = 0
    n_failed_calls: int = 0
    """Calls that raised after exhausting retries (or a permanent
    failure / open circuit)."""

    n_short_circuited: int = 0
    """Calls rejected immediately by an open breaker."""

    n_breaker_opens: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def summary(self) -> dict:
        with self._lock:
            return {
                "calls": self.n_calls,
                "attempts": self.n_attempts,
                "failed_attempts": self.n_failed_attempts,
                "retries": self.n_retries,
                "failed_calls": self.n_failed_calls,
                "short_circuited": self.n_short_circuited,
                "breaker_opens": self.n_breaker_opens,
                "failures_by_kind": dict(self.failures_by_kind),
            }


class _CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe state."""

    def __init__(self, threshold: int, cooldown_s: float, clock) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.n_opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.n_opens,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }

    def admit(self) -> bool:
        """Whether a call may proceed right now."""
        if self.threshold <= 0:
            return True
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = "half_open"  # one probe allowed
                    return True
                return False
            # half_open: one probe is already in flight; fail fast so
            # a burst against a dead backend stays one request wide.
            return False

    def record_success(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self._consecutive_failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._consecutive_failures >= self.threshold
                or self._state == "half_open"
            )
            if tripped and self._state != "open":
                self._state = "open"
                self._opened_at = self._clock()
                self.n_opens += 1
            elif tripped:  # already open (concurrent failures)
                self._opened_at = self._clock()


class ResilientLLM(LLMClient):
    """Retry/backoff/timeout/circuit-breaker wrapper over any client.

    Shares the inner client's :class:`~repro.llm.tokens.TokenLedger`
    (token accounting happens inside the wrapped ``complete``, exactly
    once per *successful* attempt) and reports the inner model name, so
    the wrapper is transparent to everything but the failure path.

    ``sleep`` and ``clock`` are injectable for tests; ``seed`` feeds
    the deterministic backoff jitter.
    """

    def __init__(
        self,
        inner: LLMClient,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        sleep=time.sleep,
        clock=time.monotonic,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.ledger = inner.ledger  # shared: wrapper is accounting-neutral
        self.policy = policy or RetryPolicy()
        self.seed = seed
        self.stats = ResilienceStats()
        self._sleep = sleep
        self.breaker = _CircuitBreaker(
            self.policy.breaker_threshold,
            self.policy.breaker_cooldown_s,
            clock,
        )

    @property
    def model_name(self) -> str:
        return self.inner.model_name

    # ------------------------------------------------------------------
    def complete(self, request: LLMRequest) -> LLMResponse:
        policy = self.policy
        stats = self.stats
        with stats._lock:
            stats.n_calls += 1
        attempt = 0
        while True:
            if not self.breaker.admit():
                with stats._lock:
                    stats.n_short_circuited += 1
                    stats.n_failed_calls += 1
                raise CircuitOpenError(
                    f"circuit breaker open after "
                    f"{self.policy.breaker_threshold} consecutive LLM "
                    f"failures; retry after "
                    f"{self.policy.breaker_cooldown_s:.0f}s cooldown"
                )
            with stats._lock:
                stats.n_attempts += 1
            try:
                response = self._attempt(request)
            except LLMError as exc:
                opens_before = self.breaker.n_opens
                self.breaker.record_failure()
                if self.breaker.n_opens > opens_before:
                    _log.warning(
                        "llm.breaker_opened",
                        kind=request.kind,
                        threshold=self.policy.breaker_threshold,
                        cooldown_s=self.policy.breaker_cooldown_s,
                    )
                with stats._lock:
                    stats.n_breaker_opens = self.breaker.n_opens
                    stats.n_failed_attempts += 1
                    stats.failures_by_kind[request.kind] = (
                        stats.failures_by_kind.get(request.kind, 0) + 1
                    )
                if not is_retryable(exc) or attempt >= policy.max_retries:
                    with stats._lock:
                        stats.n_failed_calls += 1
                    _log.warning(
                        "llm.call_failed",
                        kind=request.kind,
                        attempts=attempt + 1,
                        retryable=is_retryable(exc),
                        error=str(exc),
                    )
                    raise
                attempt += 1
                with stats._lock:
                    stats.n_retries += 1
                backoff_s = self._backoff(request, attempt)
                _log.info(
                    "llm.retry",
                    kind=request.kind,
                    attempt=attempt,
                    backoff_s=round(backoff_s, 3),
                    error=str(exc),
                )
                self._sleep(backoff_s)
                continue
            self.breaker.record_success()
            return response

    def _complete(self, request: LLMRequest) -> LLMResponse:
        # Unused: complete() is overridden wholesale so the inner
        # client keeps sole ownership of token accounting.
        return self.inner._complete(request)

    # ------------------------------------------------------------------
    def _attempt(self, request: LLMRequest) -> LLMResponse:
        timeout = self.policy.timeout_s
        if timeout is None:
            return self.inner.complete(request)
        box: dict = {}
        done = threading.Event()

        def run() -> None:
            try:
                box["response"] = self.inner.complete(request)
            except BaseException as exc:  # rethrown on the caller thread
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=run, name="llm-attempt", daemon=True
        )
        worker.start()
        if not done.wait(timeout):
            # The blocked call cannot be interrupted from outside; the
            # daemon thread is abandoned and its eventual result (and
            # token accounting, if it ever returns) is discarded.
            raise LLMTimeoutError(
                f"{request.kind} request exceeded the {timeout:.1f}s "
                f"per-call timeout"
            )
        if "error" in box:
            raise box["error"]
        return box["response"]

    def _backoff(self, request: LLMRequest, attempt: int) -> float:
        policy = self.policy
        base = min(
            policy.backoff_base_s * (2 ** (attempt - 1)),
            policy.backoff_max_s,
        )
        if policy.jitter <= 0 or base <= 0:
            return base
        # Deterministic jitter in [-1, 1): a 32-bit mix of the seed,
        # request identity and attempt index — identical across runs
        # and independent of thread scheduling.
        digest = zlib.crc32(
            f"{self.seed}/{request.kind}/{attempt}".encode()
            + request.prompt.encode("utf-8", "replace")
        )
        u = (digest / 2**31) - 1.0
        return max(0.0, base * (1.0 + policy.jitter * u))
