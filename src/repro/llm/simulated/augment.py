"""Semantic error augmentation (simulated LLM; Algorithm 1 line 25).

Given verified clean example values, produce additional *erroneous*
values that stay semantically close while reflecting realistic error
scenarios — the paper's answer to class imbalance.  The simulator
perturbs real clean values with the same operations human typists and
messy imports produce; profile ``augment_fidelity`` controls how often
the "model" produces a genuinely erroneous, usable variant.
"""

from __future__ import annotations

import string

import numpy as np

from repro.data.errortypes import MISSING_PLACEHOLDERS


def _typo(value: str, rng: np.random.Generator) -> str:
    if len(value) < 2:
        return value + "x"
    pos = int(rng.integers(len(value)))
    op = int(rng.integers(3))
    if op == 0 and pos + 1 < len(value):
        chars = list(value)
        chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
        return "".join(chars)
    if op == 1:
        return value[:pos] + value[pos + 1 :]
    pool = string.digits if value[pos].isdigit() else string.ascii_lowercase
    ch = pool[int(rng.integers(len(pool)))]
    if ch == value[pos]:
        ch = "q" if value[pos] != "q" else "z"
    return value[:pos] + ch + value[pos + 1 :]


def _format_break(value: str, rng: np.random.Generator) -> str:
    ops = (
        lambda v: v.upper(),
        lambda v: v.lower(),
        lambda v: v.replace(" ", ""),
        lambda v: v.replace("-", "/") if "-" in v else v + "-",
        lambda v: f"0{v}" if v and v[0].isdigit() else f"{v}.",
    )
    out = ops[int(rng.integers(len(ops)))](value)
    return out if out != value else f"_{value}"


def _numeric_shift(value: str, rng: np.random.Generator) -> str:
    try:
        num = float(value)
    except (TypeError, ValueError):
        return _typo(value, rng)
    factor = float(rng.choice([0.01, 0.1, 10.0, 100.0]))
    shifted = num * factor
    if value.lstrip("-").isdigit():
        return str(int(shifted))
    return f"{shifted:.3f}"


def _placeholder(rng: np.random.Generator) -> str:
    pool = [p for p in MISSING_PLACEHOLDERS if p]
    return pool[int(rng.integers(len(pool)))]


def generate_error_values(
    clean_values: list[str],
    n: int,
    fidelity: float,
    rng: np.random.Generator,
) -> list[str]:
    """Produce ``n`` erroneous variants of the given clean values.

    With probability ``1 - fidelity`` the "model" fails and returns the
    value unperturbed (a useless augmentation example, which the
    pipeline's verification later discards).
    """
    if not clean_values:
        return []
    out = []
    distinct = sorted(set(clean_values))

    def _swap(value: str, rng: np.random.Generator) -> str:
        # Value swap: a *valid-looking* value that belongs elsewhere —
        # the rule-violation error shape (wrong city for the zip).
        alternatives = [v for v in distinct if v != value]
        if not alternatives:
            return _typo(value, rng)
        return alternatives[int(rng.integers(len(alternatives)))]

    mutators = (_typo, _format_break, _numeric_shift, _swap)
    for _ in range(n):
        base = clean_values[int(rng.integers(len(clean_values)))]
        if rng.random() > fidelity:
            out.append(base)
            continue
        if rng.random() < 0.15 or not base:
            out.append(_placeholder(rng))
            continue
        mutate = mutators[int(rng.integers(len(mutators)))]
        out.append(mutate(base, rng))
    return out
