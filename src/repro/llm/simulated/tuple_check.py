"""Per-tuple error querying (simulated LLM; the FM_ED baseline's prompt).

FM_ED asks "is there an error in this tuple?" with *no dataset
context*, so the simulated model can only apply generic pretrained
plausibility knowledge to each cell: missing markers, junk strings,
malformed instances of universally known formats (clock times, dates,
zip-like codes), and absurd magnitudes.  This reproduces the paper's
Table I characterisation — FM_ED handles missing values and surface
anomalies but cannot see pattern conventions, distribution outliers or
cross-tuple rules.
"""

from __future__ import annotations

import re

import numpy as np

from repro.data.errortypes import is_missing_placeholder
from repro.llm.simulated import world

_TIME_RE = re.compile(r"(\d{1,2})[:.](\d{2})(\s*[ap]\.?m\.?)?", re.IGNORECASE)
_DATE_RE = re.compile(r"(\d{4})-(\d{1,2})-(\d{1,2})")


def _malformed_time(value: str) -> bool:
    match = _TIME_RE.fullmatch(value.strip())
    if match is None:
        return False
    hour, minute = int(match.group(1)), int(match.group(2))
    has_meridiem = match.group(3) is not None
    max_hour = 12 if has_meridiem else 23
    return hour < (1 if has_meridiem else 0) or hour > max_hour or minute > 59


def _malformed_date(value: str) -> bool:
    match = _DATE_RE.fullmatch(value.strip())
    if match is None:
        return False
    year, month, day = (int(g) for g in match.groups())
    return not (1800 <= year <= 2100 and 1 <= month <= 12 and 1 <= day <= 31)


def _junk_string(value: str) -> bool:
    stripped = value.strip()
    if not stripped:
        return False
    lowered = stripped.lower()
    if any(m in lowered for m in ("###", "!!", "zzz", "99999999")):
        return True
    if stripped.startswith("@") or stripped.endswith("@"):
        return True
    if "--" in stripped and not any(ch.isalpha() for ch in stripped.split("--")[-1]):
        return True
    symbols = sum(1 for ch in stripped if not ch.isalnum() and not ch.isspace())
    return symbols / len(stripped) > 0.5


def check_tuple(
    row: dict[str, str],
    false_positive_rate: float,
    rng: np.random.Generator,
) -> dict[str, bool]:
    """Per-attribute yes/no verdicts for one serialized tuple."""
    verdicts: dict[str, bool] = {}
    contradicted = set(world.relation_contradictions(row))
    for attr, value in row.items():
        # Bare empties are tolerated: without column context the model
        # cannot know whether a field is optional.  Explicit markers
        # (NULL, N/A, '?') are always suspicious.
        explicit_missing = bool(value.strip()) and is_missing_placeholder(value)
        flagged = (
            explicit_missing
            or _junk_string(value)
            or _malformed_time(value)
            or _malformed_date(value)
            or attr in contradicted
            or world.looks_misspelled(value)
        )
        if not flagged and rng.random() <= false_positive_rate:
            flagged = True
        verdicts[attr] = flagged
    return verdicts
