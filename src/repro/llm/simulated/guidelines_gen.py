"""Guideline text synthesis (simulated LLM; Fig. 5 step two).

Composes a data-specific ED guideline in the structure the paper shows:
attribute meaning, then per error type the causes, examples and
detection methods, grounded in the distribution analysis output.  The
text matters for two things downstream: it is what the labeling prompt
embeds (token accounting) and its presence/absence drives the
w/o-Guid. ablation.
"""

from __future__ import annotations

_ERROR_SECTIONS = (
    (
        "Missing values",
        "fields left empty at entry time or replaced by placeholders",
        "look for empty strings and markers like NULL, N/A, '-', '?'",
    ),
    (
        "Typos",
        "manual input slips: swapped, dropped, or substituted characters",
        "compare rare values against frequent near-identical values "
        "(small edit distance)",
    ),
    (
        "Pattern violations",
        "data imported from sources with different conventions",
        "derive the dominant format shapes from the distribution analysis "
        "and flag values whose shape is unseen or very rare",
    ),
    (
        "Outliers",
        "measurement or unit mistakes producing extreme magnitudes",
        "flag numerics far outside the robust range implied by the "
        "median and quartiles in the analysis",
    ),
    (
        "Rule violations",
        "updates applied to one attribute but not its dependent partner",
        "check the value against what strongly correlated attributes "
        "determine for this row; contradictions with a confident "
        "majority mapping are violations",
    ),
)


def generate_guideline(
    dataset: str,
    attr: str,
    analysis_text: str,
    example_block: str,
) -> str:
    """Compose the guideline markdown for one attribute."""
    analysis = analysis_text.strip()
    if len(analysis) > 2000:
        # Real guidelines condense the analysis rather than quoting it
        # in full; keep prompts (and token bills) bounded.
        analysis = analysis[:2000] + "\n... (analysis condensed)"
    lines = [
        f"# Error detection guideline: '{attr}' in '{dataset}'",
        "",
        f"Explanation of the attribute: '{attr}' stores the values "
        f"observed for this field across all records of '{dataset}'. "
        "Its expected content is characterised by the distribution "
        "analysis below.",
        "",
        "## Data distribution analysis",
        analysis,
        "",
        "## Representative examples (with correlated attribute values)",
        example_block.strip(),
        "",
        "## Error types and analysis",
    ]
    for i, (title, causes, method) in enumerate(_ERROR_SECTIONS, start=1):
        lines.extend(
            [
                f"### {i}. {title}",
                f"- causes: {causes}.",
                f"- detection methods: {method}.",
                "- examples: values in this attribute deviating as described "
                "above, judged against the distribution analysis results.",
            ]
        )
    lines.append(
        "By systematically identifying these errors, you can ensure the "
        f"attribute data in the '{dataset}' table is clean for further "
        "analysis. Only flag values as errors when you have high "
        "confidence."
    )
    return "\n".join(lines)
