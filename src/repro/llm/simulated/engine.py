"""The simulated LLM backend.

Implements :class:`~repro.llm.client.LLMClient` entirely offline.  Each
request kind the ZeroED pipeline (or a baseline) issues is served by a
deterministic reasoning module; the configured
:class:`~repro.llm.profiles.LLMProfile` injects model-dependent
coverage and noise so the Table V model comparison is meaningful.

Determinism: every response is a pure function of (profile, request
payload, client seed), so experiment runs are exactly reproducible.
"""

from __future__ import annotations

from repro.criteria import compile_criteria
from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.profiles import DEFAULT_PROFILE, LLMProfile
from repro.llm.simulated import (
    analysis_gen,
    augment,
    codegen,
    guidelines_gen,
    labeling,
    tuple_check,
)
from repro.llm.prompts import ERROR_DESCRIPTIONS
from repro.ml.rng import spawn


class SimulatedLLM(LLMClient):
    """Offline deterministic stand-in for an LLM API."""

    def __init__(self, profile: LLMProfile = DEFAULT_PROFILE, seed: int = 0) -> None:
        super().__init__()
        self.profile = profile
        self.seed = seed

    @property
    def model_name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    def _complete(self, request: LLMRequest) -> LLMResponse:
        handler = getattr(self, f"_handle_{request.kind}", None)
        if handler is None:
            raise LLMError(f"simulated backend cannot serve {request.kind!r}")
        return handler(request)

    def _rng(self, *key_parts: object):
        key = "/".join(str(p) for p in key_parts)
        return spawn(self.seed + self.profile.seed_salt, key)

    # ------------------------------------------------------------------
    # Handlers, one per request kind
    # ------------------------------------------------------------------
    def _handle_criteria(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng("criteria", p["dataset"], p["attr"])
        specs = codegen.generate_criteria(
            attr=p["attr"],
            sample_rows=p["sample_rows"],
            correlated=p.get("correlated", []),
            coverage=self.profile.criteria_coverage,
            noise=self.profile.criteria_noise,
            rng=rng,
        )
        text = "\n\n".join(s["source"] for s in specs)
        return LLMResponse(text=text, payload=specs)

    def _handle_analysis_functions(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng("analysis", p["dataset"], p["attr"])
        specs = analysis_gen.generate_analysis_functions(
            coverage=self.profile.criteria_coverage, rng=rng
        )
        text = "\n\n".join(s["source"] for s in specs)
        return LLMResponse(text=text, payload=specs)

    def _handle_guideline(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        text = guidelines_gen.generate_guideline(
            dataset=p["dataset"],
            attr=p["attr"],
            analysis_text=p.get("analysis_text", ""),
            example_block=p.get("example_block", ""),
        )
        return LLMResponse(text=text, payload=text)

    def _handle_error_descriptions(self, request: LLMRequest) -> LLMResponse:
        return LLMResponse(text=ERROR_DESCRIPTIONS, payload=ERROR_DESCRIPTIONS)

    def _handle_label_batch(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng(
            "label", p["dataset"], p["attr"], p.get("batch_id", 0)
        )
        labels = labeling.label_batch(
            values=p["values"],
            contexts=p["contexts"],
            stats=p["stats"],
            pair_stats=p.get("pair_stats", {}),
            guided=p.get("guided", True),
            recall_by_type=self.profile.recall,
            false_positive_rate=self.profile.false_positive_rate,
            rng=rng,
        )
        text = " ".join(str(v) for v in labels)
        return LLMResponse(text=text, payload=labels)

    def _handle_contrastive_criteria(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng("contrastive", p["dataset"], p["attr"])
        # Refinement: regenerate from *labeled-clean* rows (a larger,
        # cleaner basis than the random init sample), then self-check
        # against the contrastive error examples.
        specs = codegen.generate_criteria(
            attr=p["attr"],
            sample_rows=p["clean_rows"],
            correlated=p.get("correlated", []),
            coverage=min(1.0, self.profile.criteria_coverage + 0.05),
            noise=self.profile.criteria_noise,
            rng=rng,
        )
        # Error examples keep their row context so context-dependent
        # criteria (cross-attribute consistency) are judged fairly.
        error_rows = p.get("error_rows") or [
            {p["attr"]: v} for v in p.get("error_values", [])
        ]
        kept = []
        compiled = {c.name: c for c in compile_criteria(p["attr"], specs)}
        for spec in specs:
            crit = compiled.get(spec["name"])
            if crit is None:
                continue
            clean_pass = crit.accuracy_on(p["clean_rows"])
            error_pass = crit.accuracy_on(error_rows) if error_rows else 0.0
            # Keep checks that accept the clean side; discrimination on
            # the error side is a bonus (missing checks pass clean
            # errors through, e.g. typos, and are still useful).
            if clean_pass >= 0.7 and (not error_rows or error_pass <= 0.8
                                      or clean_pass - error_pass >= 0.1):
                kept.append(spec)
        if not kept:
            kept = specs[:1]
        text = "\n\n".join(s["source"] for s in kept)
        return LLMResponse(text=text, payload=kept)

    def _handle_augment(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng("augment", p["dataset"], p["attr"])
        values = augment.generate_error_values(
            clean_values=p["clean_values"],
            n=p["n"],
            fidelity=self.profile.augment_fidelity,
            rng=rng,
        )
        return LLMResponse(text="\n".join(values), payload=values)

    def _handle_tuple_check(self, request: LLMRequest) -> LLMResponse:
        p = request.payload
        rng = self._rng("tuple", p["dataset"], p.get("row_id", 0))
        verdicts = tuple_check.check_tuple(
            row=p["row"],
            false_positive_rate=self.profile.false_positive_rate / 4,
            rng=rng,
        )
        # FM_ED-style terse feedback (the paper: "only yes/no feedback
        # without further error reasoning insights").
        flagged = [attr for attr, bad in verdicts.items() if bad]
        text = f"yes: {', '.join(flagged)}" if flagged else "no"
        return LLMResponse(text=text, payload=verdicts)
