"""Synthesis of executable error-checking criteria (simulated LLM).

The real system prompts an LLM with sampled tuples and receives Python
functions like Fig. 4's ``is_clean_hour_range``.  The simulator plays
that role: it inspects the sampled rows and *writes Python source
strings* for multi-perspective checks — missing, format (a regex
induced from the samples' character-class structure), numeric range,
small-domain membership, and cross-attribute consistency.  The emitted
code is self-contained (only stdlib imports) and is compiled and
executed by the pipeline exactly as LLM-generated code would be.

Each criterion is returned as a dict::

    {"name": str, "source": str, "context_attrs": [str, ...]}

``context_attrs`` lists the other attributes the check reads, which the
pipeline uses to cache executions per distinct value tuple.
"""

from __future__ import annotations

import re
from collections import Counter

import numpy as np

from repro.data.errortypes import is_missing_placeholder


def _char_class(ch: str) -> str:
    if ch.isdigit():
        return r"\d"
    if ch.isalpha():
        return "[A-Z]" if ch.isupper() else "[a-z]"
    return re.escape(ch)


def _value_regex(value: str) -> str:
    """Regex for one value's character-class run structure."""
    if not value:
        return ""
    parts: list[str] = []
    run_class = _char_class(value[0])
    run_len = 1
    for ch in value[1:]:
        cls = _char_class(ch)
        if cls == run_class:
            run_len += 1
            continue
        parts.append(_quantify(run_class, run_len))
        run_class, run_len = cls, 1
    parts.append(_quantify(run_class, run_len))
    return "".join(parts)


def _quantify(cls: str, length: int) -> str:
    if cls in (r"\d", "[A-Z]", "[a-z]"):
        # Loosen run lengths a little: real LLMs write tolerant regexes.
        lo = max(1, length - 1)
        hi = length + 2
        return f"{cls}{{{lo},{hi}}}" if (lo, hi) != (1, 1) else cls
    return cls * length


def induce_pattern_regex(values: list[str], max_alternatives: int = 6) -> str | None:
    """A union regex covering the dominant formats among ``values``."""
    regexes = Counter(
        _value_regex(v) for v in values if v and not is_missing_placeholder(v)
    )
    if not regexes:
        return None
    top = [rx for rx, _ in regexes.most_common(max_alternatives) if rx]
    if not top:
        return None
    return "|".join(f"(?:{rx})" for rx in top)


# ----------------------------------------------------------------------
# Criterion source templates
# ----------------------------------------------------------------------
def missing_criterion() -> dict:
    source = '''\
def is_clean_not_missing(row, attr):
    value = row[attr]
    if value is None:
        return False
    stripped = value.strip()
    placeholders = {"", "null", "n/a", "na", "-", "?", "unknown", "missing"}
    return stripped.lower() not in placeholders
'''
    return {"name": "is_clean_not_missing", "source": source, "context_attrs": []}


def pattern_criterion(values: list[str]) -> dict | None:
    regex = induce_pattern_regex(values)
    if regex is None:
        return None
    source = f'''\
def is_clean_pattern(row, attr):
    import re
    value = row[attr]
    if not value:
        return False
    return re.fullmatch(r"{regex}", value) is not None
'''
    return {"name": "is_clean_pattern", "source": source, "context_attrs": []}


def range_criterion(
    values: list[str], noise: float, rng: np.random.Generator
) -> dict | None:
    numbers = []
    for v in values:
        try:
            numbers.append(float(v))
        except (TypeError, ValueError):
            pass
    if len(numbers) < max(3, 0.7 * len([v for v in values if v])):
        return None
    lo, hi = min(numbers), max(numbers)
    span = (hi - lo) or max(abs(hi), 1.0)
    # Widen by half a span (samples under-cover the true range) and add
    # profile-controlled sloppiness.
    margin = span * (0.5 + float(rng.uniform(0, noise * 2)))
    lo_b, hi_b = lo - margin, hi + margin
    source = f'''\
def is_clean_range(row, attr):
    value = row[attr]
    try:
        num = float(value)
    except (TypeError, ValueError):
        return False
    return {lo_b!r} <= num <= {hi_b!r}
'''
    return {"name": "is_clean_range", "source": source, "context_attrs": []}


def domain_criterion(values: list[str]) -> dict | None:
    non_empty = [v for v in values if v and not is_missing_placeholder(v)]
    if not non_empty:
        return None
    distinct = sorted(set(non_empty))
    # Only plausible for enum-like attributes: few distinct short values
    # that each repeat within the sample.
    if len(distinct) > max(3, len(non_empty) // 6):
        return None
    if any(len(v) > 40 for v in distinct):
        return None
    source = f'''\
def is_clean_domain(row, attr):
    value = row[attr]
    if not value:
        return False
    return value in {distinct!r}
'''
    return {"name": "is_clean_domain", "source": source, "context_attrs": []}


def consistency_criterion(
    attr: str, other: str, rows: list[dict]
) -> dict | None:
    """Cross-attribute check: ``other``'s value determines ``attr``'s.

    Builds a mapping from the sampled rows (the Fig. 4 Hospital example
    hard-codes exactly this kind of learned mapping).  Unseen ``other``
    values pass — a criterion can only vouch for what it has seen.
    """
    groups: dict[str, Counter] = {}
    for row in rows:
        lhs = row.get(other, "")
        rhs = row.get(attr, "")
        if lhs and rhs:
            groups.setdefault(lhs, Counter())[rhs] += 1
    mapping = {
        lhs: counts.most_common(1)[0][0]
        for lhs, counts in groups.items()
        if sum(counts.values()) >= 3
        and counts.most_common(1)[0][1] / sum(counts.values()) >= 0.75
    }
    if len(mapping) < 2:
        return None
    fn_name = f"is_clean_consistent_with_{_safe(other)}"
    source = f'''\
def {fn_name}(row, attr):
    mapping = {mapping!r}
    lhs = row.get({other!r}, "")
    expected = mapping.get(lhs)
    if expected is None:
        return True
    return row[attr] == expected
'''
    return {"name": fn_name, "source": source, "context_attrs": [other]}


def length_criterion(values: list[str]) -> dict | None:
    lengths = [len(v) for v in values if v and not is_missing_placeholder(v)]
    if len(lengths) < 3:
        return None
    lo = max(1, min(lengths) - 2)
    hi = max(lengths) + max(4, max(lengths) // 2)
    source = f'''\
def is_clean_length(row, attr):
    value = row[attr]
    if not value:
        return False
    return {lo} <= len(value) <= {hi}
'''
    return {"name": "is_clean_length", "source": source, "context_attrs": []}


def _safe(name: str) -> str:
    return re.sub(r"\W+", "_", name)


# ----------------------------------------------------------------------
# Criteria assembly
# ----------------------------------------------------------------------
def generate_criteria(
    attr: str,
    sample_rows: list[dict],
    correlated: list[str],
    coverage: float,
    noise: float,
    rng: np.random.Generator,
) -> list[dict]:
    """Assemble the multi-perspective criteria set for one attribute."""
    values = [row.get(attr, "") for row in sample_rows]
    candidates: list[dict | None] = [missing_criterion()]
    candidates.append(range_criterion(values, noise, rng))
    # A pattern regex on free numerics is redundant with the range check.
    if candidates[-1] is None:
        candidates.append(pattern_criterion(values))
    candidates.append(domain_criterion(values))
    candidates.append(length_criterion(values))
    for other in correlated:
        candidates.append(consistency_criterion(attr, other, sample_rows))
    out = []
    for cand in candidates:
        if cand is None:
            continue
        if rng.random() <= coverage:
            out.append(cand)
    if not out:
        out.append(missing_criterion())
    return out
