"""Simulated 'pretrained world knowledge'.

A real LLM arrives knowing public facts — US cities and their states,
that SCIP measure codes concern surgical infection prevention, common
English words and names.  That knowledge is what lets FM_ED-style
per-tuple prompting catch *some* errors without any dataset context.
This module reconstructs that knowledge from the same public facts the
dataset generators draw on (which is precisely why an LLM would know
them) and exposes two checks:

* relation contradictions between two cells of one tuple, keyed by
  attribute-name semantics (city/state, country/region, code/condition);
* misspelled-word detection: an alphabetic token that is not a known
  word but sits one edit from a known word.
"""

from __future__ import annotations

import re

from repro.data import pools
from repro.text.distance import within_edit_distance
from repro.text.tokenize import tokenize

# ----------------------------------------------------------------------
# Known binary relations, keyed by (lhs-name-hint, rhs-name-hint).
# ----------------------------------------------------------------------
_CITY_STATE = {c.lower(): s for c, (s, _) in pools.CITY_STATE.items()}
_STATE_CODES = {s for s, _ in pools.CITY_STATE.values()}
_COUNTRY_REGION = {
    "united states": "north america", "canada": "north america",
    "mexico": "north america", "brazil": "south america",
    "china": "east asia", "japan": "east asia", "south korea": "east asia",
    "india": "south asia", "indonesia": "south east asia",
    "germany": "europe", "united kingdom": "europe", "france": "europe",
    "italy": "europe", "spain": "europe", "sweden": "europe",
    "switzerland": "europe", "russia": "europe", "turkey": "middle east",
    "saudi arabia": "middle east", "australia": "oceania",
}
_MEASURE_CONDITION_PREFIXES = {
    "scip": "surgical infection prevention",
    "ami": "heart attack",
    "pn": "pneumonia",
    "hf": "heart failure",
    "cac": "children asthma care",
}


def _vocabulary() -> frozenset[str]:
    words: set[str] = set()
    for pool in (
        pools.FIRST_NAMES, pools.LAST_NAMES, pools.COUNTRIES,
        pools.INDUSTRIES, pools.BEER_STYLES, pools.BEER_WORDS,
        pools.BEER_NOUNS, pools.BREWERY_SUFFIXES, pools.HOSPITAL_TYPES,
        pools.HOSPITAL_OWNERS, pools.JOURNALS, pools.LANGUAGES,
        pools.MOVIE_GENRES, pools.MOVIE_WORDS, pools.MOVIE_NOUNS,
        pools.COMPANY_WORDS, pools.COMPANY_SUFFIXES,
        pools.EDUCATION_LEVELS, tuple(pools.CITY_STATE),
        tuple(pools.MEASURE_NAMES.values()),
        tuple(pools.HOSPITAL_CONDITIONS),
    ):
        for entry in pool:
            words.update(tokenize(str(entry)))
    # Everyday tokens that appear in generated values.
    words.update(
        """patients street avenue drive boulevard medical center hospital
        regional memorial min the a true false male female yes no self
        made study review analysis report trial""".split()
    )
    return frozenset(w for w in words if len(w) >= 3)


WORLD_VOCAB: frozenset[str] = _vocabulary()

_VOCAB_BY_LENGTH: dict[int, list[str]] = {}
for _word in WORLD_VOCAB:
    _VOCAB_BY_LENGTH.setdefault(len(_word), []).append(_word)

# Only long tokens are judged: short words have so many edit-distance-1
# neighbours that 'fine'→'fire' style false alarms dominate.
_ALPHA_TOKEN = re.compile(r"^[a-z]{6,}$")
_token_verdicts: dict[str, bool] = {}


def _token_misspelled(token: str) -> bool:
    cached = _token_verdicts.get(token)
    if cached is not None:
        return cached
    verdict = False
    for length in (len(token) - 1, len(token), len(token) + 1):
        for word in _VOCAB_BY_LENGTH.get(length, ()):
            if within_edit_distance(token, word, 1):
                verdict = True
                break
        if verdict:
            break
    if len(_token_verdicts) < 100_000:
        _token_verdicts[token] = verdict
    return verdict


def looks_misspelled(value: str) -> bool:
    """Does the value contain a token one edit away from a known word?

    Mirrors an LLM recognising 'Bechxlor' as a mangled 'Bachelor'.
    Only alphabetic tokens of length >= 4 are judged, and only when the
    token itself is unknown.
    """
    return any(
        _token_misspelled(token)
        for token in tokenize(value)
        if _ALPHA_TOKEN.match(token) and token not in WORLD_VOCAB
    )


def _name_hint(attr: str, *hints: str) -> bool:
    lowered = attr.lower()
    return any(h in lowered for h in hints)


def relation_contradictions(row: dict[str, str]) -> list[str]:
    """Attributes of ``row`` contradicting known public relations."""
    out: list[str] = []
    lowered = {a: (v or "").strip().lower() for a, v in row.items()}
    city_attrs = [a for a in row if _name_hint(a, "city")]
    state_attrs = [a for a in row if _name_hint(a, "state") and "avg" not in a.lower()]
    for ca in city_attrs:
        city = lowered[ca]
        if city not in _CITY_STATE:
            continue
        for sa in state_attrs:
            state = (row[sa] or "").strip().upper()
            if state in _STATE_CODES and state != _CITY_STATE[city]:
                out.append(sa)
    country_attrs = [a for a in row if _name_hint(a, "citizenship", "country")]
    region_attrs = [a for a in row if _name_hint(a, "region")]
    for ca in country_attrs:
        country = lowered[ca]
        if country not in _COUNTRY_REGION:
            continue
        for ra in region_attrs:
            region = lowered[ra]
            if region and region != _COUNTRY_REGION[country]:
                out.append(ra)
    code_attrs = [a for a in row if _name_hint(a, "measurecode", "measure_code")]
    condition_attrs = [a for a in row if _name_hint(a, "condition")]
    for ma in code_attrs:
        prefix = lowered[ma].split("-")[0]
        expected = _MEASURE_CONDITION_PREFIXES.get(prefix)
        if expected is None:
            continue
        for cond in condition_attrs:
            if lowered[cond] and lowered[cond] != expected:
                out.append(cond)
    return out
