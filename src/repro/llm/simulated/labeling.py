"""Holistic batch labeling (simulated LLM).

Given a batch of attribute values with correlated-attribute context and
the distribution facts that the guideline embeds, decide per value
whether it is erroneous.  The decision procedure mirrors what the ED
guideline instructs a model to do — check missing markers, rare
formats, robust numeric outliers, near-duplicate typos, and
cross-attribute contradictions — and the LLM quality profile injects
per-type misses and false positives so different "models" genuinely
differ (Table V).

When ``guided`` is False (the w/o-Guid. ablation), the simulated model
loses the distribution-grounded checks that guidelines provide and
falls back to value-local reasoning, degrading pattern/rule/outlier
recall — reproducing the ablation's direction on complex datasets.
"""

from __future__ import annotations

import numpy as np

from repro.data.errortypes import ErrorType, is_missing_placeholder
from repro.data.stats import AttributeStats, PairStats

#: Free-text guard: above this distinct-patterns-per-distinct-value
#: ratio, format rarity is meaningless (every value has a fresh shape).
MAX_PATTERN_DIVERSITY = 0.5
#: Columns more-missing than this treat empties as the norm, not errors.
MAX_MISSING_SHARE = 0.5


def _rare_count_threshold(n_rows: int) -> int:
    """How many occurrences still count as 'rare' at this column size."""
    return max(3, round(0.003 * n_rows))


def detect_error_type(
    value: str,
    context: dict[str, str],
    stats: AttributeStats,
    pair_stats: dict[str, PairStats],
    guided: bool,
) -> ErrorType | None:
    """The 'ideal reasoning' verdict, before profile noise is applied."""
    if is_missing_placeholder(value):
        # A mostly-empty column (optional field) makes empties expected.
        if stats.missing_share() <= MAX_MISSING_SHARE:
            return ErrorType.MISSING
        return None
    if stats.numeric.fraction >= 0.7:
        if not _parses_as_number(value):
            # A non-numeric value in an (almost entirely) numeric
            # column is a format break: '0.065.', '12_', '#450'.
            return ErrorType.PATTERN
        if stats.numeric.is_outlier(value):
            return ErrorType.OUTLIER
    rare = _rare_count_threshold(stats.n_rows)
    value_count = stats.value_counts.get(value, 0)
    if guided:
        # Distribution-grounded checks: the guideline supplies format and
        # dependency facts that single-value prompting cannot see.
        for lhs_attr, ps in pair_stats.items():
            lhs_value = context.get(lhs_attr, "")
            if lhs_value and ps.fd_strength >= 0.8 and ps.violates(lhs_value, value):
                return ErrorType.RULE
        if (
            stats.pattern_diversity() <= MAX_PATTERN_DIVERSITY
            and value_count <= rare
            and _pattern_is_rare(stats, value, rare)
        ):
            near = stats.nearest_frequent_value(value)
            if near is not None:
                return ErrorType.TYPO
            return ErrorType.PATTERN
        if stats.is_categorical() and value_count <= rare:
            near = stats.nearest_frequent_value(value)
            return ErrorType.TYPO if near is not None else ErrorType.OUTLIER
        if (
            value_count <= rare
            and not stats.is_categorical()
            and stats.nearest_frequent_value(value) is not None
        ):
            return ErrorType.TYPO
    else:
        # Unguided: only value-local cues survive (generic pretrained
        # knowledge): gross format junk and near-duplicate typos.
        if _looks_like_junk(value):
            return ErrorType.PATTERN
        if value_count <= rare and stats.nearest_frequent_value(value) is not None:
            return ErrorType.TYPO
    return None


def _parses_as_number(value: str) -> bool:
    try:
        float(value)
    except (TypeError, ValueError):
        return False
    # Leading zeros on integers ('0123') are a format break even though
    # float() accepts them.
    stripped = value.lstrip("-")
    return not (
        len(stripped) > 1 and stripped[0] == "0" and stripped[1].isdigit()
    )


def _pattern_is_rare(stats: AttributeStats, value: str, rare: int) -> bool:
    """Is the value's format rare for this column?

    Absolute rarity (a handful of occurrences) always counts.  In
    format-concentrated columns (one dominant shape covering most rows),
    relative rarity also counts: corruptions of many different values
    share one 'broken' shape (lowercased codes, zero-padded ids), which
    is collectively non-tiny but still far from the convention.
    """
    count3 = stats.pattern_count(value, level=3)
    if count3 <= rare:
        return True
    top = stats.pattern_counts.most_common(1)
    if not top:
        return False
    top_share = top[0][1] / max(stats.n_rows, 1)
    share3 = count3 / max(stats.n_rows, 1)
    return top_share >= 0.3 and share3 <= 0.05


def _looks_like_junk(value: str) -> bool:
    """Generic 'this cannot be real data' cues (no dataset context)."""
    stripped = value.strip()
    if not stripped:
        return False
    junk_markers = ("###", "!!", "zzz", "@", "99999999")
    if any(m in stripped.lower() for m in junk_markers):
        return True
    symbols = sum(1 for ch in stripped if not ch.isalnum() and not ch.isspace())
    return symbols / len(stripped) > 0.5


def label_batch(
    values: list[str],
    contexts: list[dict[str, str]],
    stats: AttributeStats,
    pair_stats: dict[str, PairStats],
    guided: bool,
    recall_by_type,
    false_positive_rate: float,
    rng: np.random.Generator,
) -> list[int]:
    """Apply reasoning + profile noise to one batch; returns 0/1 labels."""
    labels = []
    for value, context in zip(values, contexts):
        verdict = detect_error_type(value, context, stats, pair_stats, guided)
        if verdict is not None:
            keep = rng.random() <= recall_by_type(verdict)
            labels.append(1 if keep else 0)
        else:
            flip = rng.random() <= false_positive_rate
            labels.append(1 if flip else 0)
    return labels
