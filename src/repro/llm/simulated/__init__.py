"""Deterministic offline LLM backend (see DESIGN.md §1)."""

from repro.llm.simulated import (  # noqa: F401  (re-exported submodules)
    analysis_gen,
    augment,
    codegen,
    guidelines_gen,
    labeling,
    tuple_check,
)

__all__ = [
    "analysis_gen",
    "augment",
    "codegen",
    "guidelines_gen",
    "labeling",
    "tuple_check",
]
