"""Synthesis of distribution-analysis functions (simulated LLM).

Step one of the paper's guideline generation (Fig. 5): the LLM writes
Python functions ``distr_analysis_<perspective>(table, attr_name)`` that
parse the *whole* dataset and return textual analysis results.  The
simulator emits self-contained sources against the library's ``Table``
API (``table.column_view(attr_name)`` yields the cell list), covering
the perspectives the paper names: value distribution, missing values,
format patterns, and numeric statistics.
"""

from __future__ import annotations


def value_distribution_function() -> dict:
    source = '''\
def distr_analysis_value_distribution(table, attr_name):
    from collections import Counter
    col = list(table.column_view(attr_name))
    counts = Counter(col)
    total = len(col)
    top = counts.most_common(8)
    lines = [f"Total records: {total}", f"Distinct values: {len(counts)}"]
    lines.append("Most common values:")
    for value, count in top:
        shown = value if value else "<empty>"
        lines.append(f"  {shown!r}: {count} ({100.0 * count / total:.2f}%)")
    rare = sum(1 for c in counts.values() if c == 1)
    lines.append(f"Values occurring once: {rare} ({100.0 * rare / total:.2f}%)")
    return "\\n".join(lines)
'''
    return {"name": "distr_analysis_value_distribution", "source": source}


def missing_function() -> dict:
    source = '''\
def distr_analysis_missing(table, attr_name):
    col = list(table.column_view(attr_name))
    placeholders = {"", "null", "n/a", "na", "-", "?", "unknown", "missing"}
    n_missing = sum(1 for v in col if v.strip().lower() in placeholders)
    total = len(col)
    return (f"Missing values: {n_missing} "
            f"({100.0 * n_missing / max(total, 1):.2f}%) of {total} records")
'''
    return {"name": "distr_analysis_missing", "source": source}


def pattern_function() -> dict:
    source = '''\
def distr_analysis_pattern(table, attr_name):
    from collections import Counter

    def shape(value):
        out = []
        last = None
        for ch in value:
            if ch.isupper():
                cls = "U"
            elif ch.islower():
                cls = "l"
            elif ch.isdigit():
                cls = "9"
            else:
                cls = ch
            if cls != last:
                out.append(cls)
                last = cls
        return "".join(out)

    col = list(table.column_view(attr_name))
    shapes = Counter(shape(v) for v in col if v)
    total = max(sum(shapes.values()), 1)
    lines = ["Format shape distribution (U=upper l=lower 9=digit):"]
    for s, count in shapes.most_common(6):
        lines.append(f"  {s!r}: {count} ({100.0 * count / total:.2f}%)")
    lines.append(f"Distinct shapes: {len(shapes)}")
    return "\\n".join(lines)
'''
    return {"name": "distr_analysis_pattern", "source": source}


def numeric_function() -> dict:
    source = '''\
def distr_analysis_numeric(table, attr_name):
    col = list(table.column_view(attr_name))
    numbers = []
    for v in col:
        try:
            numbers.append(float(v))
        except (TypeError, ValueError):
            pass
    if not numbers:
        return "Numeric analysis: no numeric values in this attribute."
    numbers.sort()
    n = len(numbers)
    q = lambda p: numbers[min(n - 1, int(p * n))]
    return (f"Numeric analysis: {n}/{len(col)} values numeric; "
            f"min={numbers[0]:.4g}, p25={q(0.25):.4g}, median={q(0.5):.4g}, "
            f"p75={q(0.75):.4g}, max={numbers[-1]:.4g}")
'''
    return {"name": "distr_analysis_numeric", "source": source}


def generate_analysis_functions(coverage: float, rng) -> list[dict]:
    """Emit the analysis-function set, thinned by profile coverage.

    The value-distribution perspective is always emitted — every model
    in the paper's comparison produced at least basic frequency
    analysis.
    """
    out = [value_distribution_function()]
    for cand in (missing_function(), pattern_function(), numeric_function()):
        if rng.random() <= coverage:
            out.append(cand)
    return out
