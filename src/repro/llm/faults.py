"""Deterministic fault injection for LLM clients and transports.

The chaos suite needs a flaky backend whose flakiness is *exactly*
reproducible: same seed, same sequence of timeouts, HTTP errors and
garbage replies.  Two injectors share one seeded plan:

* :class:`FaultyLLM` wraps any :class:`~repro.llm.client.LLMClient`
  and, per call, either raises a fault (timeout / HTTP 429 / HTTP 500 /
  malformed reply), returns a *truncated* but parseable response, or
  passes through untouched;
* :class:`FaultyTransport` wraps an HTTP transport callable (the
  injection point of :class:`~repro.llm.http_client.HTTPChatLLM`) with
  the same fault kinds at the wire level.

Both meter every injection in :class:`FaultStats`, so tests can assert
*exact* retry accounting: each raised fault must show up as exactly one
failed attempt in the resilience layer.

Determinism: draws come from one ``random.Random(seed)`` stream in call
order.  Under ``n_jobs > 1`` thread interleaving reorders the draws, so
chaos tests pin ``n_jobs=1`` when they assert byte-level outcomes; the
*counts* invariants hold for any jobs count.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import LLMError, LLMTimeoutError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault mix.  Rates are independent probabilities summed in
    order (timeout, http, malformed, truncate); their sum must be
    <= 1.0, the remainder passes through clean."""

    timeout_rate: float = 0.0
    http_error_rate: float = 0.0
    malformed_rate: float = 0.0
    truncate_rate: float = 0.0
    seed: int = 0
    kinds: tuple[str, ...] | None = None
    """Restrict injection to these request kinds (None = all)."""

    max_faults: int | None = None
    """Stop injecting after this many faults (None = unbounded) — a
    liveness valve for 100%-rate scenarios."""

    http_statuses: tuple[int, ...] = (429, 500)

    def __post_init__(self) -> None:
        total = (
            self.timeout_rate + self.http_error_rate
            + self.malformed_rate + self.truncate_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates sum to {total}, outside [0, 1]")


@dataclass
class FaultStats:
    """Counts of injected faults, by kind of injection."""

    n_calls: int = 0
    n_timeouts: int = 0
    n_http_errors: int = 0
    n_malformed: int = 0
    n_truncated: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def n_raised(self) -> int:
        """Faults that surfaced as exceptions (truncations do not)."""
        return self.n_timeouts + self.n_http_errors + self.n_malformed

    @property
    def n_injected(self) -> int:
        return self.n_raised + self.n_truncated

    def summary(self) -> dict:
        with self._lock:
            return {
                "calls": self.n_calls,
                "timeouts": self.n_timeouts,
                "http_errors": self.n_http_errors,
                "malformed": self.n_malformed,
                "truncated": self.n_truncated,
                "raised": self.n_raised,
            }


class _Injector:
    """Shared draw/accounting logic for both fault surfaces."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()

    def draw(self, kind: str | None = None) -> str | None:
        """The fault to inject for this call (None = pass through)."""
        plan = self.plan
        with self._lock:
            self.stats.n_calls += 1
            if plan.kinds is not None and kind not in plan.kinds:
                return None
            if (
                plan.max_faults is not None
                and self.stats.n_injected >= plan.max_faults
            ):
                return None
            u = self._rng.random()
            edge = plan.timeout_rate
            if u < edge:
                self.stats.n_timeouts += 1
                return "timeout"
            edge += plan.http_error_rate
            if u < edge:
                self.stats.n_http_errors += 1
                return "http"
            edge += plan.malformed_rate
            if u < edge:
                self.stats.n_malformed += 1
                return "malformed"
            edge += plan.truncate_rate
            if u < edge:
                self.stats.n_truncated += 1
                return "truncate"
            return None

    def http_status(self) -> int:
        with self._lock:
            return self._rng.choice(self.plan.http_statuses)


class FaultyLLM(LLMClient):
    """Client wrapper injecting seeded faults ahead of the backend.

    Raised faults (timeout / HTTP / malformed) never reach the inner
    client, so they consume no tokens — mirroring a request that died
    on the wire.  Truncations call the backend, then halve the reply
    text and any list payload: a parseable-but-short answer, the
    lenient-parsing path (label padding, short augment lists).
    """

    def __init__(self, inner: LLMClient, plan: FaultPlan) -> None:
        super().__init__()
        self.inner = inner
        self.ledger = inner.ledger  # shared, like the resilience layer
        self.plan = plan
        self._injector = _Injector(plan)

    @property
    def stats(self) -> FaultStats:
        return self._injector.stats

    @property
    def model_name(self) -> str:
        return self.inner.model_name

    def complete(self, request: LLMRequest) -> LLMResponse:
        fault = self._injector.draw(request.kind)
        if fault == "timeout":
            raise LLMTimeoutError(
                f"injected timeout for {request.kind} request"
            )
        if fault == "http":
            status = self._injector.http_status()
            raise LLMError(
                f"injected HTTP {status} for {request.kind} request",
                status_code=status,
            )
        if fault == "malformed":
            raise LLMError(
                f"injected malformed reply for {request.kind} request "
                "(unparseable response body)"
            )
        response = self.inner.complete(request)
        if fault == "truncate":
            return _truncate_response(response)
        return response

    def _complete(self, request: LLMRequest) -> LLMResponse:
        # complete() is overridden wholesale (accounting stays with the
        # inner client); this satisfies the abstract interface only.
        return self.inner._complete(request)


def _truncate_response(response: LLMResponse) -> LLMResponse:
    text = response.text[: max(1, len(response.text) // 2)]
    payload = response.payload
    if isinstance(payload, list):
        payload = payload[: len(payload) // 2]
    elif isinstance(payload, str):
        payload = payload[: max(1, len(payload) // 2)]
    return LLMResponse(text=text, payload=payload)


class FaultyTransport:
    """Wire-level twin of :class:`FaultyLLM` for ``HTTPChatLLM``.

    Honours the transport contract of :mod:`repro.llm.http_client`:
    HTTP faults raise :class:`LLMError` with ``status_code`` set (as
    ``urllib_transport`` does for real error responses), timeouts raise
    :class:`TimeoutError` (as ``urllib.request`` does when the socket
    deadline passes), malformed faults return a non-JSON body, and
    truncations halve the inner transport's raw reply.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._injector = _Injector(plan)

    @property
    def stats(self) -> FaultStats:
        return self._injector.stats

    def __call__(
        self, url: str, headers: dict, body: bytes, timeout: float
    ) -> str:
        fault = self._injector.draw()
        if fault == "timeout":
            raise TimeoutError("injected socket timeout")
        if fault == "http":
            status = self._injector.http_status()
            raise LLMError(
                f"injected HTTP {status} from {url}: "
                '{"error": "injected fault"}',
                status_code=status,
            )
        if fault == "malformed":
            return '{"choices": [{"mess'  # cut mid-stream
        raw = self.inner(url, headers, body, timeout)
        if fault == "truncate":
            return raw[: max(1, len(raw) // 2)]
        return raw
