"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table operation referenced an unknown attribute or mismatched shape."""


class DataError(ReproError):
    """Malformed input data (bad CSV, inconsistent row widths, ...)."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class LLMError(ReproError):
    """An LLM request could not be served (unknown prompt kind, bad
    payload, transport failure, malformed reply).

    ``status_code`` carries the HTTP status when the failure came from
    an HTTP transport (429, 500, ...); ``None`` for non-HTTP failures.
    The resilience layer uses it to separate retryable conditions
    (timeouts, 429, 5xx) from permanent ones (400, 401, 404).
    """

    def __init__(self, message: str = "", *, status_code: int | None = None):
        super().__init__(message)
        self.status_code = status_code


class LLMTimeoutError(LLMError):
    """An LLM request exceeded its per-call timeout."""


class CircuitOpenError(LLMError):
    """The LLM circuit breaker is open: calls fail fast without
    touching the backend until the cooldown elapses."""


class CriteriaError(ReproError):
    """Generated criterion source failed to compile or was rejected."""


class NotFittedError(ReproError):
    """A model method requiring a fitted state was called before fitting."""


class ArtifactError(ReproError):
    """A detector artifact is corrupted, tampered, or incompatible."""


#: Stable machine-readable codes per error class — the shared
#: vocabulary of the CLI's stderr JSON and the scoring service's error
#: bodies.  Subclasses inherit their nearest mapped ancestor's code
#: (LLMTimeoutError -> "llm_error"), so new exception types never
#: silently mint new wire codes.
ERROR_CODES: dict[type, str] = {
    ArtifactError: "artifact_error",
    SchemaError: "schema_error",
    DataError: "data_error",
    ConfigError: "config_error",
    LLMError: "llm_error",
    CriteriaError: "criteria_error",
    NotFittedError: "not_fitted",
    ReproError: "error",
}


def error_code(exc: BaseException) -> str:
    """The stable wire code for an exception (``"internal"`` outside
    the :class:`ReproError` hierarchy)."""
    for klass in type(exc).__mro__:
        if klass in ERROR_CODES:
            return ERROR_CODES[klass]
    return "internal"
