"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table operation referenced an unknown attribute or mismatched shape."""


class DataError(ReproError):
    """Malformed input data (bad CSV, inconsistent row widths, ...)."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class LLMError(ReproError):
    """An LLM request could not be served (unknown prompt kind, bad payload)."""


class CriteriaError(ReproError):
    """Generated criterion source failed to compile or was rejected."""


class NotFittedError(ReproError):
    """A model method requiring a fitted state was called before fitting."""


class ArtifactError(ReproError):
    """A detector artifact is corrupted, tampered, or incompatible."""
