"""Terminal-rendered line/bar charts for figure benchmarks.

The paper's evaluation is half figures; an offline reproduction still
wants to *see* the curves.  These renderers draw compact ASCII charts
(one character cell per plot cell) from the same series data the
benchmarks write to JSON, so ``pytest benchmarks/ -s`` shows the shape
of Fig. 6-11 directly in the terminal.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def render_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    Each series gets a marker character; the legend maps markers back
    to names.  Points are nearest-cell plotted (no interpolation) —
    enough to read monotonicity, gaps and crossovers.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - row), col

    legend = []
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(f"{' ' * label_width}  {x_axis}")
    footer = "  ".join(legend)
    if x_label or y_label:
        footer += f"   [{y_label} vs {x_label}]"
    lines.append(footer)
    return "\n".join(lines)


def render_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render a labelled horizontal bar chart (values >= 0)."""
    if not values:
        return f"{title}\n(no data)"
    peak = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{str(name).ljust(label_width)} |{bar} {value:.3g}")
    return "\n".join(lines)
