"""Multi-seed experiment aggregation.

The paper reports every number as "the average of three repeated
experiments" (§IV-A) and backs Table III/IV claims with paired t-tests.
This module runs a method across seeds and aggregates mean/std, plus a
paired t-test helper built on scipy for method-vs-method comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.bench.harness import MethodRun, run_method


@dataclass(frozen=True)
class AggregateRun:
    """Mean/std of P/R/F1 over repeated seeded runs."""

    method: str
    dataset: str
    n_runs: int
    precision_mean: float
    precision_std: float
    recall_mean: float
    recall_std: float
    f1_mean: float
    f1_std: float
    f1_values: tuple[float, ...]

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "runs": self.n_runs,
            "precision": f"{self.precision_mean:.3f}±{self.precision_std:.3f}",
            "recall": f"{self.recall_mean:.3f}±{self.recall_std:.3f}",
            "f1": f"{self.f1_mean:.3f}±{self.f1_std:.3f}",
        }


def run_repeated(
    method: str,
    dataset: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    **kwargs,
) -> AggregateRun:
    """Run ``method`` on ``dataset`` once per seed and aggregate.

    Each seed re-generates the dataset (fresh clean data and fresh
    corruption) and re-seeds every stochastic pipeline component — the
    paper's repeated-experiments protocol.
    """
    runs: list[MethodRun] = [
        run_method(method, dataset, seed=seed, **kwargs) for seed in seeds
    ]
    precision = np.array([r.prf.precision for r in runs])
    recall = np.array([r.prf.recall for r in runs])
    f1 = np.array([r.prf.f1 for r in runs])
    return AggregateRun(
        method=method,
        dataset=dataset,
        n_runs=len(runs),
        precision_mean=float(precision.mean()),
        precision_std=float(precision.std()),
        recall_mean=float(recall.mean()),
        recall_std=float(recall.std()),
        f1_mean=float(f1.mean()),
        f1_std=float(f1.std()),
        f1_values=tuple(float(v) for v in f1),
    )


def paired_t_test(
    a: AggregateRun, b: AggregateRun
) -> tuple[float, float]:
    """Paired t-test on per-seed F1 values; returns (statistic, p).

    Pairs by seed (both aggregates must use the same seed list), the
    protocol behind the paper's "statistically significant with
    p < 0.05" claims.
    """
    if len(a.f1_values) != len(b.f1_values):
        raise ValueError("aggregates must have the same number of runs")
    statistic, p_value = scipy_stats.ttest_rel(a.f1_values, b.f1_values)
    return float(statistic), float(p_value)
