"""Tabular reporting helpers for benchmark output.

Prints paper-style rows (method × dataset with Prec/Rec/F1) and writes
JSON artifacts so EXPERIMENTS.md entries can reference raw numbers.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Fixed-width text table from a list of row dicts."""
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) if rows
        else len(str(c))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def write_json(path: str | Path, payload) -> Path:
    """Write a JSON artifact, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def results_dir() -> Path:
    """Default artifact directory (repo-level ``results/``)."""
    return Path(__file__).resolve().parents[3] / "results"
