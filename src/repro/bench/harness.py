"""Benchmark harness: run any method on any dataset uniformly.

Maps method names to configured detectors (baselines get the dataset's
rule pack / KB / label budget; ZeroED gets its config), runs detection,
and scores against ground truth.  All experiment drivers in
``benchmarks/`` build on :func:`run_method` and :func:`run_comparison`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import ActiveClean, DBoost, FMED, Katara, Nadeef, Raha
from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.core.result import DetectionResult
from repro.data.generators.base import DatasetSpec
from repro.data.injector import InjectionResult
from repro.data.registry import get_dataset
from repro.llm.profiles import get_profile
from repro.llm.simulated.engine import SimulatedLLM
from repro.ml.metrics import PRF

METHODS: tuple[str, ...] = (
    "dboost", "nadeef", "katara", "activeclean", "raha", "fm_ed", "zeroed",
)

#: Manual-label budget given to label-based baselines (paper §IV-A:
#: "2 labeled tuples per dataset for ED methods requiring manual labels").
DEFAULT_LABEL_BUDGET = 2


@dataclass
class MethodRun:
    """One (method, dataset) evaluation."""

    method: str
    dataset: str
    prf: PRF
    seconds: float
    input_tokens: int = 0
    output_tokens: int = 0
    result: DetectionResult | None = field(default=None, repr=False)

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "precision": round(self.prf.precision, 3),
            "recall": round(self.prf.recall, 3),
            "f1": round(self.prf.f1, 3),
            "seconds": round(self.seconds, 2),
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
        }


def build_detector(
    method: str,
    data: InjectionResult,
    spec: DatasetSpec,
    seed: int = 0,
    llm_model: str = "qwen2.5-72b",
    zeroed_config: ZeroEDConfig | None = None,
    label_budget: int = DEFAULT_LABEL_BUDGET,
):
    """Instantiate a configured detector for one dataset."""
    if method == "dboost":
        return DBoost()
    if method == "nadeef":
        return Nadeef(spec.rules)
    if method == "katara":
        return Katara(spec.kb)
    if method == "activeclean":
        return ActiveClean(data.mask, n_labeled_tuples=label_budget, seed=seed)
    if method == "raha":
        return Raha(data.mask, n_labeled_tuples=label_budget, seed=seed)
    if method == "fm_ed":
        return FMED(SimulatedLLM(profile=get_profile(llm_model), seed=seed))
    if method == "zeroed":
        config = zeroed_config or ZeroEDConfig(seed=seed, llm_model=llm_model)
        return ZeroED(config=config)
    raise ValueError(f"unknown method {method!r}; one of {METHODS}")


def run_method(
    method: str,
    dataset: str,
    n_rows: int | None = None,
    seed: int = 0,
    llm_model: str = "qwen2.5-72b",
    zeroed_config: ZeroEDConfig | None = None,
    label_budget: int = DEFAULT_LABEL_BUDGET,
    data: InjectionResult | None = None,
) -> MethodRun:
    """Generate (or reuse) a dataset, run one method, score it."""
    spec = get_dataset(dataset)
    if data is None:
        data = spec.make(n_rows=n_rows, seed=seed)
    detector = build_detector(
        method, data, spec,
        seed=seed, llm_model=llm_model,
        zeroed_config=zeroed_config, label_budget=label_budget,
    )
    result = detector.detect(data.dirty)
    return MethodRun(
        method=method,
        dataset=dataset,
        prf=result.score(data.mask),
        seconds=result.total_seconds,
        input_tokens=result.input_tokens,
        output_tokens=result.output_tokens,
        result=result,
    )


def run_comparison(
    datasets: list[str],
    methods: list[str] | None = None,
    n_rows: int | None = None,
    seed: int = 0,
    **kwargs,
) -> list[MethodRun]:
    """Cross product of methods × datasets (Table III's workload)."""
    methods = list(methods or METHODS)
    runs = []
    for dataset in datasets:
        spec = get_dataset(dataset)
        data = spec.make(n_rows=n_rows, seed=seed)
        for method in methods:
            runs.append(
                run_method(
                    method, dataset, seed=seed, data=data, **kwargs
                )
            )
    return runs
