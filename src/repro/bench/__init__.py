"""Benchmark harness: uniform method runners and reporting."""

from repro.bench.harness import (
    DEFAULT_LABEL_BUDGET,
    METHODS,
    MethodRun,
    build_detector,
    run_comparison,
    run_method,
)
from repro.bench.repeats import AggregateRun, paired_t_test, run_repeated
from repro.bench.reporting import format_table, results_dir, write_json

__all__ = [
    "AggregateRun",
    "DEFAULT_LABEL_BUDGET",
    "METHODS",
    "MethodRun",
    "build_detector",
    "format_table",
    "paired_t_test",
    "results_dir",
    "run_comparison",
    "run_method",
    "run_repeated",
    "write_json",
]
