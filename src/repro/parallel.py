"""Deterministic parallel execution of per-attribute stages.

The pipeline's three dominant stages — Step-2 sampling, Step-3
verification + training-data assembly, and Step-4 detector
train/predict — are *per-attribute independent*: every task is a pure
function of ``(table, config.seed, attr)`` whose randomness comes from
``ml.rng.spawn(seed, f"stage/{attr}")``, so no task reads another
task's output.  This module fans such stages across a thread pool and
collects results in attribute order.

Threads, not processes: the workers are NumPy/BLAS-bound (GEMMs release
the GIL) and share large read-only state — the table, its interned
column encodings, the feature-space base-matrix cache — that processes
would have to pickle per worker.  Callers pre-warm any *lazily built*
shared caches serially before fanning out (see
``core/pipeline.py``), so workers only read them; the remaining shared
writes are idempotent memoizations of pure functions (same key, same
value), which cannot change results regardless of interleaving.

Determinism contract: for any ``n_jobs`` — including the default
``n_jobs=1``, which runs a plain serial loop, bit-for-bit the
historical code path — results are identical because per-attribute
seeds never depend on execution order and ``parallel_map`` returns
results in input order.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from repro.errors import ConfigError
from repro.obs import trace as _trace

T = TypeVar("T")
R = TypeVar("R")


def effective_jobs(n_jobs: int, n_items: int | None = None) -> int:
    """Concrete worker count for a requested ``n_jobs``.

    ``-1`` means one worker per CPU core; any other value must be
    >= 1.  The result is clamped to ``n_items`` (no point spawning
    idle workers) and never below 1.
    """
    if n_jobs == -1:
        n_jobs = os.cpu_count() or 1
    elif n_jobs < 1:
        raise ConfigError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    if n_items is not None:
        n_jobs = min(n_jobs, n_items)
    return max(1, n_jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int = 1,
) -> list[R]:
    """``[fn(item) for item in items]``, optionally across threads.

    Results come back in input order whatever the completion order
    (order-stable collection), and a worker exception propagates to the
    caller as it would from the serial loop.  With an effective job
    count of 1 this *is* the serial loop — no executor, no queueing —
    so the default path stays bit-for-bit the historical one.
    """
    items = list(items)
    jobs = effective_jobs(n_jobs, len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    # Pool threads start from a default contextvars context; carry the
    # caller's span context across so worker spans nest under it (a
    # no-op returning fn unchanged when tracing is off).
    fn = _trace.propagate(fn)
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


def parallel_map_stream(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int = 1,
    window: int | None = None,
) -> Iterator[R]:
    """Lazy ``parallel_map`` over an *iterator*, bounded in-flight work.

    The out-of-core primitive: ``items`` is consumed incrementally —
    never more than ``window`` items (default ``2 * jobs``) are pulled
    ahead of the slowest unconsumed result, so an arbitrarily long
    stream of chunks runs in fixed memory.  Results are yielded
    strictly in input order whatever the completion order, and a worker
    exception propagates at the yield point for its item.  With an
    effective job count of 1 this is the plain lazy generator — no
    executor, no read-ahead — bit-for-bit the serial loop.
    """
    jobs = effective_jobs(n_jobs)
    if jobs <= 1:
        for item in items:
            yield fn(item)
        return
    if window is None:
        window = 2 * jobs
    window = max(window, jobs)
    fn = _trace.propagate(fn)
    pending: deque = deque()
    pool = ThreadPoolExecutor(max_workers=jobs)
    try:
        for item in items:
            pending.append(pool.submit(fn, item))
            while len(pending) >= window:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
    finally:
        # A consumer abandoning the generator, a worker error, or a
        # KeyboardInterrupt mid-wait must not leave queued chunks
        # running: cancel everything not yet started so teardown joins
        # at most the <= jobs shards already executing — the bounded
        # window is also the bound on shutdown latency.  (A plain
        # ``with`` block would wait for every queued future instead.)
        pool.shutdown(wait=True, cancel_futures=True)


def parallel_attr_map(
    fn: Callable[[str], R],
    attrs: Sequence[str],
    n_jobs: int = 1,
    span: str | None = None,
) -> dict[str, R]:
    """Per-attribute fan-out collected into an attr-keyed dict.

    Insertion order follows ``attrs`` (pipeline consumers iterate these
    dicts, and downstream RNG draws depend on that order), regardless
    of which worker finishes first.

    ``span`` names a per-attribute tracing span wrapping each call
    (attribute carried as the ``attr`` span attribute).  Only applied
    when a recording tracer is installed — the default no-op tracer
    leaves ``fn`` unwrapped, keeping the serial path bit-for-bit the
    historical loop.
    """
    if span is not None and _trace.get_tracer().enabled:
        inner = fn

        def fn(attr):
            with _trace.span(span, attr=attr):
                return inner(attr)

    return dict(zip(attrs, parallel_map(fn, attrs, n_jobs)))
