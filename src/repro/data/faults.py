"""Deterministic IO fault injection (chaos layer, serving side).

The PR 6 chaos layer (:mod:`repro.llm.faults`) made the *fit* phase's
backend deterministically flaky; this module does the same for the
*serve* phase's disk IO.  :class:`FaultyIO` is a seeded ``open``
replacement whose file handles misbehave on a reproducible schedule:

* **torn writes** — a ``write`` persists only a prefix of its payload,
  then raises ``OSError(ENOSPC)`` (the classic power-cut / full-disk
  shape journals must survive);
* **ENOSPC** — a ``write`` fails outright without persisting anything;
* **partial reads** — a ``read`` returns fewer bytes than requested
  (short read, not an error — callers must loop or tolerate);
* **permission errors** — an ``open`` raises :class:`PermissionError`.

Anything that takes an ``opener`` injection point — notably
:class:`repro.serving.jobs.ScoreJournal` — can be run against a
``FaultyIO`` to prove it recovers from interrupted writes: the chaos
suite (``pytest -m chaos``, ``tests/test_chaos_serving.py``) pins that
a journal torn at *any* record still resumes to the exact
uninterrupted mask.

Determinism mirrors :class:`~repro.llm.faults.FaultPlan`: one
``random.Random(seed)`` stream drawn in call order, exact counts in
:class:`IOFaultStats`.
"""

from __future__ import annotations

import builtins
import errno
import random
import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IOFaultPlan:
    """Seeded IO fault mix.  Rates are independent probabilities summed
    in order (torn write, ENOSPC, partial read, permission); write
    faults are drawn per ``write`` call, read faults per ``read`` call,
    permission faults per ``open``.  Each group's rates must sum to
    <= 1.0; the remainder passes through clean."""

    torn_write_rate: float = 0.0
    enospc_rate: float = 0.0
    partial_read_rate: float = 0.0
    permission_rate: float = 0.0
    seed: int = 0

    max_faults: int | None = None
    """Stop injecting after this many faults (None = unbounded) — the
    liveness valve for 100%-rate scenarios, as in FaultPlan."""

    def __post_init__(self) -> None:
        write_total = self.torn_write_rate + self.enospc_rate
        for name, total in (
            ("write fault rates", write_total),
            ("partial_read_rate", self.partial_read_rate),
            ("permission_rate", self.permission_rate),
        ):
            if not 0.0 <= total <= 1.0:
                raise ValueError(f"{name} sum to {total}, outside [0, 1]")


@dataclass
class IOFaultStats:
    """Counts of injected IO faults, by kind."""

    n_opens: int = 0
    n_writes: int = 0
    n_reads: int = 0
    n_torn_writes: int = 0
    n_enospc: int = 0
    n_partial_reads: int = 0
    n_permission_errors: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def n_injected(self) -> int:
        return (
            self.n_torn_writes
            + self.n_enospc
            + self.n_partial_reads
            + self.n_permission_errors
        )

    def summary(self) -> dict:
        with self._lock:
            return {
                "opens": self.n_opens,
                "writes": self.n_writes,
                "reads": self.n_reads,
                "torn_writes": self.n_torn_writes,
                "enospc": self.n_enospc,
                "partial_reads": self.n_partial_reads,
                "permission_errors": self.n_permission_errors,
            }


class FaultyIO:
    """A seeded ``open`` replacement injecting disk-level faults.

    Use it wherever an ``opener`` is accepted::

        chaos = FaultyIO(IOFaultPlan(torn_write_rate=0.2, seed=7))
        journal = ScoreJournal.begin(path, fingerprint, opener=chaos.open)

    The injected exceptions are real :class:`OSError` instances with
    the matching ``errno`` (``ENOSPC`` for full-disk shapes), so code
    under test exercises its production error handling, not a
    test-only exception type.
    """

    def __init__(self, plan: IOFaultPlan) -> None:
        self.plan = plan
        self.stats = IOFaultStats()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _draw(self, first_rate: float, second_rate: float = 0.0) -> int:
        """0 = clean, 1 = first fault kind, 2 = second fault kind."""
        with self._lock:
            if (
                self.plan.max_faults is not None
                and self.stats.n_injected >= self.plan.max_faults
            ):
                return 0
            u = self._rng.random()
            if u < first_rate:
                return 1
            if u < first_rate + second_rate:
                return 2
            return 0

    # ------------------------------------------------------------------
    def open(self, path, mode="r", **kwargs):
        """Drop-in for :func:`open`, returning a fault-wrapped handle."""
        with self.stats._lock:
            self.stats.n_opens += 1
        if self._draw(self.plan.permission_rate) == 1:
            with self.stats._lock:
                self.stats.n_permission_errors += 1
            raise PermissionError(
                errno.EACCES, "injected permission error", str(path)
            )
        return _FaultyFile(builtins.open(path, mode, **kwargs), self)

    # Called by _FaultyFile -------------------------------------------
    def _write_fault(self) -> str | None:
        with self.stats._lock:
            self.stats.n_writes += 1
        drawn = self._draw(self.plan.torn_write_rate, self.plan.enospc_rate)
        if drawn == 1:
            with self.stats._lock:
                self.stats.n_torn_writes += 1
            return "torn"
        if drawn == 2:
            with self.stats._lock:
                self.stats.n_enospc += 1
            return "enospc"
        return None

    def _read_fault(self) -> bool:
        with self.stats._lock:
            self.stats.n_reads += 1
        if self._draw(self.plan.partial_read_rate) == 1:
            with self.stats._lock:
                self.stats.n_partial_reads += 1
            return True
        return False


class _FaultyFile:
    """Proxy around a real file handle that injects planned faults.

    Only ``read``/``write`` misbehave; everything else (seek, tell,
    flush, close, iteration, context management) passes straight
    through, so the handle stays usable after a fault exactly like a
    real descriptor after a failed syscall.
    """

    def __init__(self, inner, io: FaultyIO) -> None:
        self._inner = inner
        self._io = io

    def write(self, data):
        fault = self._io._write_fault()
        if fault == "torn":
            # Persist a strict prefix, then fail — the caller's bytes
            # are *partially* on disk, the torn-write recovery case.
            torn = data[: max(1, len(data) // 2)] if len(data) else data
            self._inner.write(torn)
            self._inner.flush()
            raise OSError(
                errno.ENOSPC, "injected torn write (no space left)"
            )
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC (nothing written)")
        return self._inner.write(data)

    def read(self, size=-1):
        data = self._inner.read(size)
        if len(data) > 1 and self._io._read_fault():
            # Short read: hand back a prefix and rewind the rest, as a
            # signal-interrupted read() would.
            kept = data[: len(data) // 2]
            self._inner.seek(self._inner.tell() - (len(data) - len(kept)))
            return kept
        return data

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._inner.close()
        return False

    def __iter__(self):
        return iter(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)
