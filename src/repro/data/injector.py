"""Error injection into clean tables (BART / BigDaMa error-generator substitute).

Given a clean :class:`~repro.data.table.Table`, an :class:`ErrorProfile`
with per-type cell rates, and optional dataset hints (numeric attributes
for outliers, functional dependencies for rule violations), the injector
produces a dirty copy plus a full record of what was corrupted where.
The five operations mirror the paper's taxonomy:

* missing values — replace with an empty string or placeholder;
* typos — 1–2 character edits (swap / delete / insert / substitute);
* pattern violations — format rewrites that produce a pattern unseen in
  the clean column (case flips, separator changes, digit padding);
* outliers — extreme numeric rescaling, or a rare junk token for
  non-numeric attributes;
* rule violations — replace an FD's right-hand value with the value
  belonging to a *different* left-hand side, breaking the dependency
  without leaving a lexical trace.

It also ships the paper's post-hoc error-type classifier (Table II
footnote) used to bucket real-world errors for Fig. 11.
"""

from __future__ import annotations

import string
from collections import Counter
from dataclasses import dataclass, field

from repro.data.errortypes import (
    MISSING_PLACEHOLDERS,
    ErrorType,
    is_missing_placeholder,
)
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.errors import ConfigError
from repro.ml.rng import RngLike, as_generator
from repro.text.distance import within_edit_distance
from repro.text.patterns import generalize


@dataclass(frozen=True)
class FunctionalDependency:
    """A single-attribute FD ``lhs -> rhs`` (e.g. Name -> Gender)."""

    lhs: str
    rhs: str

    def __str__(self) -> str:
        return f"{self.lhs} -> {self.rhs}"


@dataclass
class ErrorProfile:
    """Per-type cell error rates (fractions of all cells).

    Matches Table II's MV/PV/T/O/RV columns.  ``rate(t)`` of the cells
    eligible for type ``t`` are corrupted; each cell receives at most
    one corruption unless ``allow_overlap`` is set (the mixed-error
    scenario of Fig. 11).
    """

    missing: float = 0.0
    typo: float = 0.0
    pattern: float = 0.0
    outlier: float = 0.0
    rule: float = 0.0
    allow_overlap: bool = False

    def __post_init__(self) -> None:
        for name in ("missing", "typo", "pattern", "outlier", "rule"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} rate {rate} outside [0, 1]")

    def rates(self) -> dict[ErrorType, float]:
        return {
            ErrorType.MISSING: self.missing,
            ErrorType.TYPO: self.typo,
            ErrorType.PATTERN: self.pattern,
            ErrorType.OUTLIER: self.outlier,
            ErrorType.RULE: self.rule,
        }

    def total(self) -> float:
        return sum(self.rates().values())

    @classmethod
    def single_type(cls, error_type: ErrorType, rate: float) -> "ErrorProfile":
        """A profile that injects only one error type (Fig. 11 scenarios)."""
        kwargs = {
            ErrorType.MISSING: "missing",
            ErrorType.TYPO: "typo",
            ErrorType.PATTERN: "pattern",
            ErrorType.OUTLIER: "outlier",
            ErrorType.RULE: "rule",
        }
        if error_type not in kwargs:
            raise ConfigError(f"cannot build single-type profile for {error_type}")
        return cls(**{kwargs[error_type]: rate})


@dataclass
class InjectionResult:
    """Dirty table, ground-truth mask, and per-cell injected types."""

    dirty: Table
    clean: Table
    mask: ErrorMask
    injected: dict[tuple[int, str], ErrorType] = field(default_factory=dict)

    def count_by_type(self) -> dict[ErrorType, int]:
        counts: dict[ErrorType, int] = {}
        for t in self.injected.values():
            counts[t] = counts.get(t, 0) + 1
        return counts


class ErrorInjector:
    """Injects the five paper error types at configured rates."""

    def __init__(
        self,
        profile: ErrorProfile,
        numeric_attributes: list[str] | None = None,
        dependencies: list[FunctionalDependency] | None = None,
        seed: RngLike = 0,
        systematic_share: float = 0.5,
    ) -> None:
        self.profile = profile
        self.numeric_attributes = list(numeric_attributes or [])
        self.dependencies = list(dependencies or [])
        self._rng = as_generator(seed)
        # Real-world typo/pattern errors are often *systematic*: the
        # same upstream source misspells the same value everywhere, so
        # errors repeat instead of being unique.  With this probability
        # a corruption of a previously-corrupted value is reused,
        # defeating pure frequency-threshold detectors the way real
        # benchmark errors do.
        self.systematic_share = systematic_share
        self._systematic: dict[tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    def inject(self, clean: Table) -> InjectionResult:
        """Return a dirty copy of ``clean`` plus ground truth."""
        dirty = clean.copy()
        injected: dict[tuple[int, str], ErrorType] = {}
        # Rule violations first: they depend on clean FD groupings.
        self._inject_rule(dirty, clean, injected)
        self._inject_outliers(dirty, clean, injected)
        self._inject_pattern(dirty, clean, injected)
        self._inject_typos(dirty, clean, injected)
        self._inject_missing(dirty, clean, injected)
        mask = ErrorMask.from_tables(dirty, clean)
        # A corruption may coincidentally reproduce the clean value
        # (e.g. a case flip on an all-digit string); drop those records.
        injected = {
            cell: t for cell, t in injected.items() if mask.get(cell[0], cell[1])
        }
        return InjectionResult(dirty=dirty, clean=clean, mask=mask, injected=injected)

    # ------------------------------------------------------------------
    # Per-type injection passes
    # ------------------------------------------------------------------
    def _pick_cells(
        self,
        table: Table,
        attrs: list[str],
        rate: float,
        taken: dict[tuple[int, str], ErrorType],
    ) -> list[tuple[int, str]]:
        """Sample ``rate * total_cells`` cells among ``attrs``."""
        if rate <= 0.0 or not attrs:
            return []
        total_cells = table.n_rows * table.n_attributes
        target = int(round(rate * total_cells))
        if target == 0:
            return []
        candidates = [
            (i, a)
            for a in attrs
            for i in range(table.n_rows)
            if self.profile.allow_overlap or (i, a) not in taken
        ]
        if not candidates:
            return []
        target = min(target, len(candidates))
        picked_idx = self._rng.choice(len(candidates), size=target, replace=False)
        return [candidates[int(k)] for k in picked_idx]

    def _inject_missing(
        self,
        dirty: Table,
        clean: Table,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        cells = self._pick_cells(
            dirty, dirty.attributes, self.profile.missing, injected
        )
        placeholders = [p for p in MISSING_PLACEHOLDERS]
        for i, attr in cells:
            if not clean.cell(i, attr):
                continue  # already missing in the clean table
            value = placeholders[int(self._rng.integers(len(placeholders)))]
            dirty.set_cell(i, attr, value)
            injected[(i, attr)] = ErrorType.MISSING

    def _inject_typos(
        self,
        dirty: Table,
        clean: Table,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        attrs = [a for a in dirty.attributes if a not in self.numeric_attributes]
        cells = self._pick_cells(dirty, attrs, self.profile.typo, injected)
        for i, attr in cells:
            original = dirty.cell(i, attr)
            if len(original) < 2:
                continue
            corrupted = self._systematic_or(
                attr, original, self._make_typo
            )
            if corrupted != original:
                dirty.set_cell(i, attr, corrupted)
                injected[(i, attr)] = ErrorType.TYPO

    def _systematic_or(self, attr: str, value: str, corrupt) -> str:
        """Reuse a prior corruption of this value, or make a fresh one."""
        key = (attr, value)
        cached = self._systematic.get(key)
        if cached is not None and self._rng.random() < self.systematic_share:
            return cached
        corrupted = corrupt(value)
        self._systematic.setdefault(key, corrupted)
        return corrupted

    def _make_typo(self, value: str) -> str:
        """Apply 1–2 random character edits."""
        n_edits = 1 + int(self._rng.integers(2))
        out = value
        for _ in range(n_edits):
            if len(out) < 2:
                break
            op = int(self._rng.integers(4))
            pos = int(self._rng.integers(len(out)))
            if op == 0 and pos + 1 < len(out):  # swap adjacent
                chars = list(out)
                chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
                out = "".join(chars)
            elif op == 1 and len(out) > 2:  # delete
                out = out[:pos] + out[pos + 1 :]
            elif op == 2:  # insert
                ch = self._random_letter_like(out[pos])
                out = out[:pos] + ch + out[pos:]
            else:  # substitute
                ch = self._random_letter_like(out[pos])
                if ch == out[pos]:
                    ch = "x" if out[pos] != "x" else "y"
                out = out[:pos] + ch + out[pos + 1 :]
        return out

    def _random_letter_like(self, reference: str) -> str:
        if reference.isdigit():
            pool = string.digits
        elif reference.isupper():
            pool = string.ascii_uppercase
        else:
            pool = string.ascii_lowercase
        return pool[int(self._rng.integers(len(pool)))]

    def _inject_pattern(
        self,
        dirty: Table,
        clean: Table,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        cells = self._pick_cells(
            dirty, dirty.attributes, self.profile.pattern, injected
        )
        clean_patterns = {
            attr: {generalize(v, 3) for v in clean.column_view(attr)}
            for attr in dirty.attributes
        }
        for i, attr in cells:
            original = dirty.cell(i, attr)
            if not original:
                continue
            corrupted = self._systematic_or(
                attr,
                original,
                lambda v: self._break_pattern(v, clean_patterns[attr]),
            )
            if corrupted != original:
                dirty.set_cell(i, attr, corrupted)
                injected[(i, attr)] = ErrorType.PATTERN

    def _break_pattern(self, value: str, known: set[str]) -> str:
        """Rewrite the value's format so its L3 pattern is unseen."""
        rewrites = (
            lambda v: v.upper(),
            lambda v: v.lower(),
            lambda v: v.replace(" ", ""),
            lambda v: v.replace("-", "/") if "-" in v else v + "--",
            lambda v: f"0{v}" if v and v[0].isdigit() else f"{v}_",
            lambda v: v.replace(":", ".") if ":" in v else f"#{v}",
        )
        order = self._rng.permutation(len(rewrites))
        for k in order:
            candidate = rewrites[int(k)](value)
            if candidate != value and generalize(candidate, 3) not in known:
                return candidate
        # Fall back to an aggressive rewrite even if the pattern collides.
        return f"@{value}@"

    def _inject_outliers(
        self,
        dirty: Table,
        clean: Table,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        rate = self.profile.outlier
        if rate <= 0.0:
            return
        numeric = [a for a in self.numeric_attributes if a in dirty.attributes]
        attrs = numeric or dirty.attributes
        cells = self._pick_cells(dirty, attrs, rate, injected)
        for i, attr in cells:
            original = dirty.cell(i, attr)
            if not original:
                continue
            corrupted = self._make_outlier(original, attr in numeric)
            if corrupted != original:
                dirty.set_cell(i, attr, corrupted)
                injected[(i, attr)] = ErrorType.OUTLIER

    def _make_outlier(self, value: str, numeric: bool) -> str:
        if numeric:
            try:
                number = float(value)
            except ValueError:
                numeric = False
            else:
                factor = float(self._rng.choice([0.001, 0.01, 100.0, 1000.0]))
                shifted = number * factor
                if value.lstrip("-").isdigit():
                    return str(int(shifted))
                return f"{shifted:.2f}"
        if not numeric:
            junk = ["zzz", "###", "!!", "outlier", "99999999"]
            return junk[int(self._rng.integers(len(junk)))]
        return value

    def _inject_rule(
        self,
        dirty: Table,
        clean: Table,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        rate = self.profile.rule
        if rate <= 0.0 or not self.dependencies:
            return
        per_dep_rate = rate / len(self.dependencies)
        for dep in self.dependencies:
            if dep.rhs not in dirty.attributes or dep.lhs not in dirty.attributes:
                continue
            self._violate_dependency(dirty, clean, dep, per_dep_rate, injected)

    def _violate_dependency(
        self,
        dirty: Table,
        clean: Table,
        dep: FunctionalDependency,
        rate: float,
        injected: dict[tuple[int, str], ErrorType],
    ) -> None:
        # Swap in an rhs value that belongs to a different lhs group so
        # the cell looks plausible in isolation but violates the FD.
        rhs_by_lhs: dict[str, Counter] = {}
        for i in range(clean.n_rows):
            lhs_val = clean.cell(i, dep.lhs)
            rhs_by_lhs.setdefault(lhs_val, Counter())[clean.cell(i, dep.rhs)] += 1
        all_rhs = sorted({v for c in rhs_by_lhs.values() for v in c})
        if len(all_rhs) < 2:
            return
        total_cells = dirty.n_rows * dirty.n_attributes
        target = int(round(rate * total_cells))
        if target == 0:
            return
        rows = [
            i
            for i in range(dirty.n_rows)
            if self.profile.allow_overlap or (i, dep.rhs) not in injected
        ]
        if not rows:
            return
        target = min(target, len(rows))
        picked = self._rng.choice(len(rows), size=target, replace=False)
        for k in picked:
            i = rows[int(k)]
            lhs_val = clean.cell(i, dep.lhs)
            current = clean.cell(i, dep.rhs)
            alternatives = [v for v in all_rhs if v != current]
            if not alternatives:
                continue
            new_val = alternatives[int(self._rng.integers(len(alternatives)))]
            dirty.set_cell(i, dep.rhs, new_val)
            injected[(i, dep.rhs)] = ErrorType.RULE


# ----------------------------------------------------------------------
# Post-hoc type classification (paper's Table II footnote)
# ----------------------------------------------------------------------
def classify_error_types(
    dirty: Table,
    clean: Table,
    mask: ErrorMask,
    dependencies: list[FunctionalDependency] | None = None,
    outlier_freq_threshold: float = 0.01,
) -> dict[tuple[int, str], ErrorType]:
    """Classify each erroneous cell using the paper's rules.

    The paper's per-type rules overlap (their Table II percentages sum
    past the overall error rate), so an exclusive label needs a
    priority.  Ours orders the most specific evidence first: missing
    placeholders → rule violations (FD rhs whose value is another valid
    value of the column) → numeric outliers (magnitude shifts would
    otherwise satisfy the edit-distance typo rule) → typos (edit
    distance ≤ 3 to clean) → pattern violations (L3 format unseen in
    clean data) → rare-value outliers → fallback MIXED.
    """
    deps = dependencies or []
    clean_patterns = {
        attr: {generalize(v, 3) for v in clean.column_view(attr)}
        for attr in dirty.attributes
    }
    clean_values = {
        attr: set(clean.column_view(attr)) for attr in dirty.attributes
    }
    col_counts = {
        attr: Counter(dirty.column_view(attr)) for attr in dirty.attributes
    }
    rhs_attrs = {d.rhs for d in deps}
    out: dict[tuple[int, str], ErrorType] = {}
    for i, attr in mask.error_cells():
        value = dirty.cell(i, attr)
        clean_value = clean.cell(i, attr)
        if is_missing_placeholder(value):
            out[(i, attr)] = ErrorType.MISSING
        elif attr in rhs_attrs and value in clean_values[attr]:
            # A *valid* value of the column in the wrong row: the rule
            # violation signature (wrong state for the city).
            out[(i, attr)] = ErrorType.RULE
        elif _is_magnitude_shift(value, clean_value):
            out[(i, attr)] = ErrorType.OUTLIER
        elif within_edit_distance(value, clean_value, 3):
            out[(i, attr)] = ErrorType.TYPO
        elif generalize(value, 3) not in clean_patterns[attr]:
            out[(i, attr)] = ErrorType.PATTERN
        elif col_counts[attr][value] / dirty.n_rows < outlier_freq_threshold:
            out[(i, attr)] = ErrorType.OUTLIER
        else:
            out[(i, attr)] = ErrorType.MIXED
    return out


def _is_magnitude_shift(value: str, clean_value: str) -> bool:
    """Both numeric, and the dirty value is a large rescale of clean."""
    try:
        dirty_num = float(value)
        clean_num = float(clean_value)
    except (TypeError, ValueError):
        return False
    if clean_num == 0 or dirty_num == 0:
        return dirty_num != clean_num
    ratio = abs(dirty_num / clean_num)
    return ratio >= 10 or ratio <= 0.1
