"""Column and attribute-pair statistics over a table.

These are the raw distribution facts that the paper's generated
"distribution analysis functions" extract (value frequencies, dominant
patterns, numeric summaries, missing counts) and that both the feature
blocks and the simulated LLM's reasoning consume.  Computing them once
per attribute keeps the pipeline fast on the 200k-row Tax workload.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.encoding import joint_counts
from repro.data.errortypes import is_missing_placeholder
from repro.data.table import Table
from repro.text.distance import within_edit_distance
from repro.text.patterns import generalize


@dataclass
class NumericSummary:
    """Summary of the numeric portion of a column."""

    fraction: float
    median: float = 0.0
    mad: float = 0.0
    q01: float = 0.0
    q99: float = 0.0

    def is_outlier(self, value: str, z: float = 4.0) -> bool:
        """Robust outlier test against the column's numerics.

        Combines a MAD z-score with a quantile-span bound: the span
        bound catches small-magnitude outliers (a salary scaled ×0.001)
        that a wide MAD on uniform-ish columns would miss.
        """
        try:
            num = float(value)
        except (TypeError, ValueError):
            return False
        span = self.q99 - self.q01
        if span > 0 and not (
            self.q01 - 0.5 * span <= num <= self.q99 + 0.5 * span
        ):
            return True
        if self.mad <= 0:
            return not (self.q01 <= num <= self.q99)
        return abs(num - self.median) / (1.4826 * self.mad) > z


@dataclass
class AttributeStats:
    """Distribution facts for one attribute of a table."""

    attr: str
    n_rows: int
    value_counts: Counter = field(default_factory=Counter)
    pattern_counts: Counter = field(default_factory=Counter)   # L3
    pattern2_counts: Counter = field(default_factory=Counter)  # L2
    missing_count: int = 0
    numeric: NumericSummary = field(
        default_factory=lambda: NumericSummary(fraction=0.0)
    )
    mean_length: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, table: Table, attr: str) -> "AttributeStats":
        # All facts below are functions of the distinct values and
        # their multiplicities, so they are derived from the table's
        # interned column codes instead of re-scanning the row strings.
        enc = table.encoding(attr)
        stats = cls(attr=attr, n_rows=enc.n_rows)
        stats.value_counts = Counter(
            dict(zip(enc.uniques, enc.counts.tolist()))
        )
        lengths = []
        numeric_values: list[float] = []
        numeric_counts: list[int] = []
        for value, count in zip(enc.uniques, enc.counts.tolist()):
            p3, p2 = generalize(value, 3), generalize(value, 2)
            stats.pattern_counts[p3] += count
            stats.pattern2_counts[p2] += count
            if is_missing_placeholder(value):
                stats.missing_count += count
            lengths.append(len(value))
            try:
                numeric_values.append(float(value))
                numeric_counts.append(count)
            except ValueError:
                pass
        stats.mean_length = float(np.mean(lengths)) if lengths else 0.0
        if numeric_values:
            arr = np.repeat(
                np.array(numeric_values, dtype=float), numeric_counts
            )
            stats.numeric = NumericSummary(
                fraction=len(arr) / max(stats.n_rows, 1),
                median=float(np.median(arr)),
                mad=float(np.median(np.abs(arr - np.median(arr)))),
                q01=float(np.quantile(arr, 0.01)),
                q99=float(np.quantile(arr, 0.99)),
            )
        return stats

    # ------------------------------------------------------------------
    def value_frequency(self, value: str) -> float:
        """Relative frequency of ``value`` in the column."""
        if self.n_rows == 0:
            return 0.0
        return self.value_counts.get(value, 0) / self.n_rows

    def pattern_frequency(self, value: str, level: int = 3) -> float:
        if self.n_rows == 0:
            return 0.0
        counts = self.pattern_counts if level == 3 else self.pattern2_counts
        return counts.get(generalize(value, level), 0) / self.n_rows

    def n_distinct(self) -> int:
        return len(self.value_counts)

    def is_categorical(self, max_distinct: int = 30) -> bool:
        """Low-cardinality non-numeric columns behave like enums."""
        return (
            self.n_distinct() <= max_distinct
            and self.numeric.fraction < 0.5
        )

    def top_values(self, k: int = 10) -> list[str]:
        return [v for v, _ in self.value_counts.most_common(k) if v]

    def dominant_patterns(self, coverage: float = 0.95) -> list[str]:
        """Smallest set of L3 patterns covering ``coverage`` of rows."""
        covered = 0
        out = []
        for pattern, count in self.pattern_counts.most_common():
            out.append(pattern)
            covered += count
            if covered >= coverage * self.n_rows:
                break
        return out

    def missing_share(self) -> float:
        """Fraction of cells that are missing placeholders."""
        return self.missing_count / self.n_rows if self.n_rows else 0.0

    def pattern_count(self, value: str, level: int = 3) -> int:
        counts = self.pattern_counts if level == 3 else self.pattern2_counts
        return counts.get(generalize(value, level), 0)

    def pattern_diversity(self) -> float:
        """Distinct patterns per distinct value — high for free text.

        Enum/code columns share a handful of formats (ratio near 0);
        free-text columns have a fresh format per value (ratio near 1),
        where format rarity is meaningless as an error signal.
        """
        n_values = self.n_distinct()
        if n_values == 0:
            return 0.0
        return len(self.pattern_counts) / n_values

    def nearest_frequent_value(
        self,
        value: str,
        max_distance: int = 2,
        min_frequency: int = 3,
        max_candidates: int = 200,
        ignore_digit_variants: bool = True,
    ) -> str | None:
        """A frequent column value within edit distance of ``value``.

        A rare value sitting a couple of edits from a frequent one is
        the classic typo signature.  Only values of comparable length
        among the most common ``max_candidates`` are compared, keeping
        the check cheap on wide columns.

        ``ignore_digit_variants`` skips candidates that differ from
        ``value`` only in digit characters ('85%' vs '86%', 'AMI-2' vs
        'AMI-3'): numbers legitimately differ and are not typos.
        """
        if not value:
            return None
        own_count = self.value_counts.get(value, 0)
        value_no_digits = _strip_digits(value) if ignore_digit_variants else ""
        for candidate, count in self.value_counts.most_common(max_candidates):
            if candidate == value:
                continue
            if count < max(min_frequency, 2 * own_count):
                continue
            if abs(len(candidate) - len(value)) > max_distance:
                continue
            if (
                ignore_digit_variants
                and _strip_digits(candidate) == value_no_digits
            ):
                continue
            if within_edit_distance(value, candidate, max_distance):
                return candidate
        return None


@dataclass
class PairStats:
    """Dependency statistics between two attributes (lhs -> rhs)."""

    lhs: str
    rhs: str
    #: lhs value -> (majority rhs value, group size, majority share)
    majority: dict[str, tuple[str, int, float]] = field(default_factory=dict)
    #: Mean majority share across groups with > 1 member: how FD-like
    #: the pair is (1.0 = a perfect functional dependency).
    fd_strength: float = 0.0

    @classmethod
    def compute(cls, table: Table, lhs: str, rhs: str) -> "PairStats":
        # Group sizes and per-(lhs, rhs) multiplicities come from the
        # interned codes; only the distinct pairs are visited in Python.
        enc_l = table.encoding(lhs)
        enc_r = table.encoding(rhs)
        l_codes, r_codes, pair_counts, _, first_rows = joint_counts(
            enc_l, enc_r, return_index=True
        )
        group_sizes = np.bincount(enc_l.codes, minlength=enc_l.n_unique)
        # Majority = highest count, ties broken by first appearance of
        # the (lhs, rhs) pair in the column (Counter.most_common order).
        best: dict[int, tuple[int, str]] = {}
        order = np.argsort(first_rows, kind="stable")
        for k in order.tolist():
            count = int(pair_counts[k])
            held = best.get(int(l_codes[k]))
            if held is None or count > held[0]:
                best[int(l_codes[k])] = (count, enc_r.uniques[int(r_codes[k])])
        majority: dict[str, tuple[str, int, float]] = {}
        shares = []
        # lhs codes follow first-appearance order, matching the
        # row-scan grouping the reference implementation produced.
        for lc in range(enc_l.n_unique):
            top, value = best[lc]
            size = int(group_sizes[lc])
            share = top / size
            majority[enc_l.uniques[lc]] = (value, size, share)
            if size > 1:
                shares.append(share)
        return cls(
            lhs=lhs,
            rhs=rhs,
            majority=majority,
            fd_strength=float(np.mean(shares)) if shares else 0.0,
        )

    def violates(
        self, lhs_value: str, rhs_value: str,
        min_group: int = 3, min_share: float = 0.6,
    ) -> bool:
        """True if ``rhs_value`` contradicts a confident majority."""
        entry = self.majority.get(lhs_value)
        if entry is None:
            return False
        expected, size, share = entry
        return size >= min_group and share >= min_share and rhs_value != expected


def _strip_digits(value: str) -> str:
    return "".join(ch for ch in value if not ch.isdigit())


def compute_all_stats(table: Table) -> dict[str, AttributeStats]:
    """AttributeStats for every attribute of ``table``."""
    return {a: AttributeStats.compute(table, a) for a in table.attributes}
