"""CSV reading and writing for :class:`~repro.data.table.Table`.

Thin wrappers around :mod:`csv` that keep every cell a string and treat
the first row as the header, matching how the cleaning benchmarks
(Hospital, Flights, ...) are distributed.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.table import Table
from repro.errors import DataError


def read_csv(path: str | Path, name: str | None = None) -> Table:
    """Load a CSV file into a :class:`Table`.

    The first row is the header.  Rows shorter than the header are padded
    with empty strings; longer rows raise :class:`DataError`.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if len(row) > len(header):
                raise DataError(
                    f"{path}:{lineno} has {len(row)} cells, header has "
                    f"{len(header)}"
                )
            if len(row) < len(header):
                row = row + [""] * (len(header) - len(row))
            rows.append(row)
    return Table.from_rows(header, rows, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a :class:`Table` to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.attributes)
        for i in range(table.n_rows):
            writer.writerow(table.row_tuple(i))
