"""CSV reading and writing for :class:`~repro.data.table.Table`.

Thin wrappers around :mod:`csv` that keep every cell a string and treat
the first row as the header, matching how the cleaning benchmarks
(Hospital, Flights, ...) are distributed.

Two readers share one row-validation pass:

* :func:`read_csv` materializes the whole file as a single table;
* :func:`iter_csv_chunks` streams the same file as a sequence of
  bounded-size tables — at no point does more than one chunk of rows
  live in memory, which is what the out-of-core scoring path
  (:mod:`repro.serving.streaming`) builds on.  Concatenating the
  chunks reproduces :func:`read_csv` exactly, including the
  short-row padding and long-row rejection rules.

Malformed rows (more cells than the header) default to the historical
fail-fast :class:`DataError`; the streaming reader alternatively
**quarantines** them (``bad_rows="quarantine"``): each offender lands
in a :class:`QuarantineWriter` sidecar (JSONL: original line number +
raw cells) and is dropped from the stream, so one corrupt row 4 GB
into a file surfaces as a journal entry instead of killing the whole
scoring job.  The sidecar is idempotent across resumes — a line number
already recorded is never written twice.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterator
from pathlib import Path

from repro.data.table import Table
from repro.errors import DataError

#: Accepted malformed-row policies for the streaming reader.
BAD_ROW_POLICIES = ("fail", "quarantine")


def _open_rows(path: Path):
    """Open ``path`` and return ``(file_handle, reader, header)``."""
    fh = path.open(newline="", encoding="utf-8")
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        fh.close()
        raise DataError(f"{path} is empty") from None
    except Exception:
        fh.close()
        raise
    return fh, reader, header


def _validate_row(
    path: Path, lineno: int, row: list[str], header: list[str]
) -> list[str]:
    """The one row rule: pad short rows, reject long ones."""
    if len(row) > len(header):
        raise DataError(
            f"{path}:{lineno} has {len(row)} cells, header has "
            f"{len(header)}"
        )
    if len(row) < len(header):
        row = row + [""] * (len(header) - len(row))
    return row


def read_csv(path: str | Path, name: str | None = None) -> Table:
    """Load a CSV file into a :class:`Table`.

    The first row is the header.  Rows shorter than the header are padded
    with empty strings; longer rows raise :class:`DataError`.
    """
    path = Path(path)
    fh, reader, header = _open_rows(path)
    with fh:
        rows = [
            _validate_row(path, lineno, row, header)
            for lineno, row in enumerate(reader, start=2)
        ]
    return Table.from_rows(header, rows, name=name or path.stem)


class QuarantineWriter:
    """Idempotent JSONL sidecar for rows a streaming job rejected.

    Each quarantined row is one line ``{"lineno": N, "cells": [...]}``
    — the original 1-based file line and the raw parsed cells, enough
    to repair and re-submit the row later.  Opening an existing sidecar
    loads its recorded line numbers, so a resumed job re-encountering
    the same bad rows never duplicates entries (the journal replays the
    stream from row 0; the sidecar must not grow on replay).
    """

    def __init__(self, path: str | Path, *, opener=None) -> None:
        self.path = Path(path)
        self._opener = opener or open
        self._seen: set[int] = set()
        if self.path.is_file():
            with self._opener(self.path, "r", encoding="utf-8") as fh:
                for line in fh.read().splitlines():
                    try:
                        record = json.loads(line)
                        self._seen.add(int(record["lineno"]))
                    except (ValueError, KeyError, TypeError):
                        continue  # torn tail from a killed run
        self._fh = self._opener(self.path, "a", encoding="utf-8")

    @property
    def total(self) -> int:
        """Distinct quarantined rows (including prior runs')."""
        return len(self._seen)

    def write(self, lineno: int, cells: list[str]) -> None:
        if lineno in self._seen:
            return
        self._seen.add(lineno)
        self._fh.write(
            json.dumps({"lineno": lineno, "cells": cells}) + "\n"
        )
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def iter_csv_chunks(
    path: str | Path,
    chunk_rows: int,
    name: str | None = None,
    *,
    bad_rows: str = "fail",
    quarantine: QuarantineWriter | None = None,
) -> Iterator[Table]:
    """Stream a CSV file as :class:`Table` chunks of ``chunk_rows`` rows.

    A generator over the same file :func:`read_csv` would load, with
    identical validation (header from the first row, short rows padded,
    long rows rejected with :class:`DataError`) — but holding at most
    one chunk of rows at a time.  Every chunk carries the full header
    and the same ``name`` (default: the file stem), so each is
    independently scoreable; concatenating all chunks in order yields
    exactly ``read_csv(path)``.  The final chunk may be shorter; a
    header-only file yields no chunks at all.

    ``bad_rows`` picks the malformed-row policy: ``"fail"`` (default)
    keeps the historical fail-fast :class:`DataError` on a row longer
    than the header; ``"quarantine"`` records the offender in the
    ``quarantine`` sidecar and drops it from the stream, so the chunk
    row offsets count *kept* rows only.
    """
    if chunk_rows < 1:
        raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if bad_rows not in BAD_ROW_POLICIES:
        raise DataError(
            f"bad_rows must be one of {BAD_ROW_POLICIES}, got {bad_rows!r}"
        )
    path = Path(path)
    name = name or path.stem
    fh, reader, header = _open_rows(path)
    with fh:
        rows: list[list[str]] = []
        for lineno, row in enumerate(reader, start=2):
            if len(row) > len(header) and bad_rows == "quarantine":
                if quarantine is not None:
                    quarantine.write(lineno, row)
                continue
            rows.append(_validate_row(path, lineno, row, header))
            if len(rows) == chunk_rows:
                yield Table.from_rows(header, rows, name=name)
                rows = []
        if rows:
            yield Table.from_rows(header, rows, name=name)


def count_csv_rows(path: str | Path) -> int:
    """Number of data rows in a CSV (header excluded), streamed.

    Uses the csv parser (not line counting), so quoted embedded
    newlines count as one row — the same row count the readers above
    produce.
    """
    path = Path(path)
    fh, reader, _header = _open_rows(path)
    with fh:
        return sum(1 for _ in reader)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a :class:`Table` to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.attributes)
        for i in range(table.n_rows):
            writer.writerow(table.row_tuple(i))


def append_csv_rows(table: Table, path: str | Path) -> None:
    """Append a :class:`Table`'s rows (no header) to an existing CSV.

    The chunked *writer* counterpart of :func:`iter_csv_chunks`: large
    synthetic datasets are produced shard-by-shard without ever holding
    the full table (see ``benchmarks/bench_streaming.py``).  The
    table's schema must match the file's header.
    """
    path = Path(path)
    header = None
    with path.open(newline="", encoding="utf-8") as fh:
        try:
            header = next(csv.reader(fh))
        except StopIteration:
            raise DataError(f"{path} is empty; write a header first") from None
    if header != table.attributes:
        raise DataError(
            f"{path} header {header!r} does not match table schema "
            f"{table.attributes!r}"
        )
    with path.open("a", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        for i in range(table.n_rows):
            writer.writerow(table.row_tuple(i))
