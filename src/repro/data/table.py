"""A minimal typed column-store for tabular string data.

The paper treats every cell as a string drawn from a dirty relational
table ``D`` with schema ``Attrs``; error detection is a binary decision
per cell.  :class:`Table` stores cells as Python strings column-wise,
which is what every downstream step (featurisation, serialization,
injection) consumes.  Missing values are represented by the empty
string, matching the paper's serialization rule ("in cases where an
attribute value is NULL, it is represented as an empty string").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.data.encoding import ColumnEncoding
from repro.errors import DataError, SchemaError


class Table:
    """An immutable-shape, mutable-content table of string cells.

    Parameters
    ----------
    attributes:
        Ordered attribute (column) names.  Must be unique and non-empty.
    columns:
        Mapping from attribute name to a list of string cell values.  All
        columns must have equal length.
    name:
        Optional dataset name used in prompts and reports.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        columns: Mapping[str, Sequence[str]],
        name: str = "table",
    ) -> None:
        attrs = list(attributes)
        if not attrs:
            raise SchemaError("a table needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in {attrs!r}")
        missing = [a for a in attrs if a not in columns]
        if missing:
            raise SchemaError(f"columns missing for attributes {missing!r}")
        data: dict[str, list[str]] = {}
        n_rows: int | None = None
        for attr in attrs:
            col = [_coerce_cell(v) for v in columns[attr]]
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise DataError(
                    f"column {attr!r} has {len(col)} rows, expected {n_rows}"
                )
            data[attr] = col
        self._attrs = attrs
        self._attr_index = {a: i for i, a in enumerate(attrs)}
        self._data = data
        self._n_rows = n_rows or 0
        self._encodings: dict[str, ColumnEncoding] = {}
        self._pair_stats: dict[tuple[str, str], object] = {}
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Iterable[Sequence[str]],
        name: str = "table",
    ) -> "Table":
        """Build a table from an iterable of row tuples."""
        attrs = list(attributes)
        cols: dict[str, list[str]] = {a: [] for a in attrs}
        for i, row in enumerate(rows):
            if len(row) != len(attrs):
                raise DataError(
                    f"row {i} has {len(row)} cells, expected {len(attrs)}"
                )
            for a, v in zip(attrs, row):
                cols[a].append(_coerce_cell(v))
        return cls(attrs, cols, name=name)

    def copy(self) -> "Table":
        """Return a deep copy (cell lists are copied)."""
        return Table(
            self._attrs,
            {a: list(self._data[a]) for a in self._attrs},
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> list[str]:
        """Ordered attribute names (a copy; mutation-safe)."""
        return list(self._attrs)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_attributes(self) -> int:
        return len(self._attrs)

    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_attributes)."""
        return (self._n_rows, len(self._attrs))

    def column(self, attr: str) -> list[str]:
        """Return the cells of ``attr`` (a copy)."""
        self._check_attr(attr)
        return list(self._data[attr])

    def column_view(self, attr: str) -> Sequence[str]:
        """Return the live cell list of ``attr`` without copying.

        Callers must not mutate the returned list; use :meth:`set_cell`.
        """
        self._check_attr(attr)
        return self._data[attr]

    def row(self, i: int) -> dict[str, str]:
        """Return row ``i`` as an attribute→value dict."""
        self._check_row(i)
        return {a: self._data[a][i] for a in self._attrs}

    def row_tuple(self, i: int) -> tuple[str, ...]:
        self._check_row(i)
        return tuple(self._data[a][i] for a in self._attrs)

    def cell(self, i: int, attr: str) -> str:
        self._check_row(i)
        self._check_attr(attr)
        return self._data[attr][i]

    def set_cell(self, i: int, attr: str, value: str) -> None:
        self._check_row(i)
        self._check_attr(attr)
        self._data[attr][i] = _coerce_cell(value)
        self._encodings.pop(attr, None)
        if self._pair_stats:
            self._pair_stats = {
                key: ps for key, ps in self._pair_stats.items()
                if attr not in key
            }

    def attr_index(self, attr: str) -> int:
        self._check_attr(attr)
        return self._attr_index[attr]

    def encoding(self, attr: str) -> ColumnEncoding:
        """Cached integer factorization of ``attr``'s column.

        Computed lazily on first use and invalidated by
        :meth:`set_cell` (the only content mutator), so repeated
        consumers — stats, features, criteria, sampling — share one
        factorization pass per column.
        """
        self._check_attr(attr)
        enc = self._encodings.get(attr)
        if enc is None:
            enc = ColumnEncoding.from_values(self._data[attr])
            self._encodings[attr] = enc
        return enc

    def pair_stats(self, lhs: str, rhs: str):
        """Cached dependency statistics for the ``(lhs, rhs)`` pair.

        Memoizes :meth:`repro.data.stats.PairStats.compute` per ordered
        pair, invalidated by :meth:`set_cell` for entries touching the
        mutated attribute — the same lifecycle as :meth:`encoding`.
        The labeling, repair and profiling stages all consult the same
        correlated pairs, so one computation pass serves them all.
        (Imported lazily: ``stats`` builds on this module.)
        """
        self._check_attr(lhs)
        self._check_attr(rhs)
        key = (lhs, rhs)
        ps = self._pair_stats.get(key)
        if ps is None:
            from repro.data.stats import PairStats

            ps = PairStats.compute(self, lhs, rhs)
            self._pair_stats[key] = ps
        return ps

    def iter_rows(self) -> Iterator[dict[str, str]]:
        for i in range(self._n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def head(self, n: int) -> "Table":
        """Return a new table with the first ``n`` rows."""
        return self.select_rows(range(min(n, self._n_rows)))

    def select_rows(self, indices: Iterable[int]) -> "Table":
        """Return a new table containing the given rows, in order."""
        idx = list(indices)
        for i in idx:
            self._check_row(i)
        cols = {a: [self._data[a][i] for i in idx] for a in self._attrs}
        return Table(self._attrs, cols, name=self.name)

    def select_attributes(self, attrs: Sequence[str]) -> "Table":
        """Return a new table with only the given attributes."""
        for a in attrs:
            self._check_attr(a)
        return Table(
            list(attrs), {a: list(self._data[a]) for a in attrs}, name=self.name
        )

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def diff_mask(self, other: "Table") -> list[list[bool]]:
        """Cell-wise inequality against ``other`` (row-major nested lists).

        Used to derive ground-truth error masks: the paper defines a cell
        as erroneous iff it differs from the clean table's cell.
        """
        if other.attributes != self._attrs or other.n_rows != self._n_rows:
            raise SchemaError("tables must share schema and row count to diff")
        per_attr = [
            [mine != theirs
             for mine, theirs in zip(self._data[a], other._data[a])]
            for a in self._attrs
        ]
        return [list(row) for row in zip(*per_attr)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self._attrs == other._attrs
            and all(self._data[a] == other._data[a] for a in self._attrs)
        )

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self._n_rows}, "
            f"attrs={len(self._attrs)})"
        )

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_attr(self, attr: str) -> None:
        if attr not in self._data:
            raise SchemaError(f"unknown attribute {attr!r}")

    def _check_row(self, i: int) -> None:
        if not 0 <= i < self._n_rows:
            raise SchemaError(f"row index {i} out of range [0, {self._n_rows})")


def _coerce_cell(value: object) -> str:
    """Normalise a raw cell to the library's string representation."""
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return str(value)
