"""Cell-level error masks and detection results.

An :class:`ErrorMask` is the ground-truth (or predicted) boolean matrix
aligned with a :class:`~repro.data.table.Table`: ``mask[i][j]`` is True
iff cell ``(i, attrs[j])`` is erroneous.  Both ground truth derivation
(``dirty != clean``) and every detector's output use this type, so
metric computation is uniform across methods.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.data.table import Table
from repro.errors import SchemaError


class ErrorMask:
    """Boolean per-cell matrix aligned to a table schema."""

    def __init__(self, attributes: Sequence[str], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise SchemaError("mask matrix must be 2-D")
        if matrix.shape[1] != len(attributes):
            raise SchemaError(
                f"mask has {matrix.shape[1]} columns, schema has "
                f"{len(attributes)} attributes"
            )
        self.attributes = list(attributes)
        self.matrix = matrix

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, attributes: Sequence[str], n_rows: int) -> "ErrorMask":
        return cls(attributes, np.zeros((n_rows, len(attributes)), dtype=bool))

    @classmethod
    def from_tables(cls, dirty: Table, clean: Table) -> "ErrorMask":
        """Ground truth: a cell is an error iff dirty differs from clean."""
        return cls(dirty.attributes, np.array(dirty.diff_mask(clean)))

    @classmethod
    def from_cells(
        cls,
        attributes: Sequence[str],
        n_rows: int,
        cells: Iterable[tuple[int, str]],
    ) -> "ErrorMask":
        """Build from an iterable of ``(row_index, attribute)`` pairs."""
        mask = cls.zeros(attributes, n_rows)
        for i, attr in cells:
            mask.set(i, attr, True)
        return mask

    @classmethod
    def vstack(cls, masks: Sequence["ErrorMask"]) -> "ErrorMask":
        """Concatenate shard masks row-wise into one global mask.

        The assembly step of chunked scoring: shard ``k``'s local row
        ``i`` lands at global row ``offset_k + i``, where ``offset_k``
        is the total row count of the preceding shards.  All masks must
        share one attribute schema.
        """
        if not masks:
            raise SchemaError("vstack needs at least one mask")
        attributes = masks[0].attributes
        for m in masks[1:]:
            if m.attributes != attributes:
                raise SchemaError("masks must share schema to vstack")
        return cls(attributes, np.vstack([m.matrix for m in masks]))

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self.matrix.shape[0])

    def get(self, i: int, attr: str) -> bool:
        return bool(self.matrix[i, self._col(attr)])

    def set(self, i: int, attr: str, value: bool) -> None:
        self.matrix[i, self._col(attr)] = value

    def column(self, attr: str) -> np.ndarray:
        return self.matrix[:, self._col(attr)]

    def error_cells(self) -> list[tuple[int, str]]:
        """All (row, attribute) pairs flagged as errors, row-major order."""
        out = []
        rows, cols = np.nonzero(self.matrix)
        for i, j in zip(rows.tolist(), cols.tolist()):
            out.append((i, self.attributes[j]))
        return out

    def error_count(self) -> int:
        return int(self.matrix.sum())

    def error_rate(self) -> float:
        return float(self.matrix.mean()) if self.matrix.size else 0.0

    def flat(self) -> np.ndarray:
        """Row-major flattened boolean vector (for metric computation)."""
        return self.matrix.ravel()

    def copy(self) -> "ErrorMask":
        return ErrorMask(self.attributes, self.matrix.copy())

    # ------------------------------------------------------------------
    def union(self, other: "ErrorMask") -> "ErrorMask":
        self._check_aligned(other)
        return ErrorMask(self.attributes, self.matrix | other.matrix)

    def intersection(self, other: "ErrorMask") -> "ErrorMask":
        self._check_aligned(other)
        return ErrorMask(self.attributes, self.matrix & other.matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorMask):
            return NotImplemented
        return (
            self.attributes == other.attributes
            and self.matrix.shape == other.matrix.shape
            and bool((self.matrix == other.matrix).all())
        )

    def __repr__(self) -> str:
        return (
            f"ErrorMask(rows={self.n_rows}, attrs={len(self.attributes)}, "
            f"errors={self.error_count()})"
        )

    # ------------------------------------------------------------------
    def _col(self, attr: str) -> int:
        try:
            return self.attributes.index(attr)
        except ValueError:
            raise SchemaError(f"unknown attribute {attr!r}") from None

    def _check_aligned(self, other: "ErrorMask") -> None:
        if (
            other.attributes != self.attributes
            or other.matrix.shape != self.matrix.shape
        ):
            raise SchemaError("masks must share schema and shape")
