"""Persistence for error masks and full datasets.

Experiment artifacts need to round-trip through disk: a dataset is the
dirty CSV, the clean CSV, and the cell-level mask.  Masks serialise to
a compact JSON of flagged cells (most cells are clean), so artifacts
stay small even for the 200k-row Tax table.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.csvio import read_csv, write_csv
from repro.data.injector import InjectionResult
from repro.data.mask import ErrorMask
from repro.errors import DataError


def write_mask(mask: ErrorMask, path: str | Path) -> None:
    """Serialise a mask to JSON (schema + flagged cells)."""
    path = Path(path)
    payload = {
        "attributes": mask.attributes,
        "n_rows": mask.n_rows,
        "errors": [[i, attr] for i, attr in mask.error_cells()],
    }
    path.write_text(json.dumps(payload))


def read_mask(path: str | Path) -> ErrorMask:
    """Load a mask written by :func:`write_mask`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DataError(f"{path} is not a valid mask file: {exc}") from exc
    for key in ("attributes", "n_rows", "errors"):
        if key not in payload:
            raise DataError(f"{path} is missing the {key!r} field")
    return ErrorMask.from_cells(
        payload["attributes"],
        int(payload["n_rows"]),
        [(int(i), str(attr)) for i, attr in payload["errors"]],
    )


def write_dataset(data: InjectionResult, directory: str | Path) -> Path:
    """Write dirty.csv / clean.csv / mask.json into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(data.dirty, directory / "dirty.csv")
    write_csv(data.clean, directory / "clean.csv")
    write_mask(data.mask, directory / "mask.json")
    return directory


def read_dataset(directory: str | Path) -> InjectionResult:
    """Load a dataset directory written by :func:`write_dataset`."""
    directory = Path(directory)
    dirty = read_csv(directory / "dirty.csv")
    clean = read_csv(directory / "clean.csv")
    mask = read_mask(directory / "mask.json")
    if mask.attributes != dirty.attributes or mask.n_rows != dirty.n_rows:
        raise DataError(f"{directory}: mask does not align with dirty.csv")
    return InjectionResult(dirty=dirty, clean=clean, mask=mask)
