"""Movies dataset generator (7,390 × 17; Table II row 6).

Mirrors the Magellan movies corpus: film metadata with free-text
fields (actors, description snippets), formatted durations and ratings.
The real dataset has no usable functional dependencies (the paper
reports RV = 0 and NADEEF catching only pattern rules here).
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    date_ymd,
    pick,
    pick_weighted,
    scaled_profile,
)
from repro.data.kb import KnowledgeBase
from repro.data.pools import (
    COUNTRIES,
    FIRST_NAMES,
    LANGUAGES,
    LAST_NAMES,
    MOVIE_GENRES,
    MOVIE_NOUNS,
    MOVIE_WORDS,
)
from repro.data.rules import PatternRule, RangeRule
from repro.data.table import Table

ATTRIBUTES = [
    "id", "name", "year", "release_date", "director", "creator", "actors",
    "language", "country", "duration", "rating_value", "rating_count",
    "review_count", "genre", "filming_locations", "description", "url",
]


def _person(rng: np.random.Generator) -> str:
    return f"{pick(rng, FIRST_NAMES)} {pick(rng, LAST_NAMES)}"


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean movie records."""
    rows = []
    for i in range(n_rows):
        year = int(rng.integers(1950, 2016))
        title = f"{pick(rng, MOVIE_WORDS)} {pick(rng, MOVIE_NOUNS)}"
        if rng.random() < 0.2:
            title = f"The {title}"
        genre = pick_weighted(rng, MOVIE_GENRES)
        duration = int(rng.integers(70, 200))
        rating = rng.uniform(3.0, 9.5)
        rating_count = int(rng.integers(50, 800_000))
        slug = title.lower().replace(" ", "_")
        rows.append(
            [
                f"tt{1_000_000 + i}",
                title,
                str(year),
                date_ymd(rng, year, year),
                _person(rng),
                _person(rng),
                ", ".join(_person(rng) for _ in range(3)),
                pick_weighted(rng, LANGUAGES),
                pick_weighted(rng, COUNTRIES),
                f"{duration} min",
                f"{rating:.1f}",
                str(rating_count),
                str(int(rng.integers(1, 900))),
                genre,
                pick(rng, COUNTRIES),
                f"A {genre.lower()} about {pick(rng, MOVIE_NOUNS).lower()} "
                f"and {pick(rng, MOVIE_NOUNS).lower()}.",
                f"http://www.imdb.com/title/{slug}/",
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="movies")


SPEC = DatasetSpec(
    name="movies",
    default_rows=7390,
    generate_clean=generate_clean,
    # Table II: Err 4.97; MV 2.22, PV 2.32, T 0.03, O 2.64, RV 0.
    profile=scaled_profile(
        0.0497, missing=0.0222, pattern=0.0232, typo=0.0003,
        outlier=0.0264, rule=0.0,
    ),
    numeric_attributes=[
        "year", "rating_value", "rating_count", "review_count",
    ],
    dependencies=[],  # the paper reports no rule violations for Movies
    rules=[
        # The "limited but precise" pattern pack that gives NADEEF
        # perfect precision / low recall on Movies in Table III.
        PatternRule("duration", r"\d+ min"),
        PatternRule("release_date", r"\d{4}-\d{2}-\d{2}"),
        PatternRule("id", r"tt\d+"),
        RangeRule("rating_value", 0.0, 10.0),
    ],
    kb=KnowledgeBase(),  # no relevant KB (paper: KATARA scores 0 here).
)
