"""Rayyan dataset generator (1,000 × 11; Table II row 4).

Mirrors the Rayyan systematic-review bibliography dataset: article
records with journal metadata, creation timestamps, ISSNs and
pagination strings — heavy on formatted fields, hence its high
missing-value and rule-violation rates.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    date_ymd,
    pick,
    pick_weighted,
    scaled_profile,
)
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import FIRST_NAMES, JOURNALS, LANGUAGES, LAST_NAMES
from repro.data.rules import FDRule, NotNullRule, PatternRule, RangeRule
from repro.data.table import Table

ATTRIBUTES = [
    "article_id", "article_title", "journal_title", "journal_issn",
    "article_jvolumn", "article_jissue", "article_jcreated_at",
    "article_pagination", "author_list", "article_language", "journal_abbrev",
]

_TITLE_TOPICS = (
    "randomized controlled trial", "systematic review", "meta analysis",
    "cohort study", "case report", "clinical outcomes", "risk factors",
    "treatment efficacy", "screening program", "diagnostic accuracy",
)

_TITLE_SUBJECTS = (
    "hypertension", "type 2 diabetes", "breast cancer", "asthma",
    "chronic pain", "stroke rehabilitation", "depression", "obesity",
    "cardiovascular disease", "antibiotic resistance", "influenza",
    "sleep apnea", "osteoporosis", "migraine", "dementia",
)


def _abbrev(journal: str) -> str:
    words = [w for w in journal.split() if w.lower() not in {"of", "the", "and"}]
    return ". ".join(w[:4] for w in words) + "."


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean bibliography records over a fixed journal pool."""
    journal_meta = {}
    for journal in JOURNALS:
        issn = f"{int(rng.integers(1000, 9999))}-{int(rng.integers(1000, 9999))}"
        journal_meta[journal] = {"issn": issn, "abbrev": _abbrev(journal)}
    rows = []
    for i in range(n_rows):
        journal = pick_weighted(rng, JOURNALS)
        meta = journal_meta[journal]
        n_authors = int(rng.integers(1, 5))
        authors = ", ".join(
            f"{pick(rng, LAST_NAMES)} {pick(rng, FIRST_NAMES)[0]}."
            for _ in range(n_authors)
        )
        start_page = int(rng.integers(1, 1500))
        title = (
            f"{pick(rng, _TITLE_SUBJECTS).capitalize()} and "
            f"{pick(rng, _TITLE_SUBJECTS)}: a {pick(rng, _TITLE_TOPICS)}"
        )
        rows.append(
            [
                str(i + 1),
                title,
                journal,
                meta["issn"],
                str(int(rng.integers(1, 90))),
                str(int(rng.integers(1, 13))),
                date_ymd(rng, 1990, 2015),
                f"{start_page}-{start_page + int(rng.integers(2, 20))}",
                authors,
                pick_weighted(rng, LANGUAGES),
                meta["abbrev"],
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="rayyan")


SPEC = DatasetSpec(
    name="rayyan",
    default_rows=1000,
    generate_clean=generate_clean,
    # Table II: Err 29.19; MV 15.31, PV 9.42, T 3.23, O 8.47, RV 11.40.
    profile=scaled_profile(
        0.2919, missing=0.1531, pattern=0.0942, typo=0.0323,
        outlier=0.0847, rule=0.1140,
    ),
    numeric_attributes=["article_id", "article_jvolumn", "article_jissue"],
    dependencies=[
        FunctionalDependency("journal_title", "journal_issn"),
        FunctionalDependency("journal_title", "journal_abbrev"),
        FunctionalDependency("journal_issn", "journal_title"),
    ],
    rules=[
        FDRule("journal_title", "journal_issn"),
        FDRule("journal_title", "journal_abbrev"),
        PatternRule("journal_issn", r"\d{4}-\d{4}"),
        PatternRule("article_jcreated_at", r"\d{4}-\d{2}-\d{2}"),
        PatternRule("article_pagination", r"\d+-\d+"),
        RangeRule("article_jvolumn", 1, 200),
        NotNullRule("article_title"),
    ],
    kb=KnowledgeBase(),  # no relevant KB (paper: KATARA scores 0 here).
)
