"""Beers dataset generator (2,410 × 11; Table II row 3).

Mirrors the craft-cans Kaggle dataset: one row per canned beer with its
brewery.  Brewery id determines brewery name/city/state, abv and ibu
are bounded numerics, and ounces come from a tiny discrete domain.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import DatasetSpec, pick, scaled_profile
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import (
    BEER_NOUNS,
    BEER_STYLES,
    BEER_WORDS,
    BREWERY_SUFFIXES,
    CITY_STATE,
)
from repro.data.rules import DomainRule, FDRule, NotNullRule, RangeRule
from repro.data.table import Table

ATTRIBUTES = [
    "id", "beer_name", "style", "ounces", "abv", "ibu", "brewery_id",
    "brewery_name", "city", "state", "serialno",
]

_OUNCES = ("12.0", "16.0", "12.0", "16.0", "8.4", "19.2", "24.0", "32.0")


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean beers; ~1 brewery per 5 beers, as in the source."""
    cities = sorted(CITY_STATE)
    n_breweries = max(5, n_rows // 5)
    breweries = []
    for b in range(n_breweries):
        city = pick(rng, cities)
        state, _ = CITY_STATE[city]
        name = f"{pick(rng, BEER_WORDS)} {pick(rng, BEER_NOUNS)} {pick(rng, BREWERY_SUFFIXES)}"
        breweries.append(
            {"brewery_id": str(b), "brewery_name": name, "city": city, "state": state}
        )
    rows = []
    for i in range(n_rows):
        brewery = breweries[int(rng.integers(len(breweries)))]
        abv = rng.uniform(0.035, 0.1)
        ibu = int(rng.integers(10, 120))
        beer = f"{pick(rng, BEER_WORDS)} {pick(rng, BEER_NOUNS)}"
        if rng.random() < 0.3:
            beer += f" {pick(rng, ('IPA', 'Ale', 'Lager', 'Stout', 'Porter'))}"
        rows.append(
            [
                str(i + 1),
                beer,
                pick(rng, BEER_STYLES),
                pick(rng, _OUNCES),
                f"{abv:.3f}",
                str(ibu),
                brewery["brewery_id"],
                brewery["brewery_name"],
                brewery["city"],
                brewery["state"],
                f"BC{int(rng.integers(10_000, 99_999))}",
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="beers")


SPEC = DatasetSpec(
    name="beers",
    default_rows=2410,
    generate_clean=generate_clean,
    # Table II: Err 12.98; MV 0.90, PV 9.14, T 2.43, O 1.09, RV 1.12.
    profile=scaled_profile(
        0.1298, missing=0.0090, pattern=0.0914, typo=0.0243,
        outlier=0.0109, rule=0.0112,
    ),
    numeric_attributes=["abv", "ibu", "ounces", "id", "brewery_id"],
    dependencies=[
        FunctionalDependency("brewery_id", "brewery_name"),
        FunctionalDependency("brewery_id", "city"),
        FunctionalDependency("city", "state"),
    ],
    rules=[
        FDRule("brewery_id", "brewery_name"),
        FDRule("brewery_id", "city"),
        RangeRule("abv", 0.0, 0.2),
        RangeRule("ibu", 0.0, 200.0),
        DomainRule.of("ounces", sorted(set(_OUNCES))),
        NotNullRule("brewery_id"),
    ],
    kb=KnowledgeBase(),  # no relevant KB (paper: KATARA scores 0 here).
)
