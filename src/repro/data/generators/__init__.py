"""Synthetic benchmark dataset generators (Table II shapes)."""

from repro.data.generators.base import DatasetSpec, scaled_profile
from repro.data.generators.beers import SPEC as BEERS
from repro.data.generators.billionaire import SPEC as BILLIONAIRE
from repro.data.generators.flights import SPEC as FLIGHTS
from repro.data.generators.hospital import SPEC as HOSPITAL
from repro.data.generators.movies import SPEC as MOVIES
from repro.data.generators.rayyan import SPEC as RAYYAN
from repro.data.generators.tax import SPEC as TAX

__all__ = [
    "BEERS",
    "BILLIONAIRE",
    "DatasetSpec",
    "FLIGHTS",
    "HOSPITAL",
    "MOVIES",
    "RAYYAN",
    "TAX",
    "scaled_profile",
]
