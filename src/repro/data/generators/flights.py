"""Flights dataset generator (2,376 × 7; Table II row 2).

The real Flights benchmark aggregates departure/arrival times for the
same flight from many web sources, so the flight number functionally
determines the *scheduled* times while actual times vary slightly.
That structure is what drives its very high error and rule-violation
rates.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    pick,
    scaled_profile,
    time_hhmm,
)
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import AIRLINES, AIRPORTS, FLIGHT_SOURCES
from repro.data.rules import FDRule, NotNullRule, PatternRule
from repro.data.table import Table

ATTRIBUTES = [
    "tuple_id", "src", "flight", "sched_dep_time", "act_dep_time",
    "sched_arr_time", "act_arr_time",
]

_TIME_REGEX = r"\d{1,2}:\d{2} [ap]\.m\."


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean flight observations: few flights, many sources."""
    n_flights = max(5, n_rows // 30)
    flights = []
    for _ in range(n_flights):
        airline = pick(rng, AIRLINES)
        number = int(rng.integers(100, 3000))
        origin = pick(rng, AIRPORTS)
        dest = pick(rng, [a for a in AIRPORTS if a != origin])
        flights.append(
            {
                "flight": f"{airline}-{number}-{origin}-{dest}",
                "sched_dep_time": time_hhmm(rng),
                "act_dep_time": time_hhmm(rng),
                "sched_arr_time": time_hhmm(rng),
                "act_arr_time": time_hhmm(rng),
            }
        )
    rows = []
    for i in range(n_rows):
        flight = flights[int(rng.integers(len(flights)))]
        rows.append(
            [
                str(i + 1),
                pick(rng, FLIGHT_SOURCES),
                flight["flight"],
                flight["sched_dep_time"],
                flight["act_dep_time"],
                flight["sched_arr_time"],
                flight["act_arr_time"],
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="flights")


SPEC = DatasetSpec(
    name="flights",
    default_rows=2376,
    generate_clean=generate_clean,
    # Table II: Err 34.51; MV 16.22, PV 20.12, T 13.92, O 17.52, RV 34.51.
    profile=scaled_profile(
        0.3451, missing=0.1622, pattern=0.2012, typo=0.1392,
        outlier=0.1752, rule=0.3451,
    ),
    numeric_attributes=["tuple_id"],
    dependencies=[
        FunctionalDependency("flight", "sched_dep_time"),
        FunctionalDependency("flight", "act_dep_time"),
        FunctionalDependency("flight", "sched_arr_time"),
        FunctionalDependency("flight", "act_arr_time"),
    ],
    rules=[
        FDRule("flight", "sched_dep_time"),
        FDRule("flight", "sched_arr_time"),
        PatternRule("sched_dep_time", _TIME_REGEX),
        PatternRule("act_dep_time", _TIME_REGEX),
        PatternRule("sched_arr_time", _TIME_REGEX),
        PatternRule("act_arr_time", _TIME_REGEX),
        NotNullRule("act_arr_time"),
    ],
    kb=KnowledgeBase(),  # no relevant KB: KATARA finds nothing (paper).
)
