"""Tax dataset generator (200,000 × 22 default; Table II row 7).

The BART-repository Tax dataset is the paper's scalability workload
(Figs. 7b, 8b sweep 50k–200k rows).  It is a synthetic personnel/tax
table with strong dependencies: zip → city/state, state → tax rate
bands, salary × rate → tax.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    phone,
    pick,
    scaled_profile,
    zipcode,
)
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import (
    CITY_STATE,
    EDUCATION_LEVELS,
    FIRST_NAMES,
    LAST_NAMES,
    MARITAL_STATUSES,
)
from repro.data.rules import DomainRule, FDRule, PatternRule, RangeRule
from repro.data.table import Table

ATTRIBUTES = [
    "fname", "lname", "gender", "area_code", "phone", "city", "state",
    "zip", "marital_status", "has_child", "salary", "rate", "single_exemp",
    "married_exemp", "child_exemp", "tax", "education", "occupation_code",
    "employer_id", "years_employed", "bonus", "account_no",
]

_OCCUPATIONS = tuple(f"OC{code}" for code in range(100, 140))


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean tax records with consistent derived fields."""
    cities = sorted(CITY_STATE)
    # Per-state tax bands fixed for the run so state -> rate is an FD.
    states = sorted({v[0] for v in CITY_STATE.values()})
    state_rate = {s: round(float(rng.uniform(2.0, 9.0)), 2) for s in states}
    state_single = {s: int(rng.integers(2, 9)) * 250 for s in states}
    state_married = {s: int(rng.integers(3, 12)) * 250 for s in states}
    state_child = {s: int(rng.integers(1, 6)) * 250 for s in states}
    rows = []
    for i in range(n_rows):
        city = pick(rng, cities)
        state, zip_prefix = CITY_STATE[city]
        salary = int(rng.integers(18, 250)) * 1000
        rate = state_rate[state]
        tax = int(salary * rate / 100)
        ph = phone(rng)
        rows.append(
            [
                pick(rng, FIRST_NAMES),
                pick(rng, LAST_NAMES),
                "M" if rng.random() < 0.5 else "F",
                ph.split("-")[0],
                ph,
                city,
                state,
                zipcode(rng, zip_prefix),
                pick(rng, MARITAL_STATUSES),
                "Y" if rng.random() < 0.4 else "N",
                str(salary),
                f"{rate:.2f}",
                str(state_single[state]),
                str(state_married[state]),
                str(state_child[state]),
                str(tax),
                pick(rng, EDUCATION_LEVELS),
                pick(rng, _OCCUPATIONS),
                f"E{int(rng.integers(1000, 9999))}",
                str(int(rng.integers(0, 40))),
                str(int(rng.integers(0, 30)) * 500),
                f"AC{int(rng.integers(10**7, 10**8))}",
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="tax")


SPEC = DatasetSpec(
    name="tax",
    default_rows=200_000,
    generate_clean=generate_clean,
    # Table II reports tiny overlapping rates for Tax; we keep a ~1%
    # overall rate with the same type mix so scalability runs still
    # carry detectable signal.
    profile=scaled_profile(
        0.01, missing=0.0001, pattern=0.0336, typo=0.0004,
        outlier=0.0008, rule=0.0003,
    ),
    numeric_attributes=[
        "salary", "rate", "tax", "single_exemp", "married_exemp",
        "child_exemp", "years_employed", "bonus", "area_code",
    ],
    dependencies=[
        FunctionalDependency("zip", "city"),
        FunctionalDependency("city", "state"),
        FunctionalDependency("state", "rate"),
        FunctionalDependency("state", "single_exemp"),
    ],
    rules=[
        FDRule("zip", "city"),
        FDRule("city", "state"),
        FDRule("state", "rate"),
        PatternRule("zip", r"\d{5}"),
        PatternRule("phone", r"\d{3}-\d{3}-\d{4}"),
        DomainRule.of("gender", ("M", "F")),
        DomainRule.of("marital_status", ("S", "M", "D", "W")),
        RangeRule("rate", 0.0, 15.0),
    ],
    kb=KnowledgeBase(),
)
