"""Hospital dataset generator (1,000 × 20; Table II row 1).

Mirrors the classic Hospital cleaning benchmark: US hospital records
with strong functional dependencies (ZipCode → City/State, MeasureCode
→ Condition/MeasureName, ProviderNumber → HospitalName) that rule- and
KB-based detectors exploit.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    phone,
    pick,
    pick_weighted,
    scaled_profile,
    zipcode,
)
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import (
    CITY_STATE,
    HOSPITAL_CONDITIONS,
    HOSPITAL_OWNERS,
    HOSPITAL_TYPES,
    LAST_NAMES,
    MEASURE_NAMES,
)
from repro.data.rules import DomainRule, FDRule, NotNullRule, PatternRule
from repro.data.table import Table

ATTRIBUTES = [
    "ProviderNumber", "HospitalName", "Address1", "Address2", "Address3",
    "City", "State", "ZipCode", "CountyName", "PhoneNumber", "HospitalType",
    "HospitalOwner", "EmergencyService", "Condition", "MeasureCode",
    "MeasureName", "Score", "Sample", "StateAvg", "Region",
]

_REGION_OF_STATE = {
    "AL": "South", "AZ": "West", "CA": "West", "CO": "West", "CT": "Northeast",
    "FL": "South", "GA": "South", "IL": "Midwest", "IN": "Midwest",
    "IA": "Midwest", "KS": "Midwest", "KY": "South", "LA": "South",
    "MA": "Northeast", "MD": "South", "MI": "Midwest", "MN": "Midwest",
    "MS": "South", "MO": "Midwest", "NE": "Midwest", "NV": "West",
    "NJ": "Northeast", "NM": "West", "NY": "Northeast", "NC": "South",
    "OH": "Midwest", "OK": "South", "OR": "West", "PA": "Northeast",
    "RI": "Northeast", "SC": "South", "TN": "South", "TX": "South",
    "UT": "West", "VA": "South", "WA": "West", "WI": "Midwest",
}


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate a clean Hospital table with ~60 distinct providers."""
    cities = sorted(CITY_STATE)
    n_providers = max(10, min(80, n_rows // 15))
    providers = []
    for p in range(n_providers):
        number = f"{10000 + p}"
        city = pick(rng, cities)
        state, zip_prefix = CITY_STATE[city]
        providers.append(
            {
                "ProviderNumber": number,
                "HospitalName": f"{pick(rng, LAST_NAMES).upper()} "
                                f"{pick(rng, ('MEDICAL CENTER', 'HOSPITAL', 'REGIONAL MEDICAL CENTER', 'MEMORIAL HOSPITAL'))}",
                "Address1": f"{int(rng.integers(100, 9900))} "
                            f"{pick(rng, LAST_NAMES).upper()} "
                            f"{pick(rng, ('STREET', 'AVENUE', 'DRIVE', 'BOULEVARD'))}",
                "Address2": "",
                "Address3": "",
                "City": city.upper(),
                "State": state,
                "ZipCode": zipcode(rng, zip_prefix),
                "CountyName": pick(rng, LAST_NAMES).upper(),
                "PhoneNumber": phone(rng).replace("-", ""),
                "HospitalType": pick_weighted(rng, HOSPITAL_TYPES),
                "HospitalOwner": pick_weighted(rng, HOSPITAL_OWNERS),
                "EmergencyService": "Yes" if rng.random() < 0.8 else "No",
            }
        )
    conditions = sorted(HOSPITAL_CONDITIONS)
    state_avgs: dict[tuple[str, str], str] = {}
    rows = []
    for _ in range(n_rows):
        provider = providers[int(rng.integers(len(providers)))]
        condition = pick_weighted(rng, conditions)
        code = pick(rng, HOSPITAL_CONDITIONS[condition])
        score = f"{int(rng.integers(55, 101))}%"
        sample = f"{int(rng.integers(10, 800))} patients"
        key = (provider["State"], code)
        if key not in state_avgs:
            state_avgs[key] = f"{provider['State']}_{code}_{int(rng.integers(60, 100))}%"
        row = dict(provider)
        row.update(
            {
                "Condition": condition,
                "MeasureCode": code,
                "MeasureName": MEASURE_NAMES[code],
                "Score": score,
                "Sample": sample,
                "StateAvg": state_avgs[key],
                "Region": _REGION_OF_STATE[provider["State"]],
            }
        )
        rows.append([row[a] for a in ATTRIBUTES])
    return Table.from_rows(ATTRIBUTES, rows, name="hospital")


def _build_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_relation(
        "City",
        "State",
        [(city.upper(), st) for city, (st, _) in CITY_STATE.items()],
    )
    kb.add_relation(
        "State",
        "Region",
        [(st, region) for st, region in _REGION_OF_STATE.items()],
    )
    kb.add_domain("State", sorted({v[0] for v in CITY_STATE.values()}))
    kb.add_domain("Condition", sorted(HOSPITAL_CONDITIONS))
    return kb


SPEC = DatasetSpec(
    name="hospital",
    default_rows=1000,
    generate_clean=generate_clean,
    # Table II: Err 4.82; MV 0, PV 2.75, T 2.71, O 2.98, RV 2.05.
    profile=scaled_profile(
        0.0482, missing=0.0, pattern=0.0275, typo=0.0271,
        outlier=0.0298, rule=0.0205,
    ),
    numeric_attributes=["ProviderNumber"],
    dependencies=[
        FunctionalDependency("ZipCode", "City"),
        FunctionalDependency("City", "State"),
        FunctionalDependency("MeasureCode", "Condition"),
        FunctionalDependency("MeasureCode", "MeasureName"),
        FunctionalDependency("ProviderNumber", "HospitalName"),
        FunctionalDependency("State", "Region"),
    ],
    rules=[
        FDRule("ZipCode", "City"),
        FDRule("City", "State"),
        FDRule("MeasureCode", "Condition"),
        FDRule("MeasureCode", "MeasureName"),
        PatternRule("ZipCode", r"\d{5}"),
        PatternRule("PhoneNumber", r"\d{10}"),
        DomainRule.of("EmergencyService", ("Yes", "No")),
        NotNullRule("ProviderNumber"),
    ],
    kb=_build_kb(),
)
