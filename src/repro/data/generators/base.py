"""Dataset specification type and generator helpers.

A :class:`DatasetSpec` bundles everything an experiment needs for one
benchmark dataset: a clean-table generator, the Table II error profile,
injector hints (numeric attributes, functional dependencies), the
NADEEF rule pack and the KATARA knowledge base.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.injector import (
    ErrorInjector,
    ErrorProfile,
    FunctionalDependency,
    InjectionResult,
)
from repro.data.kb import KnowledgeBase
from repro.data.rules import Rule
from repro.data.table import Table
from repro.ml.rng import RngLike, as_generator, spawn


@dataclass
class DatasetSpec:
    """Everything needed to materialise one benchmark dataset."""

    name: str
    default_rows: int
    generate_clean: Callable[[int, np.random.Generator], Table]
    profile: ErrorProfile
    numeric_attributes: list[str] = field(default_factory=list)
    dependencies: list[FunctionalDependency] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    kb: KnowledgeBase = field(default_factory=KnowledgeBase)

    def make(
        self,
        n_rows: int | None = None,
        seed: RngLike = 0,
        profile: ErrorProfile | None = None,
    ) -> InjectionResult:
        """Generate a clean table and inject errors per the profile."""
        rows = n_rows if n_rows is not None else self.default_rows
        gen_rng = spawn(seed, f"{self.name}/clean")
        clean = self.generate_clean(rows, gen_rng)
        injector = ErrorInjector(
            profile or self.profile,
            numeric_attributes=self.numeric_attributes,
            dependencies=self.dependencies,
            seed=spawn(seed, f"{self.name}/inject"),
        )
        return injector.inject(clean)


def scaled_profile(
    total: float,
    missing: float,
    pattern: float,
    typo: float,
    outlier: float,
    rule: float,
) -> ErrorProfile:
    """Scale Table II's per-type masses so their sum equals ``total``.

    The paper's per-type percentages overlap (a cell can be counted
    under several types), so their sum exceeds the overall error rate.
    For injection we keep the *mix* and normalise the *mass* to the
    reported overall rate; all rates are fractions of cells.
    """
    masses = np.array([missing, pattern, typo, outlier, rule], dtype=float)
    mass_sum = float(masses.sum())
    if mass_sum <= 0:
        return ErrorProfile()
    scaled = masses / mass_sum * total
    return ErrorProfile(
        missing=float(scaled[0]),
        pattern=float(scaled[1]),
        typo=float(scaled[2]),
        outlier=float(scaled[3]),
        rule=float(scaled[4]),
    )


def pick(rng: np.random.Generator, pool: Sequence[str]) -> str:
    """Uniformly pick one value from a pool."""
    return pool[int(rng.integers(len(pool)))]


def pick_weighted(
    rng: np.random.Generator, pool: Sequence[str], zipf_a: float = 1.3
) -> str:
    """Zipf-weighted pick — real categorical columns are head-heavy."""
    ranks = np.arange(1, len(pool) + 1, dtype=float)
    weights = ranks**-zipf_a
    weights /= weights.sum()
    return pool[int(rng.choice(len(pool), p=weights))]


def phone(rng: np.random.Generator) -> str:
    area = int(rng.integers(200, 990))
    mid = int(rng.integers(200, 990))
    tail = int(rng.integers(0, 10_000))
    return f"{area}-{mid}-{tail:04d}"


def zipcode(rng: np.random.Generator, prefix: str = "") -> str:
    remaining = 5 - len(prefix)
    digits = "".join(str(int(rng.integers(10))) for _ in range(remaining))
    return prefix + digits


def time_hhmm(rng: np.random.Generator) -> str:
    """A 12-hour clock time like '7:45 a.m.' (Flights format)."""
    hour = int(rng.integers(1, 13))
    minute = int(rng.integers(0, 60))
    suffix = "a.m." if rng.random() < 0.5 else "p.m."
    return f"{hour}:{minute:02d} {suffix}"


def date_ymd(rng: np.random.Generator, year_lo: int, year_hi: int) -> str:
    year = int(rng.integers(year_lo, year_hi + 1))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{year}-{month:02d}-{day:02d}"


def sentence_case(words: list[str]) -> str:
    return " ".join(words)


def make_rng(seed: RngLike) -> np.random.Generator:
    return as_generator(seed)
