"""Billionaire dataset generator (2,615 × 22; Table II row 5).

Mirrors the CORGIS billionaires dataset used by the paper (with
manually injected errors): person, wealth, and company facets with a
wide 22-attribute schema and a few soft dependencies (country →
region, company → industry).
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    DatasetSpec,
    pick,
    pick_weighted,
    scaled_profile,
)
from repro.data.injector import FunctionalDependency
from repro.data.kb import KnowledgeBase
from repro.data.pools import (
    COMPANY_SUFFIXES,
    COMPANY_WORDS,
    COUNTRIES,
    FIRST_NAMES,
    INDUSTRIES,
    LAST_NAMES,
)
from repro.data.rules import DomainRule, FDRule, NotNullRule, RangeRule
from repro.data.table import Table

ATTRIBUTES = [
    "name", "rank", "year", "company_name", "company_founded",
    "company_relationship", "company_sector", "company_type",
    "demographics_age", "demographics_gender", "location_citizenship",
    "location_country_code", "location_gdp", "location_region",
    "wealth_type", "wealth_worth", "wealth_how_category",
    "wealth_how_industry", "wealth_was_founder", "wealth_inherited",
    "wealth_from_emerging", "source_id",
]

_COUNTRY_CODE = {c: c[:3].upper().replace(" ", "") for c in COUNTRIES}
_COUNTRY_REGION = {
    "United States": "North America", "Canada": "North America",
    "Mexico": "North America", "Brazil": "South America",
    "China": "East Asia", "Japan": "East Asia", "South Korea": "East Asia",
    "India": "South Asia", "Indonesia": "South East Asia",
    "Germany": "Europe", "United Kingdom": "Europe", "France": "Europe",
    "Italy": "Europe", "Spain": "Europe", "Sweden": "Europe",
    "Switzerland": "Europe", "Russia": "Europe", "Turkey": "Middle East",
    "Saudi Arabia": "Middle East", "Australia": "Oceania",
}
_WEALTH_TYPES = (
    "founder non-finance", "privatized and resources", "inherited",
    "self-made finance", "executive",
)
_RELATIONSHIPS = ("founder", "relation", "chairman", "investor", "owner")
_COMPANY_TYPES = ("new", "acquired", "privatized", "aquired from family")


def generate_clean(n_rows: int, rng: np.random.Generator) -> Table:
    """Generate clean billionaire records across ranking years."""
    rows = []
    for i in range(n_rows):
        country = pick_weighted(rng, COUNTRIES)
        industry = pick_weighted(rng, INDUSTRIES)
        company = f"{pick(rng, COMPANY_WORDS)} {pick(rng, COMPANY_SUFFIXES)}"
        founded = int(rng.integers(1900, 2010))
        age = int(rng.integers(28, 95))
        worth = rng.uniform(1.0, 80.0)
        inherited = rng.random() < 0.3
        founder = not inherited and rng.random() < 0.6
        year = int(pick(rng, ("1996", "2001", "2014")))
        gdp = rng.uniform(0.05, 18.0) * 1e12
        rows.append(
            [
                f"{pick(rng, FIRST_NAMES)} {pick(rng, LAST_NAMES)}",
                str(i % 500 + 1),
                str(year),
                company,
                str(founded),
                pick_weighted(rng, _RELATIONSHIPS),
                industry,
                pick(rng, _COMPANY_TYPES),
                str(age),
                "male" if rng.random() < 0.88 else "female",
                country,
                _COUNTRY_CODE[country],
                f"{gdp:.2e}",
                _COUNTRY_REGION[country],
                pick_weighted(rng, _WEALTH_TYPES),
                f"{worth:.1f}",
                "inherited" if inherited else "self-made",
                industry,
                "True" if founder else "False",
                "True" if inherited else "False",
                "True" if rng.random() < 0.35 else "False",
                f"S{int(rng.integers(100000, 999999))}",
            ]
        )
    return Table.from_rows(ATTRIBUTES, rows, name="billionaire")


def _build_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_relation(
        "location_citizenship",
        "location_region",
        list(_COUNTRY_REGION.items()),
    )
    kb.add_domain("location_citizenship", COUNTRIES)
    kb.add_domain("demographics_gender", ("male", "female"))
    return kb


SPEC = DatasetSpec(
    name="billionaire",
    default_rows=2615,
    generate_clean=generate_clean,
    # Table II: Err 9.84; MV 2.41, PV 3.14, T 1.35, O 3.80, RV 0.56.
    profile=scaled_profile(
        0.0984, missing=0.0241, pattern=0.0314, typo=0.0135,
        outlier=0.0380, rule=0.0056,
    ),
    numeric_attributes=[
        "rank", "year", "company_founded", "demographics_age",
        "wealth_worth", "location_gdp",
    ],
    dependencies=[
        FunctionalDependency("location_citizenship", "location_region"),
        FunctionalDependency("location_citizenship", "location_country_code"),
        FunctionalDependency("wealth_how_industry", "company_sector"),
    ],
    rules=[
        FDRule("location_citizenship", "location_region"),
        FDRule("location_citizenship", "location_country_code"),
        RangeRule("demographics_age", 10, 120),
        RangeRule("wealth_worth", 0.5, 200.0),
        RangeRule("company_founded", 1700, 2020),
        DomainRule.of("demographics_gender", ("male", "female")),
        DomainRule.of("year", ("1996", "2001", "2014")),
        NotNullRule("name"),
    ],
    kb=_build_kb(),
)
