"""Declarative data-quality rules shipped with the dataset generators.

NADEEF consumes these rule packs (the paper supplies NADEEF's
constraints "from existing public code"); the injector and the post-hoc
error-type classifier consume the functional dependencies.  Keeping the
rule language in the data layer avoids a baselines→generators import
cycle and mirrors how real deployments ship rules next to schemas.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.data.errortypes import is_missing_placeholder
from repro.data.table import Table


class Rule:
    """Base class: a rule yields violating (row, attribute) cells."""

    def violations(self, table: Table) -> list[tuple[int, str]]:
        raise NotImplementedError


@dataclass(frozen=True)
class NotNullRule(Rule):
    """Flag missing placeholders in ``attr``."""

    attr: str

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.attr not in table.attributes:
            return []
        col = table.column_view(self.attr)
        return [
            (i, self.attr)
            for i, v in enumerate(col)
            if is_missing_placeholder(v)
        ]


@dataclass(frozen=True)
class PatternRule(Rule):
    """Flag non-empty values of ``attr`` not fully matching ``regex``."""

    attr: str
    regex: str

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.attr not in table.attributes:
            return []
        compiled = re.compile(self.regex)
        out = []
        for i, v in enumerate(table.column_view(self.attr)):
            if v and compiled.fullmatch(v) is None:
                out.append((i, self.attr))
        return out


@dataclass(frozen=True)
class DomainRule(Rule):
    """Flag non-empty values of ``attr`` outside an allowed set."""

    attr: str
    allowed: frozenset[str]

    @classmethod
    def of(cls, attr: str, values: Sequence[str]) -> "DomainRule":
        return cls(attr, frozenset(values))

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.attr not in table.attributes:
            return []
        return [
            (i, self.attr)
            for i, v in enumerate(table.column_view(self.attr))
            if v and v not in self.allowed
        ]


@dataclass(frozen=True)
class RangeRule(Rule):
    """Flag numeric values of ``attr`` outside ``[low, high]``.

    Non-numeric, non-empty values are also flagged (they violate the
    numeric domain implicitly).
    """

    attr: str
    low: float
    high: float

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.attr not in table.attributes:
            return []
        out = []
        for i, v in enumerate(table.column_view(self.attr)):
            if not v:
                continue
            try:
                num = float(v)
            except ValueError:
                out.append((i, self.attr))
                continue
            if not self.low <= num <= self.high:
                out.append((i, self.attr))
        return out


@dataclass(frozen=True)
class FDRule(Rule):
    """Functional dependency ``lhs -> rhs`` as a denial constraint.

    NADEEF's denial-constraint semantics flag every cell *involved in a
    violation instance*: two tuples sharing an lhs value but disagreeing
    on rhs violate the constraint, and both rhs cells are reported.  In
    aggregate that flags the rhs cells of every group with more than one
    distinct rhs value — including the (usually clean) majority side,
    which is why rule engines report FDs with high recall but modest
    precision.
    """

    lhs: str
    rhs: str

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.lhs not in table.attributes or self.rhs not in table.attributes:
            return []
        lhs_col = table.column_view(self.lhs)
        rhs_col = table.column_view(self.rhs)
        groups: dict[str, set[str]] = {}
        for lv, rv in zip(lhs_col, rhs_col):
            groups.setdefault(lv, set()).add(rv)
        out = []
        for i, (lv, rv) in enumerate(zip(lhs_col, rhs_col)):
            if len(groups[lv]) > 1:
                out.append((i, self.rhs))
        return out


@dataclass(frozen=True)
class CheckRule(Rule):
    """Arbitrary row predicate; flags ``attr`` when the predicate fails."""

    attr: str
    predicate: Callable[[dict[str, str]], bool]
    name: str = "check"

    def violations(self, table: Table) -> list[tuple[int, str]]:
        if self.attr not in table.attributes:
            return []
        out = []
        for i in range(table.n_rows):
            row = table.row(i)
            try:
                ok = bool(self.predicate(row))
            except Exception:
                ok = False
            if not ok:
                out.append((i, self.attr))
        return out
