"""Data-quality profiling reports.

A human-readable per-attribute profile of a table: cardinality, missing
share, dominant formats, numeric summary, and the strongest detected
dependencies.  This is the "understand your data first" companion the
error-detection workflow starts from (and a convenient debugging lens
on what the pipeline's statistics actually see).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.stats import AttributeStats
from repro.data.table import Table
from repro.ml.nmi import normalized_mutual_information


@dataclass
class AttributeProfile:
    """Profile facts for one attribute."""

    attr: str
    n_distinct: int
    missing_share: float
    numeric_fraction: float
    mean_length: float
    top_values: list[str] = field(default_factory=list)
    dominant_patterns: list[str] = field(default_factory=list)
    numeric_summary: str = ""


@dataclass
class DependencyFact:
    """A strong lhs -> rhs dependency discovered in the data."""

    lhs: str
    rhs: str
    nmi: float
    fd_strength: float

    def __str__(self) -> str:
        return (
            f"{self.lhs} -> {self.rhs} "
            f"(NMI={self.nmi:.2f}, FD-strength={self.fd_strength:.2f})"
        )


@dataclass
class TableProfile:
    """A full profiling report for a table."""

    name: str
    n_rows: int
    attributes: list[AttributeProfile] = field(default_factory=list)
    dependencies: list[DependencyFact] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"Profile of '{self.name}' ({self.n_rows} rows)", ""]
        for ap in self.attributes:
            lines.append(f"## {ap.attr}")
            lines.append(
                f"  distinct={ap.n_distinct}  missing={ap.missing_share:.1%}"
                f"  numeric={ap.numeric_fraction:.1%}"
                f"  mean_len={ap.mean_length:.1f}"
            )
            if ap.top_values:
                shown = ", ".join(repr(v) for v in ap.top_values[:5])
                lines.append(f"  top values: {shown}")
            if ap.dominant_patterns:
                lines.append(
                    f"  formats: {', '.join(ap.dominant_patterns[:4])}"
                )
            if ap.numeric_summary:
                lines.append(f"  numeric: {ap.numeric_summary}")
        if self.dependencies:
            lines.append("")
            lines.append("## Strong dependencies")
            for dep in self.dependencies:
                lines.append(f"  {dep}")
        return "\n".join(lines)


def profile_table(
    table: Table,
    nmi_threshold: float = 0.6,
    fd_threshold: float = 0.8,
) -> TableProfile:
    """Compute a :class:`TableProfile` for ``table``."""
    profile = TableProfile(name=table.name, n_rows=table.n_rows)
    stats = {a: AttributeStats.compute(table, a) for a in table.attributes}
    for attr in table.attributes:
        st = stats[attr]
        numeric_summary = ""
        if st.numeric.fraction > 0:
            numeric_summary = (
                f"median={st.numeric.median:.4g} "
                f"p01={st.numeric.q01:.4g} p99={st.numeric.q99:.4g}"
            )
        profile.attributes.append(
            AttributeProfile(
                attr=attr,
                n_distinct=st.n_distinct(),
                missing_share=st.missing_share(),
                numeric_fraction=st.numeric.fraction,
                mean_length=st.mean_length,
                top_values=st.top_values(5),
                dominant_patterns=st.dominant_patterns(0.9)[:4],
                numeric_summary=numeric_summary,
            )
        )
    columns = {a: table.column_view(a) for a in table.attributes}
    for i, lhs in enumerate(table.attributes):
        for rhs in table.attributes[i + 1 :]:
            nmi = normalized_mutual_information(columns[lhs], columns[rhs])
            if nmi < nmi_threshold:
                continue
            for a, b in ((lhs, rhs), (rhs, lhs)):
                ps = table.pair_stats(a, b)
                if ps.fd_strength >= fd_threshold:
                    profile.dependencies.append(
                        DependencyFact(
                            lhs=a, rhs=b, nmi=nmi,
                            fd_strength=ps.fd_strength,
                        )
                    )
    profile.dependencies.sort(key=lambda d: -d.fd_strength)
    return profile
