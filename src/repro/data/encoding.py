"""Columnar value interning: factorize a column once, work per unique.

Real tabular columns are highly repetitive — a 200k-row Tax column
holds a few hundred distinct strings.  Every hot stage of the pipeline
(frequency features, pattern generalisation, vicinity co-occurrence,
embeddings, criteria execution) is a pure function of the cell *value*
(plus the values of a few context cells), so computing it per row is
O(n_rows) wasted work.

:class:`ColumnEncoding` interns a string column into

* ``codes`` — an ``int64`` array assigning each row the integer id of
  its value, ids issued in order of first appearance;
* ``uniques`` — the distinct values, indexed by id;
* ``counts`` — occurrences per distinct value (``np.bincount(codes)``).

Downstream stages then evaluate per *unique* value and scatter back
with ``result[codes]`` (a single NumPy gather), and joint statistics
between two columns become integer-array problems: the pair id
``codes_q * n_unique_a + codes_a`` turns co-occurrence counting into
one ``np.unique(..., return_inverse=True, return_counts=True)`` call
over the distinct pairs actually present — equivalent to a dense
``np.add.at`` joint-count matrix but without materialising the
``n_unique_q × n_unique_a`` grid, which high-cardinality pairs would
blow up.

Encodings are cached on :class:`~repro.data.table.Table` (see
``Table.encoding``) and invalidated by ``set_cell``, the table's only
mutator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, eq=False)
class ColumnEncoding:
    """Integer factorization of one string column.

    Attributes
    ----------
    codes:
        ``int64`` array of shape ``(n_rows,)``; ``uniques[codes[i]]``
        is row ``i``'s value.  Ids follow first-appearance order, so
        iterating ``uniques`` reproduces the column's first-occurrence
        order (the same order ``Counter(column)`` iterates).
    uniques:
        Distinct values in first-appearance order.
    counts:
        ``int64`` array aligned with ``uniques``: occurrences of each
        distinct value.
    """

    codes: np.ndarray
    uniques: list[str]
    counts: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[str]) -> "ColumnEncoding":
        """Factorize ``values`` in one pass (first-appearance ids)."""
        code_of: dict[str, int] = {}
        codes = np.fromiter(
            (code_of.setdefault(v, len(code_of)) for v in values),
            dtype=np.int64,
            count=len(values),
        )
        counts = np.bincount(codes, minlength=len(code_of)).astype(np.int64)
        return cls(codes=codes, uniques=list(code_of), counts=counts)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self.codes.shape[0])

    @property
    def n_unique(self) -> int:
        return len(self.uniques)


def fold_codes(
    encodings: Sequence[ColumnEncoding],
    row_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Injective int64 key per row for a tuple of aligned columns.

    Two rows get equal keys iff their value tuples over ``encodings``
    are equal — the array form of ``tuple(row values)``.  When the
    combined cardinality fits in int64 the key is the mixed-radix fold
    ``((c0 * n1 + c1) * n2 + c2) ...`` (the common case: one or two
    context columns); otherwise the stacked codes are re-interned with
    one ``np.unique(axis=0)`` pass, which preserves equality semantics
    at the cost of a lexsort.

    ``row_indices`` restricts the fold to those rows (keys are then
    aligned with ``row_indices``, not with the full column).

    The result may alias the first encoding's live ``codes`` array
    (single-encoding passthrough) — treat it as read-only.
    """
    if not encodings:
        raise ValueError("fold_codes needs at least one encoding")

    def col(enc: ColumnEncoding) -> np.ndarray:
        return enc.codes if row_indices is None else enc.codes[row_indices]

    capacity = 1
    for enc in encodings:
        capacity *= max(enc.n_unique, 1)
    if capacity < 2**62:
        key = col(encodings[0])
        for enc in encodings[1:]:
            key = key * np.int64(max(enc.n_unique, 1)) + col(enc)
        return key
    stacked = np.stack([col(enc) for enc in encodings], axis=1)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return inverse.astype(np.int64, copy=False)


def joint_counts(
    lhs: ColumnEncoding, rhs: ColumnEncoding, return_index: bool = False
) -> tuple[np.ndarray, ...]:
    """Sparse co-occurrence counts between two aligned columns.

    Returns ``(lhs_codes, rhs_codes, counts, inverse)`` where the first
    three are aligned over the distinct ``(lhs, rhs)`` pairs present
    and ``counts[inverse]`` is the per-row count of the row's own pair.
    With ``return_index`` a fifth array is appended: the row index of
    each distinct pair's first occurrence.
    """
    if lhs.n_rows != rhs.n_rows:
        raise ValueError("joint_counts needs equally long columns")
    pair = lhs.codes * np.int64(max(rhs.n_unique, 1)) + rhs.codes
    pairs, first_rows, inverse, counts = np.unique(
        pair, return_index=True, return_inverse=True, return_counts=True
    )
    lhs_codes, rhs_codes = np.divmod(pairs, max(rhs.n_unique, 1))
    out = (lhs_codes, rhs_codes, counts.astype(np.int64), inverse)
    return out + (first_rows,) if return_index else out
