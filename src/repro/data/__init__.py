"""Tabular data substrate: tables, masks, injection, datasets."""

from repro.data.csvio import read_csv, write_csv
from repro.data.errortypes import (
    MISSING_PLACEHOLDERS,
    ErrorType,
    is_missing_placeholder,
)
from repro.data.injector import (
    ErrorInjector,
    ErrorProfile,
    FunctionalDependency,
    InjectionResult,
    classify_error_types,
)
from repro.data.kb import KnowledgeBase
from repro.data.mask import ErrorMask
from repro.data.maskio import (
    read_dataset,
    read_mask,
    write_dataset,
    write_mask,
)
from repro.data.registry import (
    COMPARISON_DATASETS,
    dataset_names,
    get_dataset,
    make_dataset,
)
from repro.data.table import Table

__all__ = [
    "COMPARISON_DATASETS",
    "ErrorInjector",
    "ErrorMask",
    "ErrorProfile",
    "ErrorType",
    "FunctionalDependency",
    "InjectionResult",
    "KnowledgeBase",
    "MISSING_PLACEHOLDERS",
    "Table",
    "classify_error_types",
    "dataset_names",
    "get_dataset",
    "is_missing_placeholder",
    "make_dataset",
    "read_csv",
    "read_dataset",
    "read_mask",
    "write_csv",
    "write_dataset",
    "write_mask",
]
