"""A small KATARA-style knowledge base.

KATARA validates attribute pairs against curated relations (e.g.
``city isLocatedIn state``).  The KB here exposes exactly that: a set
of valid value pairs per (lhs_attr, rhs_attr) relation, plus optional
single-attribute domains.  Datasets without relevant relations get an
empty KB, reproducing the paper's zero scores for KATARA on Flights,
Beers, Rayyan and Movies.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass
class KnowledgeBase:
    """Curated relations and domains for KATARA-style validation."""

    #: (lhs_attr, rhs_attr) -> set of valid (lhs_value, rhs_value) pairs.
    relations: dict[tuple[str, str], set[tuple[str, str]]] = field(
        default_factory=dict
    )
    #: attr -> set of known-valid values for that attribute.
    domains: dict[str, set[str]] = field(default_factory=dict)

    def add_relation(
        self, lhs: str, rhs: str, pairs: Iterable[tuple[str, str]]
    ) -> None:
        self.relations.setdefault((lhs, rhs), set()).update(pairs)

    def add_domain(self, attr: str, values: Iterable[str]) -> None:
        self.domains.setdefault(attr, set()).update(values)

    def is_empty(self) -> bool:
        return not self.relations and not self.domains

    def knows_lhs(self, lhs: str, rhs: str, lhs_value: str) -> bool:
        """True if the KB has any pair for this lhs value."""
        pairs = self.relations.get((lhs, rhs), set())
        return any(a == lhs_value for a, _ in pairs)

    def pair_valid(self, lhs: str, rhs: str, lhs_value: str, rhs_value: str) -> bool:
        return (lhs_value, rhs_value) in self.relations.get((lhs, rhs), set())

    def domain_valid(self, attr: str, value: str) -> bool:
        return value in self.domains.get(attr, set())

    def covers_attribute(self, attr: str) -> bool:
        if attr in self.domains:
            return True
        return any(attr in pair for pair in self.relations)
