"""Shared value pools for the synthetic dataset generators.

The offline reproduction cannot ship the original benchmark CSVs, so
each generator draws from curated pools that reproduce the *shape* of
the real data: realistic cardinalities, formats, and cross-attribute
dependencies (city → state, condition → measure code, ...), which is
what the detectors actually key on.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
    "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
)

# City -> (State code, sample zip prefix); drives the city->state FD and
# the KATARA knowledge base for datasets where a KB "exists".
CITY_STATE: dict[str, tuple[str, str]] = {
    "Birmingham": ("AL", "352"),
    "Montgomery": ("AL", "361"),
    "Mobile": ("AL", "366"),
    "Huntsville": ("AL", "358"),
    "Phoenix": ("AZ", "850"),
    "Tucson": ("AZ", "857"),
    "Los Angeles": ("CA", "900"),
    "San Diego": ("CA", "921"),
    "San Francisco": ("CA", "941"),
    "Sacramento": ("CA", "958"),
    "Denver": ("CO", "802"),
    "Hartford": ("CT", "061"),
    "Miami": ("FL", "331"),
    "Orlando": ("FL", "328"),
    "Tampa": ("FL", "336"),
    "Atlanta": ("GA", "303"),
    "Chicago": ("IL", "606"),
    "Indianapolis": ("IN", "462"),
    "Des Moines": ("IA", "503"),
    "Wichita": ("KS", "672"),
    "Louisville": ("KY", "402"),
    "New Orleans": ("LA", "701"),
    "Boston": ("MA", "021"),
    "Baltimore": ("MD", "212"),
    "Detroit": ("MI", "482"),
    "Minneapolis": ("MN", "554"),
    "Jackson": ("MS", "392"),
    "Kansas City": ("MO", "641"),
    "Omaha": ("NE", "681"),
    "Las Vegas": ("NV", "891"),
    "Newark": ("NJ", "071"),
    "Albuquerque": ("NM", "871"),
    "New York": ("NY", "100"),
    "Buffalo": ("NY", "142"),
    "Charlotte": ("NC", "282"),
    "Columbus": ("OH", "432"),
    "Cleveland": ("OH", "441"),
    "Oklahoma City": ("OK", "731"),
    "Portland": ("OR", "972"),
    "Philadelphia": ("PA", "191"),
    "Pittsburgh": ("PA", "152"),
    "Providence": ("RI", "029"),
    "Charleston": ("SC", "294"),
    "Memphis": ("TN", "381"),
    "Nashville": ("TN", "372"),
    "Houston": ("TX", "770"),
    "Dallas": ("TX", "752"),
    "Austin": ("TX", "787"),
    "San Antonio": ("TX", "782"),
    "Salt Lake City": ("UT", "841"),
    "Richmond": ("VA", "232"),
    "Seattle": ("WA", "981"),
    "Milwaukee": ("WI", "532"),
}

STATES: tuple[str, ...] = tuple(sorted({v[0] for v in CITY_STATE.values()}))

COUNTRIES: tuple[str, ...] = (
    "United States", "China", "Germany", "Russia", "Brazil", "India",
    "United Kingdom", "France", "Italy", "Canada", "Japan", "Australia",
    "Spain", "Mexico", "South Korea", "Switzerland", "Sweden", "Turkey",
    "Saudi Arabia", "Indonesia",
)

INDUSTRIES: tuple[str, ...] = (
    "Technology", "Retail", "Finance", "Real Estate", "Energy",
    "Healthcare", "Media", "Manufacturing", "Telecom", "Food and Beverage",
    "Mining", "Transportation", "Fashion", "Entertainment", "Agriculture",
)

BEER_STYLES: tuple[str, ...] = (
    "American IPA", "American Pale Ale (APA)", "American Amber / Red Ale",
    "American Blonde Ale", "American Double / Imperial IPA",
    "American Porter", "American Stout", "Fruit / Vegetable Beer",
    "Hefeweizen", "Witbier", "Kolsch", "Saison / Farmhouse Ale",
    "American Brown Ale", "Oatmeal Stout", "Pilsner", "Cream Ale",
    "Scotch Ale / Wee Heavy", "English Brown Ale", "Vienna Lager",
    "Czech Pilsener", "Rye Beer", "Marzen / Oktoberfest",
)

BEER_WORDS: tuple[str, ...] = (
    "Hop", "River", "Golden", "Moon", "Iron", "Wolf", "Summer", "Winter",
    "Stone", "Cloud", "Fire", "Ghost", "Bear", "Eagle", "Copper", "Wild",
    "Old", "Red", "Black", "Blue", "Happy", "Lucky", "Grand", "Little",
    "Noble", "Royal", "Rustic", "Silent", "Smoky", "Velvet",
)

BEER_NOUNS: tuple[str, ...] = (
    "Trail", "Session", "Haze", "Drifter", "Anthem", "Harvest", "Ridge",
    "Valley", "Canyon", "Creek", "Hollow", "Summit", "Meadow", "Grove",
    "Lantern", "Compass", "Anchor", "Crown", "Forge", "Spark",
)

BREWERY_SUFFIXES: tuple[str, ...] = (
    "Brewing Company", "Brewery", "Brewing Co.", "Beer Company",
    "Craft Brewers", "Ales", "Brewhouse",
)

HOSPITAL_CONDITIONS: dict[str, tuple[str, ...]] = {
    # Condition -> measure codes (the Fig. 4 FD: MeasureCode determines
    # Condition via its prefix).
    "Surgical Infection Prevention": ("SCIP-CARD-2", "SCIP-INF-1",
                                      "SCIP-INF-2", "SCIP-INF-3",
                                      "SCIP-VTE-1", "SCIP-VTE-2"),
    "Heart Attack": ("AMI-1", "AMI-2", "AMI-3", "AMI-4", "AMI-5",
                     "AMI-7A", "AMI-8A"),
    "Pneumonia": ("PN-2", "PN-3B", "PN-4", "PN-5C", "PN-6", "PN-7"),
    "Heart Failure": ("HF-1", "HF-2", "HF-3", "HF-4"),
    "Children Asthma Care": ("CAC-1", "CAC-2", "CAC-3"),
}

MEASURE_NAMES: dict[str, str] = {
    "SCIP-CARD-2": "surgery patients on beta blocker therapy",
    "SCIP-INF-1": "prophylactic antibiotic within one hour",
    "SCIP-INF-2": "prophylactic antibiotic selection",
    "SCIP-INF-3": "antibiotics discontinued within 24 hours",
    "SCIP-VTE-1": "venous thromboembolism prophylaxis ordered",
    "SCIP-VTE-2": "venous thromboembolism prophylaxis received",
    "AMI-1": "aspirin at arrival",
    "AMI-2": "aspirin prescribed at discharge",
    "AMI-3": "ace inhibitor for lvsd",
    "AMI-4": "adult smoking cessation advice",
    "AMI-5": "beta blocker prescribed at discharge",
    "AMI-7A": "fibrinolytic therapy within 30 minutes",
    "AMI-8A": "primary pci within 90 minutes",
    "PN-2": "pneumococcal vaccination",
    "PN-3B": "blood cultures before antibiotic",
    "PN-4": "adult smoking cessation advice",
    "PN-5C": "initial antibiotic within 6 hours",
    "PN-6": "initial antibiotic selection",
    "PN-7": "influenza vaccination",
    "HF-1": "discharge instructions",
    "HF-2": "evaluation of lvs function",
    "HF-3": "ace inhibitor for lvsd",
    "HF-4": "adult smoking cessation advice",
    "CAC-1": "relievers for inpatient asthma",
    "CAC-2": "systemic corticosteroids for inpatient asthma",
    "CAC-3": "home management plan of care",
}

HOSPITAL_TYPES: tuple[str, ...] = (
    "Acute Care Hospitals", "Critical Access Hospitals",
    "Childrens Hospitals",
)

HOSPITAL_OWNERS: tuple[str, ...] = (
    "Government - Hospital District or Authority", "Government - Local",
    "Government - State", "Proprietary", "Voluntary non-profit - Church",
    "Voluntary non-profit - Private", "Voluntary non-profit - Other",
)

AIRLINES: tuple[str, ...] = ("AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9")

AIRPORTS: tuple[str, ...] = (
    "ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO",
    "EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL",
)

FLIGHT_SOURCES: tuple[str, ...] = (
    "aa", "airtravelcenter", "allegiantair", "boston", "businesstravellogue",
    "CO", "den", "dfw", "flightarrival", "flightaware", "flightexplorer",
    "flights", "flightstats", "flightview", "flightwise", "flylouisville",
    "foxbusiness", "gofox", "helloflight", "iad", "ifly", "mco", "mia",
    "myrateplan", "mytripandmore", "orbitz", "ord", "panynj", "phl", "quicktrip",
    "sfo", "travelocity", "ua", "usatoday", "weather", "world-flight-tracker",
    "wunderground",
)

JOURNALS: tuple[str, ...] = (
    "Journal of Clinical Epidemiology", "The Lancet", "BMJ",
    "Annals of Internal Medicine", "Cochrane Database of Systematic Reviews",
    "JAMA", "New England Journal of Medicine", "PLOS ONE",
    "Systematic Reviews", "Journal of Medical Internet Research",
    "BMC Medicine", "Health Technology Assessment", "Trials",
    "International Journal of Epidemiology", "Clinical Trials",
)

LANGUAGES: tuple[str, ...] = (
    "English", "French", "German", "Spanish", "Chinese", "Japanese",
    "Portuguese", "Italian", "Russian", "Korean",
)

MOVIE_GENRES: tuple[str, ...] = (
    "Drama", "Comedy", "Action", "Thriller", "Romance", "Horror",
    "Adventure", "Crime", "Science Fiction", "Documentary", "Animation",
    "Fantasy", "Mystery", "Western", "Musical",
)

MOVIE_WORDS: tuple[str, ...] = (
    "Midnight", "Silent", "Broken", "Golden", "Final", "Lost", "Hidden",
    "Eternal", "Crimson", "Savage", "Gentle", "Burning", "Frozen",
    "Distant", "Secret", "Shattered", "Rising", "Falling", "Endless",
)

MOVIE_NOUNS: tuple[str, ...] = (
    "Horizon", "Echo", "Empire", "Garden", "Journey", "Promise", "Shadow",
    "Storm", "Summer", "River", "Dream", "Memory", "Kingdom", "Harbor",
    "Letter", "Road", "Mirror", "Island", "Voyage", "Whisper",
)

COMPANY_WORDS: tuple[str, ...] = (
    "Global", "United", "Pacific", "Atlas", "Vertex", "Pioneer", "Summit",
    "Quantum", "Sterling", "Beacon", "Cascade", "Meridian", "Polaris",
    "Vanguard", "Zenith", "Apex", "Nova", "Orion", "Titan", "Aurora",
)

COMPANY_SUFFIXES: tuple[str, ...] = (
    "Holdings", "Group", "Industries", "Capital", "Partners", "Corp",
    "Enterprises", "Ventures", "Technologies", "International",
)

MARITAL_STATUSES: tuple[str, ...] = ("S", "M", "D", "W")

EDUCATION_LEVELS: tuple[str, ...] = (
    "High School", "Bachelor", "Master", "PhD", "Associate",
)
