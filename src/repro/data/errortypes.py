"""Error taxonomy shared across the library.

The paper evaluates five error types (Table II / Fig. 11): missing
values (MV), typos (T), pattern violations (PV), outliers (O), and rule
violations (RV).  ``MIXED`` labels cells that accumulated several kinds
of corruption in the mixed-error scenario of Fig. 11.
"""

from __future__ import annotations

import enum


class ErrorType(enum.Enum):
    """One of the paper's five tabular error types (plus MIXED)."""

    MISSING = "missing_value"
    TYPO = "typo"
    PATTERN = "pattern_violation"
    OUTLIER = "outlier"
    RULE = "rule_violation"
    MIXED = "mixed"

    @property
    def short(self) -> str:
        """Paper-style abbreviation (MV / T / PV / O / RV / ME)."""
        return _SHORT[self]


_SHORT = {
    ErrorType.MISSING: "MV",
    ErrorType.TYPO: "T",
    ErrorType.PATTERN: "PV",
    ErrorType.OUTLIER: "O",
    ErrorType.RULE: "RV",
    ErrorType.MIXED: "ME",
}

#: Placeholders that count as explicit/implicit missing values.
MISSING_PLACEHOLDERS: tuple[str, ...] = (
    "",
    "NULL",
    "null",
    "N/A",
    "n/a",
    "NA",
    "-",
    "?",
    "unknown",
    "missing",
)


_PLACEHOLDERS_LOWER = frozenset(p.lower() for p in MISSING_PLACEHOLDERS)


def is_missing_placeholder(value: str) -> bool:
    """True if ``value`` is an explicit or implicit missing marker.

    Matching is case-insensitive ('NA', 'na', 'Null' all count).
    """
    stripped = value.strip()
    return not stripped or stripped.lower() in _PLACEHOLDERS_LOWER
