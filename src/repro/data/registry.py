"""Dataset registry: look up benchmark datasets by name."""

from __future__ import annotations

from repro.data.generators import (
    BEERS,
    BILLIONAIRE,
    FLIGHTS,
    HOSPITAL,
    MOVIES,
    RAYYAN,
    TAX,
)
from repro.data.generators.base import DatasetSpec
from repro.data.injector import ErrorProfile, InjectionResult
from repro.errors import ConfigError
from repro.ml.rng import RngLike

_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (HOSPITAL, FLIGHTS, BEERS, RAYYAN, BILLIONAIRE, MOVIES, TAX)
}

#: The six datasets used in Table III / IV / V comparisons.
COMPARISON_DATASETS: tuple[str, ...] = (
    "hospital", "flights", "beers", "rayyan", "billionaire", "movies",
)


def dataset_names() -> list[str]:
    """All registered dataset names, sorted."""
    return sorted(_REGISTRY)


def get_dataset(name: str) -> DatasetSpec:
    """Fetch a dataset spec by name; raises ConfigError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def make_dataset(
    name: str,
    n_rows: int | None = None,
    seed: RngLike = 0,
    profile: ErrorProfile | None = None,
) -> InjectionResult:
    """Generate a dirty dataset (with ground truth) by name."""
    return get_dataset(name).make(n_rows=n_rows, seed=seed, profile=profile)
