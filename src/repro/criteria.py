"""Compilation and execution of LLM-generated error-checking criteria.

The LLM emits criteria as Python *source strings* (Fig. 4).  This
module turns them into safe callables and evaluates them over tables:

* compilation runs in a restricted namespace (fresh builtins, no
  access to the caller's globals);
* execution failures count as "not clean" for hard failures and are
  capped — a criterion that raises everywhere is clearly broken and is
  marked invalid;
* per-value caching exploits ``context_attrs`` metadata: a criterion
  that reads only ``row[attr]`` is evaluated once per distinct value,
  which keeps the 200k-row Tax workload tractable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.errors import CriteriaError

_ALLOWED_IMPORT_ROOTS = {
    "re", "math", "string", "datetime", "collections", "itertools",
    "functools", "statistics",
}


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in _ALLOWED_IMPORT_ROOTS:
        raise ImportError(f"import of {name!r} not allowed in criteria code")
    return __import__(name, globals, locals, fromlist, level)


def compile_function(source: str, name: str):
    """Compile ``source`` and return the function called ``name``."""
    import builtins as _builtins

    safe_builtins = {
        k: getattr(_builtins, k)
        for k in (
            "abs", "all", "any", "bool", "dict", "enumerate", "float",
            "int", "len", "list", "max", "min", "range", "round", "set",
            "sorted", "str", "sum", "tuple", "zip", "isinstance", "repr",
            "ValueError", "TypeError", "IndexError", "KeyError",
            "Exception", "ImportError", "AttributeError", "ZeroDivisionError",
        )
    }
    safe_builtins["__import__"] = _restricted_import
    namespace: dict = {"__builtins__": safe_builtins}
    try:
        exec(compile(source, f"<criterion:{name}>", "exec"), namespace)
    except SyntaxError as exc:
        raise CriteriaError(f"criterion {name!r} failed to compile: {exc}") from exc
    fn = namespace.get(name)
    if not callable(fn):
        raise CriteriaError(f"criterion source does not define {name!r}")
    return fn


@dataclass
class Criterion:
    """One compiled error-checking criterion for a specific attribute."""

    attr: str
    name: str
    source: str
    context_attrs: list[str] = field(default_factory=list)
    _fn: object = None
    _cache: dict = field(default_factory=dict, repr=False)
    _failures: int = 0
    max_failures: int = 50

    @classmethod
    def from_spec(cls, attr: str, spec: Mapping) -> "Criterion":
        """Build from the LLM's ``{name, source, context_attrs}`` dict."""
        crit = cls(
            attr=attr,
            name=str(spec["name"]),
            source=str(spec["source"]),
            context_attrs=list(spec.get("context_attrs", [])),
        )
        crit._fn = compile_function(crit.source, crit.name)
        return crit

    @property
    def is_broken(self) -> bool:
        """True once the criterion exceeded its runtime failure budget."""
        return self._failures > self.max_failures

    def check(self, row: Mapping[str, str]) -> bool:
        """Evaluate on one row; runtime errors count as 'not clean'."""
        key = (row.get(self.attr, ""),) + tuple(
            row.get(a, "") for a in self.context_attrs
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            result = bool(self._fn(dict(row), self.attr))
        except Exception:
            self._failures += 1
            result = False
        if len(self._cache) < 500_000:
            self._cache[key] = result
        return result

    def evaluate_column(self, table: Table) -> np.ndarray:
        """Boolean pass-vector for this criterion over every row."""
        n = table.n_rows
        out = np.empty(n, dtype=bool)
        value_col = table.column_view(self.attr)
        context_cols = [table.column_view(a) for a in self.context_attrs
                        if a in table.attributes]
        context_names = [a for a in self.context_attrs if a in table.attributes]
        for i in range(n):
            row = {self.attr: value_col[i]}
            for name, col in zip(context_names, context_cols):
                row[name] = col[i]
            out[i] = self.check(row)
        return out

    def accuracy_on(self, rows: Sequence[Mapping[str, str]]) -> float:
        """Fraction of ``rows`` this criterion accepts (pass rate)."""
        if not rows:
            return 0.0
        passed = sum(1 for row in rows if self.check(row))
        return passed / len(rows)


def compile_criteria(attr: str, specs: Sequence[Mapping]) -> list[Criterion]:
    """Compile a list of LLM criterion specs, skipping broken sources."""
    out = []
    for spec in specs:
        try:
            out.append(Criterion.from_spec(attr, spec))
        except CriteriaError:
            continue  # a real LLM also emits the occasional broken function
    return out
