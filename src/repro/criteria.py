"""Compilation and execution of LLM-generated error-checking criteria.

The LLM emits criteria as Python *source strings* (Fig. 4).  This
module turns them into safe callables and evaluates them over tables:

* compilation runs in a restricted namespace (fresh builtins, no
  access to the caller's globals);
* execution failures count as "not clean" for hard failures and are
  capped — a criterion that raises everywhere is clearly broken and is
  marked invalid;
* per-value caching exploits ``context_attrs`` metadata: a criterion
  that reads only ``row[attr]`` is evaluated once per distinct value,
  which keeps the 200k-row Tax workload tractable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.encoding import fold_codes
from repro.data.table import Table
from repro.errors import CriteriaError

_ALLOWED_IMPORT_ROOTS = {
    "re", "math", "string", "datetime", "collections", "itertools",
    "functools", "statistics",
}


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in _ALLOWED_IMPORT_ROOTS:
        raise ImportError(f"import of {name!r} not allowed in criteria code")
    return __import__(name, globals, locals, fromlist, level)


def compile_function(source: str, name: str):
    """Compile ``source`` and return the function called ``name``."""
    import builtins as _builtins

    safe_builtins = {
        k: getattr(_builtins, k)
        for k in (
            "abs", "all", "any", "bool", "dict", "enumerate", "float",
            "int", "len", "list", "max", "min", "range", "round", "set",
            "sorted", "str", "sum", "tuple", "zip", "isinstance", "repr",
            "ValueError", "TypeError", "IndexError", "KeyError",
            "Exception", "ImportError", "AttributeError", "ZeroDivisionError",
        )
    }
    safe_builtins["__import__"] = _restricted_import
    namespace: dict = {"__builtins__": safe_builtins}
    try:
        exec(compile(source, f"<criterion:{name}>", "exec"), namespace)
    except SyntaxError as exc:
        raise CriteriaError(f"criterion {name!r} failed to compile: {exc}") from exc
    fn = namespace.get(name)
    if not callable(fn):
        raise CriteriaError(f"criterion source does not define {name!r}")
    return fn


@dataclass
class Criterion:
    """One compiled error-checking criterion for a specific attribute."""

    attr: str
    name: str
    source: str
    context_attrs: list[str] = field(default_factory=list)
    _fn: object = None
    _cache: dict = field(default_factory=dict, repr=False)
    _failures: int = 0
    max_failures: int = 50

    @classmethod
    def from_spec(cls, attr: str, spec: Mapping) -> "Criterion":
        """Build from the LLM's ``{name, source, context_attrs}`` dict."""
        crit = cls(
            attr=attr,
            name=str(spec["name"]),
            source=str(spec["source"]),
            context_attrs=list(spec.get("context_attrs", [])),
        )
        crit._fn = compile_function(crit.source, crit.name)
        return crit

    @property
    def is_broken(self) -> bool:
        """True once the criterion exceeded its runtime failure budget."""
        return self._failures > self.max_failures

    def _row_key(self, row: Mapping[str, str]) -> tuple:
        return (row.get(self.attr, ""),) + tuple(
            row.get(a, "") for a in self.context_attrs
        )

    def _check_consumable(self, row: dict, key: tuple) -> bool:
        """Cached evaluation of a row dict the criterion may mutate."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            result = bool(self._fn(row, self.attr))
        except Exception:
            self._failures += 1
            result = False
        if len(self._cache) < 500_000:
            self._cache[key] = result
        return result

    def check(self, row: Mapping[str, str]) -> bool:
        """Evaluate on one row; runtime errors count as 'not clean'."""
        return self._check_consumable(dict(row), self._row_key(row))

    def evaluate_column(self, table: Table) -> np.ndarray:
        """Boolean pass-vector for this criterion over every row.

        The criterion is a pure function of ``row[attr]`` and the
        ``context_attrs`` cells, so it runs once per distinct
        value-combination (found via the table's interned column codes)
        and the verdicts are scattered back to rows with one gather.
        """
        value_col = table.column_view(self.attr)
        context_names = [a for a in self.context_attrs if a in table.attributes]
        context_cols = [table.column_view(a) for a in context_names]
        # One int64 key per row for the (value, context...) combo; 1-D
        # np.unique over the fold is much cheaper than an axis=0
        # lexsort (fold_codes falls back to one only when the combined
        # cardinality overflows int64).
        key = fold_codes(
            [table.encoding(self.attr)]
            + [table.encoding(a) for a in context_names]
        )
        _, first_rows, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        # Each row dict built here is fresh and discarded, so it can go
        # to the compiled function without `check`'s defensive copy.
        verdicts = np.empty(len(first_rows), dtype=bool)
        for j, i in enumerate(first_rows.tolist()):
            row = {self.attr: value_col[i]}
            for name, col in zip(context_names, context_cols):
                row[name] = col[i]
            verdicts[j] = self._check_consumable(row, self._row_key(row))
        return verdicts[inverse]

    def evaluate_rows(
        self,
        table: Table,
        row_indices: Sequence[int] | np.ndarray,
        context: Sequence[str] = (),
    ) -> np.ndarray:
        """Boolean pass-vector over ``row_indices`` (aligned with them).

        The vectorized form of calling :meth:`check` on
        ``{attr: cell, q: cell for q in context}`` dicts row by row:
        the unique-combo fold of :meth:`evaluate_column` restricted to
        the given rows.  The cache key only involves ``attr`` and the
        ``context_attrs`` present among ``context``, so the criterion
        runs once per distinct key — on the key's *first* row in
        ``row_indices`` order, with the full context dict, exactly the
        row the per-row loop's first cache miss would have evaluated —
        and shares its verdict cache with every other entry point.
        """
        idx = np.asarray(row_indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        value_col = table.column_view(self.attr)
        context_names = [q for q in context if q != self.attr]
        context_cols = {a: table.column_view(a) for a in context_names}
        # Only columns that feed `_row_key` partition the rows; context
        # attrs absent from the row dicts contribute a constant "".
        key_names = [a for a in self.context_attrs if a in context_cols]
        key = fold_codes(
            [table.encoding(self.attr)]
            + [table.encoding(a) for a in key_names],
            row_indices=idx,
        )
        _, first_pos, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        verdicts = np.empty(len(first_pos), dtype=bool)
        for j, p in enumerate(first_pos.tolist()):
            i = int(idx[p])
            row = {self.attr: value_col[i]}
            for name, col in context_cols.items():
                row[name] = col[i]
            verdicts[j] = self._check_consumable(row, self._row_key(row))
        return verdicts[inverse]

    def evaluate_values(
        self,
        values: Sequence[str],
        rows: Sequence[Mapping[str, str]],
    ) -> np.ndarray:
        """Boolean pass-vector for ad-hoc ``(value, row-context)`` pairs.

        The batch form of calling :meth:`check` on ``{**row, attr:
        value}`` pair by pair — the :meth:`evaluate_column` unique-combo
        fold applied to *ad-hoc* values (augmented training examples),
        where no interned codes exist so the fold groups on the string
        key itself.  The criterion runs once per distinct ``(value,
        context...)`` key — on the key's first pair in input order, the
        pair the per-value loop's first cache miss would have evaluated
        — and shares its verdict cache with every other entry point, so
        the scattered verdicts are bit-identical to the per-value loop.
        """
        if len(values) != len(rows):
            raise CriteriaError("values and rows must align")
        # Keys are built inline from (value, context cells) — the same
        # tuple ``_row_key`` would produce for ``{**row, attr: value}``
        # — so the per-pair cost is one tuple, not a dict copy; the
        # full context dict is only materialised for each key's first
        # pair (the one actually evaluated).  The no-context and
        # single-context shapes cover nearly every LLM-emitted
        # criterion, so they skip the inner generator.
        attr = self.attr
        ctx = self.context_attrs
        if not ctx:
            keys = [(value,) for value in values]
        elif len(ctx) == 1 and ctx[0] != attr:
            a0 = ctx[0]
            keys = [
                (value, row.get(a0, ""))
                for value, row in zip(values, rows)
            ]
        else:
            keys = [
                (value,)
                + tuple(
                    value if a == attr else row.get(a, "") for a in ctx
                )
                for value, row in zip(values, rows)
            ]
        inverse = np.empty(len(values), dtype=np.intp)
        slots: dict[tuple, int] = {}
        firsts: list[int] = []
        for pos, key in enumerate(keys):
            slot = slots.get(key)
            if slot is None:
                slot = len(firsts)
                slots[key] = slot
                firsts.append(pos)
            inverse[pos] = slot
        verdicts = np.empty(len(firsts), dtype=bool)
        for j, pos in enumerate(firsts):
            # Fresh dicts built here, so no defensive copy is needed
            # before handing them to the compiled function.
            context = dict(rows[pos])
            context[attr] = values[pos]
            verdicts[j] = self._check_consumable(context, keys[pos])
        return verdicts[inverse]

    def accuracy_on(self, rows: Sequence[Mapping[str, str]]) -> float:
        """Fraction of ``rows`` this criterion accepts (pass rate)."""
        if not rows:
            return 0.0
        passed = sum(1 for row in rows if self.check(row))
        return passed / len(rows)


def compile_criteria(attr: str, specs: Sequence[Mapping]) -> list[Criterion]:
    """Compile a list of LLM criterion specs, skipping broken sources."""
    out = []
    for spec in specs:
        try:
            out.append(Criterion.from_spec(attr, spec))
        except CriteriaError:
            continue  # a real LLM also emits the occasional broken function
    return out
