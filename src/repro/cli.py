"""Command-line interface for the repro package.

Subcommands::

    repro datasets                       list benchmark datasets
    repro generate beers out/ [--rows N] write dirty/clean/mask to disk
    repro detect beers [--method zeroed] run a detector, print P/R/F1
    repro detect-csv dirty.csv           detect on your own CSV
    repro fit beers --artifact-out art/  train once, persist the detector
    repro fit --csv big.csv --sample-rows 5000 --artifact-out art/
                                         out-of-core fit on a reservoir sample
    repro score-csv new.csv --artifact art/   warm-score unseen rows
    repro score-csv big.csv --artifact art/ --chunk-rows 50000
                                         stream-score shard-by-shard
    repro serve --artifact art/          HTTP scoring service
    repro compare [--datasets a,b] ...   Table III-style grid
    repro repair beers                   detect then suggest repairs

Run ``python -m repro <command> -h`` for per-command options.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import METHODS, format_table, run_method
from repro.config import (
    DETECTOR_ENGINE_CHOICES,
    SAMPLING_ENGINE_CHOICES,
    ZeroEDConfig,
)
from repro.core.pipeline import ZeroED
from repro.core.repair import RepairSuggester
from repro.data.csvio import read_csv
from repro.data.maskio import write_dataset, write_mask
from repro.errors import ReproError, error_code
from repro.data.registry import COMPARISON_DATASETS, dataset_names, get_dataset


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=None,
                        help="row count (default: Table II size)")
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_flags(
    parser: argparse.ArgumentParser, *, engines: bool = True
) -> None:
    """The shared execution flags (one definition, every subcommand).

    ``--sampling-engine`` / ``--detector-engine`` / ``--jobs`` used to
    be duplicated (with drifting help text) between ``detect`` and
    ``detect-csv``; ``fit``, ``repair`` and — jobs only, its engines
    come from the artifact — ``score-csv`` reuse them too.
    """
    if engines:
        parser.add_argument(
            "--sampling-engine", default="exact",
            choices=SAMPLING_ENGINE_CHOICES,
            help="Step-2 clustering engine: 'exact' (reproducible "
                 "reference masks), 'fast' (mini-batch k-means, >=5x "
                 "faster on 10k+ rows, masks may shift within the "
                 "recorded tolerance band), or 'auto' (fast at >=2k "
                 "rows, exact below)")
        parser.add_argument(
            "--detector-engine", default="exact",
            choices=DETECTOR_ENGINE_CHOICES,
            help="Step-4 MLP engine: 'exact' (float64, reproducible "
                 "reference masks), 'fast' (float32 train/predict over "
                 "unique feature rows, masks may shift within the "
                 "recorded tolerance band), or 'auto' (fast at >=2k "
                 "rows, exact below)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker threads for the per-attribute stages (sampling, "
             "verification+assembly, detector train/predict, scoring); "
             "-1 = one per CPU core; masks are byte-identical for "
             "every value (default: 1)")


def _add_zeroed_flags(parser: argparse.ArgumentParser) -> None:
    """The common ZeroED model knobs (LLM profile + label budget)."""
    parser.add_argument("--llm", default="qwen2.5-72b", help="LLM profile")
    parser.add_argument("--label-rate", type=float, default=0.05)
    _add_resilience_flags(parser)


def _add_obs_flags(
    parser: argparse.ArgumentParser, *, tracing: bool = True
) -> None:
    """The shared telemetry flags (span tracing + structured logs)."""
    group = parser.add_argument_group("telemetry")
    if tracing:
        group.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="record every pipeline span and write a Chrome "
                 "trace-event JSON file (load it in Perfetto or "
                 "chrome://tracing); tracing is off by default and "
                 "observe-only — masks are byte-identical either way")
    group.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON-lines logs on stderr, each line "
             "carrying the trace/request ids for correlation")
    group.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="log verbosity (debug/info/warning/error/critical); "
             "implies logging output even without --log-json "
             "(default: logging stays off)")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance knobs of the LLM phase (resilience layer)."""
    group = parser.add_argument_group("LLM fault tolerance")
    group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per LLM call beyond the first attempt "
             "(default: 2; 0 disables retrying)")
    group.add_argument(
        "--llm-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock bound on each LLM call "
             "(default: trust the client's transport timeout)")
    group.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="consecutive failed attempts that open the circuit "
             "breaker (default: 10; 0 disables the breaker)")
    group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist every LLM response under DIR so an interrupted "
             "fit resumes without re-spending tokens")
    group.add_argument(
        "--no-degrade", action="store_true",
        help="fail the fit on the first attribute whose LLM calls "
             "exhaust their retries, instead of falling back to "
             "pattern/frequency-only detection for that attribute")


def _zeroed_config(args) -> ZeroEDConfig:
    """A ZeroEDConfig from the shared flag set."""
    resilience = {}
    if getattr(args, "retries", None) is not None:
        resilience["llm_max_retries"] = args.retries
    if getattr(args, "llm_timeout", None) is not None:
        resilience["llm_timeout_s"] = args.llm_timeout
    if getattr(args, "breaker_threshold", None) is not None:
        resilience["llm_breaker_threshold"] = args.breaker_threshold
    if getattr(args, "checkpoint_dir", None):
        resilience["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "no_degrade", False):
        resilience["degrade_on_failure"] = False
    return ZeroEDConfig(
        seed=args.seed,
        llm_model=getattr(args, "llm", "qwen2.5-72b"),
        label_rate=getattr(args, "label_rate", 0.05),
        sampling_engine=args.sampling_engine,
        detector_engine=args.detector_engine,
        n_jobs=args.jobs,
        trace_out=getattr(args, "trace_out", None),
        log_json=getattr(args, "log_json", False),
        log_level=getattr(args, "log_level", None),
        **resilience,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZeroED reproduction: zero-shot tabular error detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets")

    p = sub.add_parser("generate", help="write a dataset to a directory")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("out", help="output directory")
    _add_common(p)

    p = sub.add_parser("detect", help="run a detector on a benchmark")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("--method", default="zeroed", choices=METHODS)
    _add_zeroed_flags(p)
    _add_engine_flags(p)
    _add_obs_flags(p)
    p.add_argument("--mask-out", default=None,
                   help="write the predicted mask JSON here")
    _add_common(p)

    p = sub.add_parser("detect-csv", help="run ZeroED on your own CSV")
    p.add_argument("csv", help="path to a dirty CSV file")
    _add_zeroed_flags(p)
    _add_engine_flags(p)
    _add_obs_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mask-out", default=None)

    p = sub.add_parser(
        "fit",
        help="train ZeroED once and persist the detector artifact",
    )
    p.add_argument("dataset", nargs="?", choices=dataset_names(),
                   help="benchmark dataset to fit on (or use --csv)")
    p.add_argument("--csv", default=None,
                   help="fit on your own dirty CSV instead of a benchmark")
    p.add_argument("--artifact-out", required=True,
                   help="directory for the saved detector artifact "
                        "(manifest.json + arrays.npz)")
    p.add_argument("--sample-rows", type=int, default=None, metavar="N",
                   help="fit on a seeded reservoir sample of N rows "
                        "drawn in one streaming pass (out-of-core for "
                        "--csv sources); the artifact records the "
                        "sample provenance and still scores full "
                        "tables chunk-by-chunk")
    _add_zeroed_flags(p)
    _add_engine_flags(p)
    _add_obs_flags(p)
    _add_common(p)

    p = sub.add_parser(
        "score-csv",
        help="score a CSV with a fitted artifact (no LLM, no sampling)",
    )
    p.add_argument("csv", help="path to the CSV to score")
    p.add_argument("--artifact", required=True,
                   help="detector artifact directory written by "
                        "'repro fit --artifact-out'")
    _add_engine_flags(p, engines=False)
    _add_obs_flags(p)
    p.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                   help="stream the CSV in shards of N rows instead of "
                        "loading it whole — bounded memory for "
                        "arbitrarily large files; the mask is "
                        "byte-identical to the in-memory path")
    p.add_argument("--manifest-out", default=None, metavar="PATH",
                   help="write the streaming scoring manifest (per-"
                        "shard row offsets + SHA-256 mask checksums) "
                        "as JSON; implies chunked scoring")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="journal every completed shard under DIR "
                        "(mask bytes + checksums under the job's "
                        "fingerprint) so a killed run can be resumed; "
                        "implies chunked scoring")
    p.add_argument("--resume", action="store_true",
                   help="replay the journal's verified shards instead "
                        "of re-scoring them and continue from the "
                        "first incomplete shard (requires "
                        "--journal-dir; the final mask is byte-"
                        "identical to an uninterrupted run)")
    p.add_argument("--bad-rows", default=None,
                   choices=("fail", "quarantine"),
                   help="malformed-row policy: 'fail' stops on the "
                        "first row wider than the header (default); "
                        "'quarantine' records offenders in a JSONL "
                        "sidecar and scores the rest")
    p.add_argument("--quarantine-out", default=None, metavar="PATH",
                   help="sidecar path for quarantined rows (default: "
                        "<csv>.quarantine.jsonl)")
    p.add_argument("--mask-out", default=None)

    p = sub.add_parser(
        "serve",
        help="HTTP scoring service over a fitted artifact",
    )
    p.add_argument("--artifact", required=True, action="append",
                   help="detector artifact directory to serve; repeat "
                        "the flag to host several fitted datasets "
                        "behind one port (the first is the default "
                        "tenant; /score routes by fingerprint/dataset)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8537,
                   help="listen port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="scoring worker processes; 0 (default) scores "
                        "in-process, N fans micro-batches to N "
                        "processes with byte-identical masks")
    p.add_argument("--registry-budget-mb", type=float, default=None,
                   metavar="MB",
                   help="memory budget for resident artifacts in "
                        "multi-artifact mode; least-recently-used "
                        "tenants are evicted and reload on demand "
                        "(default: unbounded)")
    p.add_argument("--read-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="socket read deadline per request; a stalled "
                        "client is disconnected (default: 30)")
    p.add_argument("--max-body-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="request-body cap; larger /score payloads get "
                        "HTTP 413 (default: 8 MiB)")
    p.add_argument("--max-queue-rows", type=int, default=None,
                   metavar="N",
                   help="admission cap: rows allowed to wait for a "
                        "micro-batch before new requests are shed "
                        "with HTTP 503 + Retry-After (default: 16384)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-request deadline; a request still "
                        "unscored when it expires gets HTTP 504 "
                        "(default: none beyond the 120s request "
                        "timeout)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="on SIGTERM: stop admitting (503), wait up to "
                        "this long for queued work to finish, then "
                        "exit (default: 30)")
    _add_engine_flags(p, engines=False)
    # A long-running server would grow an unbounded span list; serve
    # gets the structured-log flags only (scrape /metrics for numbers).
    _add_obs_flags(p, tracing=False)

    p = sub.add_parser("compare", help="method x dataset comparison grid")
    p.add_argument("--datasets", default=",".join(COMPARISON_DATASETS))
    p.add_argument("--methods", default=",".join(METHODS))
    _add_common(p)

    p = sub.add_parser("repair", help="detect then suggest repairs")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("--limit", type=int, default=20,
                   help="show at most this many suggestions")
    p.add_argument("--artifact", default=None,
                   help="reuse a fitted detector artifact for the "
                        "detection pass instead of refitting")
    _add_zeroed_flags(p)
    _add_engine_flags(p)
    _add_obs_flags(p)
    _add_common(p)
    return parser


def cmd_datasets(_args) -> int:
    for name in dataset_names():
        spec = get_dataset(name)
        print(f"{name:12s} {spec.default_rows:>7d} rows x "
              f"{len(spec.make(n_rows=2, seed=0).dirty.attributes)} attrs")
    return 0


def cmd_generate(args) -> int:
    data = get_dataset(args.dataset).make(n_rows=args.rows, seed=args.seed)
    out = write_dataset(data, args.out)
    print(f"wrote {data.dirty.n_rows} rows "
          f"({data.mask.error_count()} error cells) to {out}/")
    return 0


def cmd_detect(args) -> int:
    config = _zeroed_config(args)
    run = run_method(
        args.method, args.dataset, n_rows=args.rows, seed=args.seed,
        llm_model=args.llm, zeroed_config=config,
    )
    print(f"{args.method} on {args.dataset}: {run.prf} "
          f"({run.seconds:.1f}s, tokens {run.input_tokens}/{run.output_tokens})")
    if args.mask_out and run.result is not None:
        write_mask(run.result.mask, args.mask_out)
        print(f"mask written to {args.mask_out}")
    return 0


def cmd_detect_csv(args) -> int:
    table = read_csv(args.csv)
    result = ZeroED(_zeroed_config(args)).detect(table)
    n = result.mask.error_count()
    print(f"flagged {n} cells "
          f"({100 * result.mask.error_rate():.2f}% of {table.shape})")
    for i, attr in result.mask.error_cells()[:20]:
        print(f"  ({i}, {attr}) -> {table.cell(i, attr)!r}")
    if args.mask_out:
        write_mask(result.mask, args.mask_out)
        print(f"mask written to {args.mask_out}")
    return 0


def cmd_fit(args) -> int:
    if (args.dataset is None) == (args.csv is None):
        print("fit needs exactly one of: a dataset name, or --csv",
              file=sys.stderr)
        return 2
    config = _zeroed_config(args)
    if args.sample_rows is not None:
        import dataclasses

        config = dataclasses.replace(config, sample_rows=args.sample_rows)
    sample = None
    if args.csv is not None:
        if args.sample_rows is not None and args.rows is None:
            # Out-of-core: one streaming reservoir pass over the file,
            # never materializing it whole (ZeroED.fit then sees a
            # table already within budget and fits it directly).
            from repro.serving.streaming import reservoir_sample_csv

            sample = reservoir_sample_csv(
                args.csv, args.sample_rows, seed=args.seed
            )
            table = sample.table
        else:
            table = read_csv(args.csv)
            if args.rows is not None:
                table = table.head(args.rows)
    else:
        table = get_dataset(args.dataset).make(
            n_rows=args.rows, seed=args.seed
        ).dirty
    fitted = ZeroED(config).fit(table)
    if sample is not None and sample.table.n_rows < sample.total_rows:
        # The fit saw a pre-drawn sample; carry its provenance into
        # the artifact manifest exactly as an in-memory sampled fit
        # would.
        fitted.details["sample"] = sample.provenance()
    prov = fitted.details.get("sample")
    if prov:
        print(f"fitted on a reservoir sample: {prov['sampled_rows']} of "
              f"{prov['source_rows']} rows (seed {prov['seed']})")
    degraded = fitted.details.get("degraded_attrs") or {}
    if degraded:
        print(f"warning: {len(degraded)} attribute(s) fell back to "
              f"statistical signals after exhausted LLM retries: "
              f"{', '.join(sorted(degraded))}", file=sys.stderr)
    path = fitted.save(args.artifact_out)
    ledger = fitted.ledger_summary
    print(f"fitted on {table.name} ({table.n_rows} rows x "
          f"{table.n_attributes} attrs; {ledger['requests']} LLM requests, "
          f"tokens {ledger['input_tokens']}/{ledger['output_tokens']})")
    print(f"artifact written to {path}/")
    return 0


def cmd_score_csv(args) -> int:
    from repro.errors import DataError
    from repro.serving.scorer import BatchScorer

    if args.resume and args.journal_dir is None:
        raise DataError("--resume requires --journal-dir")
    scorer = BatchScorer.from_artifact(args.artifact, n_jobs=args.jobs)
    chunked = (
        args.chunk_rows is not None
        or args.manifest_out is not None
        or args.journal_dir is not None
    )
    if chunked:
        # Out-of-core path: stream the file shard-by-shard; the mask
        # is byte-identical to the in-memory path below.
        result = scorer.score_csv(
            args.csv,
            chunk_rows=args.chunk_rows,
            n_jobs=args.jobs,
            journal_dir=args.journal_dir,
            resume=args.resume,
            bad_rows=args.bad_rows,
            quarantine_path=args.quarantine_out,
        )
        mask = result.mask
        print(f"flagged {mask.error_count()} cells "
              f"({100 * mask.error_rate():.2f}% of {mask.n_rows} rows) "
              f"in {result.seconds:.2f}s "
              f"({len(result.shards)} shards x <={result.chunk_rows} rows, "
              f"{result.rows_per_s:.0f} rows/s), zero LLM calls")
        resumed = result.details.get("resumed_shards")
        if resumed:
            print(f"resumed from the journal: {resumed} shard(s) "
                  f"replayed without re-scoring")
        elif args.resume and result.details.get("journal_invalidated"):
            print("journal invalidated (artifact, source or shard size "
                  "changed); re-scored from shard 0", file=sys.stderr)
        quarantined = result.details.get("quarantined_rows")
        if quarantined:
            print(f"quarantined {quarantined} malformed row(s) to "
                  f"{result.details['quarantine_path']}", file=sys.stderr)
        if args.manifest_out:
            result.write_manifest(args.manifest_out)
            print(f"manifest written to {args.manifest_out}")
    else:
        table = read_csv(args.csv)
        result = scorer.score_table(table)
        mask = result.mask
        print(f"flagged {mask.error_count()} cells "
              f"({100 * mask.error_rate():.2f}% of {table.shape}) "
              f"in {result.total_seconds:.2f}s, zero LLM calls")
        for i, attr in mask.error_cells()[:20]:
            print(f"  ({i}, {attr}) -> {table.cell(i, attr)!r}")
    if args.mask_out:
        write_mask(mask, args.mask_out)
        print(f"mask written to {args.mask_out}")
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serving.service import ScoringService

    hardening = {}
    if args.read_timeout is not None:
        hardening["read_timeout_s"] = args.read_timeout
    if args.max_body_bytes is not None:
        hardening["max_body_bytes"] = args.max_body_bytes
    if args.max_queue_rows is not None:
        hardening["max_queue_rows"] = args.max_queue_rows
    if args.deadline is not None:
        hardening["deadline_s"] = args.deadline
    if args.workers:
        hardening["workers"] = args.workers
    artifacts = args.artifact
    if len(artifacts) > 1 or args.registry_budget_mb is not None:
        budget = (
            int(args.registry_budget_mb * 1024 * 1024)
            if args.registry_budget_mb is not None
            else None
        )
        service = ScoringService.from_artifacts(
            artifacts, budget_bytes=budget, n_jobs=args.jobs,
            host=args.host, port=args.port, **hardening,
        )
    else:
        service = ScoringService.from_artifact(
            artifacts[0], n_jobs=args.jobs, host=args.host,
            port=args.port, **hardening,
        )
    if args.workers:
        # Pay the per-worker artifact load before announcing readiness,
        # not on the first real request.
        service.warm_workers()
    info = service.scorer.info
    print(f"serving artifact for {info.get('dataset')!r} "
          f"({info.get('train_rows')} training rows) on {service.url}")
    if service.n_workers:
        print(f"scoring on {service.n_workers} worker process(es)")
    if service.registry is not None:
        resident = service.registry.snapshot()["resident"]
        names = ", ".join(
            repr(entry["dataset"]) for entry in resident
        )
        print(f"registry: {len(resident)} resident artifact(s): {names}")
    degraded = (info.get("resilience") or {}).get("degraded_attrs") or {}
    if degraded:
        print(f"note: {len(degraded)} attribute(s) were fitted degraded "
              f"(see GET /healthz): {', '.join(sorted(degraded))}")
    print("endpoints: POST /score  POST /reload  GET /healthz  "
          "GET /readyz  GET /metrics  GET /artifact  "
          "GET /artifact/arrays")

    def _on_sigterm(signum, frame) -> None:
        # drain() ends with stop(), whose server.shutdown() must not
        # run on the thread inside serve_forever — hand it off.
        print("\nSIGTERM: draining (new requests get 503)",
              file=sys.stderr)
        threading.Thread(
            target=service.drain, args=(args.drain_timeout,), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        service.stop()
    return 0


def cmd_compare(args) -> int:
    rows = []
    for dataset in args.datasets.split(","):
        for method in args.methods.split(","):
            run = run_method(
                method.strip(), dataset.strip(), n_rows=args.rows,
                seed=args.seed,
            )
            rows.append(run.as_row())
    print(format_table(
        rows, ["method", "dataset", "precision", "recall", "f1", "seconds"]
    ))
    return 0


def cmd_repair(args) -> int:
    data = get_dataset(args.dataset).make(n_rows=args.rows, seed=args.seed)
    if args.artifact:
        from repro.serving.scorer import BatchScorer

        scorer = BatchScorer.from_artifact(args.artifact, n_jobs=args.jobs)
        mask = scorer.score_table(data.dirty).mask
    else:
        mask = ZeroED(_zeroed_config(args)).detect(data.dirty).mask
    suggester = RepairSuggester(data.dirty)
    suggestions = suggester.suggest(mask)
    correct = sum(
        1 for s in suggestions
        if s.suggestion == data.clean.cell(s.row, s.attr)
    )
    print(f"{len(suggestions)} suggestions for "
          f"{mask.error_count()} flagged cells; "
          f"{correct} match the ground truth exactly")
    for s in suggestions[: args.limit]:
        print(f"  {s}")
    return 0


_COMMANDS = {
    "datasets": cmd_datasets,
    "generate": cmd_generate,
    "detect": cmd_detect,
    "detect-csv": cmd_detect_csv,
    "fit": cmd_fit,
    "score-csv": cmd_score_csv,
    "serve": cmd_serve,
    "compare": cmd_compare,
    "repair": cmd_repair,
}


def main(argv: list[str] | None = None) -> int:
    from repro import obs

    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    try:
        # One telemetry session around the whole command: spans from
        # every layer land in one trace, log lines share one config.
        # (ZeroED.fit opens its own session from the config; the
        # already-installed guard makes the inner one a no-op.)
        with obs.session(
            trace_out=trace_out,
            log_json=getattr(args, "log_json", False),
            log_level=getattr(args, "log_level", None),
        ):
            code = _COMMANDS[args.command](args)
        if trace_out is not None:
            print(f"trace written to {trace_out}")
        return code
    except ReproError as exc:
        # Library failures exit with a stable machine-readable JSON
        # line on stderr — the CLI twin of the service's error bodies
        # — never a raw traceback (a corrupt artifact or malformed CSV
        # is an operator problem, not a bug being reported).
        print(
            json.dumps({"error": str(exc), "code": error_code(exc)}),
            file=sys.stderr,
        )
        return 3


if __name__ == "__main__":
    sys.exit(main())
