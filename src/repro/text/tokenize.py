"""Tokenisation helpers for cell values.

The semantic feature of §III-B averages word embeddings over the tokens
of a cell value after stop-word removal.  Cell values in cleaning
benchmarks are short, mixed-format strings (names, codes, timestamps),
so the tokenizer splits on non-alphanumeric boundaries and camelCase.
"""

from __future__ import annotations

import re

# A compact English stop-word list; enough for short tabular values.
STOP_WORDS: frozenset[str] = frozenset(
    """a an and are as at be by for from has he in is it its of on or
    that the to was were will with this those these""".split()
)

_SPLIT_RE = re.compile(r"[^0-9a-zA-Z]+")
_CAMEL_RE = re.compile(r"(?<=[a-z])(?=[A-Z])")


def tokenize(value: str, remove_stop_words: bool = True) -> list[str]:
    """Split a cell value into lowercase tokens.

    Splits on punctuation/whitespace and camelCase boundaries, lowercases,
    and optionally drops stop words.  Returns ``[]`` for empty values.
    """
    if not value:
        return []
    parts: list[str] = []
    for chunk in _SPLIT_RE.split(value):
        if not chunk:
            continue
        parts.extend(p for p in _CAMEL_RE.split(chunk) if p)
    tokens = [p.lower() for p in parts]
    if remove_stop_words:
        tokens = [t for t in tokens if t not in STOP_WORDS]
    return tokens


def char_ngrams(token: str, n_min: int = 3, n_max: int = 5) -> list[str]:
    """FastText-style character n-grams with boundary markers.

    The token is wrapped in ``<`` and ``>`` so prefixes/suffixes are
    distinguishable, then all n-grams with ``n_min <= n <= n_max`` are
    emitted, plus the whole wrapped token itself.
    """
    wrapped = f"<{token}>"
    grams = []
    for n in range(n_min, n_max + 1):
        if n >= len(wrapped):
            break
        for i in range(len(wrapped) - n + 1):
            grams.append(wrapped[i : i + n])
    grams.append(wrapped)
    return grams
