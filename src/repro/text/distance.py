"""String distance utilities.

Levenshtein distance is used by the error-type classifier (typo := edit
distance <= 3 from the clean value, per the paper's Table II
footnote) and by the simulated LLM's typo reasoning.
"""

from __future__ import annotations


def levenshtein(a: str, b: str, limit: int | None = None) -> int:
    """Edit distance between ``a`` and ``b``.

    If ``limit`` is given and the distance provably exceeds it, returns
    ``limit + 1`` early (band optimisation), which is all callers need
    for threshold tests.
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if limit is not None and len(b) - len(a) > limit:
        return limit + 1
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        row_min = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            val = min(
                previous[i] + 1,        # deletion
                current[i - 1] + 1,     # insertion
                previous[i - 1] + cost  # substitution
            )
            current.append(val)
            row_min = min(row_min, val)
        if limit is not None and row_min > limit:
            return limit + 1
        previous = current
    if limit is not None:
        # The row-min cutoff only fires when an entire row exceeds the
        # limit; a final cell can still land above it (shorter prefixes
        # kept the row min low).  Clamp so the documented contract —
        # anything beyond ``limit`` reports ``limit + 1`` — holds.
        return min(previous[-1], limit + 1)
    return previous[-1]


def within_edit_distance(a: str, b: str, k: int) -> bool:
    """True iff ``levenshtein(a, b) <= k``."""
    return levenshtein(a, b, limit=k) <= k
