"""Text utilities: tokenisation, patterns, distances, embeddings."""

from repro.text.distance import levenshtein, within_edit_distance
from repro.text.embeddings import SubwordHashEmbedding
from repro.text.patterns import all_levels, generalize
from repro.text.tokenize import STOP_WORDS, char_ngrams, tokenize

__all__ = [
    "STOP_WORDS",
    "SubwordHashEmbedding",
    "all_levels",
    "char_ngrams",
    "generalize",
    "levenshtein",
    "tokenize",
    "within_edit_distance",
]
