"""Value pattern generalisation (paper §III-B, pattern frequency).

A value is generalised at three levels:

* **L1** — every valid (non-space) character collapses to ``A``
  (alphanumeric run) while symbols stay distinct.
* **L2** — characters are classified into letters ``L``, digits ``D``
  and symbols ``S``.
* **L3** — letters are further split into upper ``U`` and lower ``u``;
  digits ``D``; symbols ``S``.

Runs are length-encoded, e.g. ``"DOe123."`` → L1 ``A[6].``, L2
``L[3]D[3]S[1]``, L3 ``U[2]u[1]D[3]S[1]`` (matching the paper's
example).  The per-attribute frequency of a value's generalised pattern
is a strong signal for pattern-violation errors.
"""

from __future__ import annotations

from functools import lru_cache


def _classify_l1(ch: str) -> str:
    return "A" if ch.isalnum() else ch


def _classify_l2(ch: str) -> str:
    if ch.isalpha():
        return "L"
    if ch.isdigit():
        return "D"
    return "S"


def _classify_l3(ch: str) -> str:
    if ch.isalpha():
        return "U" if ch.isupper() else "u"
    if ch.isdigit():
        return "D"
    return "S"


def _run_length_encode(classes: list[str], literal_symbols: bool) -> str:
    """Collapse consecutive identical classes into ``C[n]`` runs.

    When ``literal_symbols`` is true (L1), symbol characters are kept
    verbatim rather than run-length encoded, matching ``A[6].`` in the
    paper's example.
    """
    if not classes:
        return ""
    out: list[str] = []
    run_char = classes[0]
    run_len = 1
    for ch in classes[1:]:
        if ch == run_char:
            run_len += 1
            continue
        out.append(_emit(run_char, run_len, literal_symbols))
        run_char, run_len = ch, 1
    out.append(_emit(run_char, run_len, literal_symbols))
    return "".join(out)


def _emit(cls: str, length: int, literal_symbols: bool) -> str:
    if literal_symbols and len(cls) == 1 and not cls.isalnum():
        return cls * length
    return f"{cls}[{length}]"


@lru_cache(maxsize=131_072)
def generalize(value: str, level: int) -> str:
    """Generalise ``value`` at pattern level 1, 2 or 3.

    Memoized: the same distinct values are generalised by stats,
    features and the simulated LLM, and columns repeat values heavily,
    so the cache turns repeat calls into dict hits.
    """
    if level == 1:
        classes = [_classify_l1(ch) for ch in value]
        return _run_length_encode(classes, literal_symbols=True)
    if level == 2:
        classes = [_classify_l2(ch) for ch in value]
    elif level == 3:
        classes = [_classify_l3(ch) for ch in value]
    else:
        raise ValueError(f"pattern level must be 1, 2 or 3, got {level}")
    return _run_length_encode(classes, literal_symbols=False)


@lru_cache(maxsize=131_072)
def all_levels(value: str) -> tuple[str, str, str]:
    """Return (L1, L2, L3) generalisations of ``value`` (memoized)."""
    return generalize(value, 1), generalize(value, 2), generalize(value, 3)
