"""FastText-style subword hash embeddings (offline substitute).

The paper uses pre-trained FastText vectors for the semantic feature
block.  Offline we reproduce FastText's *mechanism* — a bag of character
n-grams hashed into a shared vector table — with a seeded random table
instead of pre-trained weights.  The property the pipeline relies on is
preserved: strings sharing subwords map to nearby vectors, so typos sit
close to their clean forms and unrelated values sit far apart.  A cell
embedding is the mean over token vectors, each token vector the mean of
its subword vectors (exactly fastText's composition rule).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.text.tokenize import char_ngrams, tokenize


def _stable_hash(text: str) -> int:
    """Deterministic 64-bit hash, independent of PYTHONHASHSEED."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class SubwordHashEmbedding:
    """Deterministic subword-hash embedding model.

    Parameters
    ----------
    dim:
        Embedding dimensionality (paper uses 300-d FastText; we default
        to a compact 32-d which is plenty for the feature block).
    n_buckets:
        Size of the shared subword vector table.
    seed:
        Seed for the random vector table; the same seed always yields
        the same embeddings.
    """

    def __init__(self, dim: int = 32, n_buckets: int = 4096, seed: int = 13) -> None:
        if dim <= 0 or n_buckets <= 0:
            raise ValueError("dim and n_buckets must be positive")
        self.dim = dim
        self.n_buckets = n_buckets
        rng = np.random.default_rng(seed)
        # Scaled so that averaged vectors keep unit-order magnitude.
        self._table = rng.standard_normal((n_buckets, dim)) / np.sqrt(dim)
        self._token_cache: dict[str, np.ndarray] = {}

    def token_vector(self, token: str) -> np.ndarray:
        """Embedding of a single token (mean of its subword vectors)."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        grams = char_ngrams(token)
        rows = [self._table[_stable_hash(g) % self.n_buckets] for g in grams]
        vec = np.mean(rows, axis=0)
        if len(self._token_cache) < 200_000:
            self._token_cache[token] = vec
        return vec

    def embed(self, value: str) -> np.ndarray:
        """Embedding of a cell value (mean over token vectors).

        Empty values (missing cells) map to the zero vector, which keeps
        them maximally distinguishable from every populated value.
        """
        tokens = tokenize(value)
        if not tokens:
            return np.zeros(self.dim)
        return np.mean([self.token_vector(t) for t in tokens], axis=0)

    def embed_many(self, values: list[str]) -> np.ndarray:
        """Embed a list of values into an ``(n, dim)`` matrix.

        Repeated values are embedded once (tabular columns are highly
        repetitive, so this is the hot path's main optimisation).
        """
        unique: dict[str, np.ndarray] = {}
        out = np.empty((len(values), self.dim))
        for i, v in enumerate(values):
            vec = unique.get(v)
            if vec is None:
                vec = self.embed(v)
                unique[v] = vec
            out[i] = vec
        return out
