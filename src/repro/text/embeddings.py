"""FastText-style subword hash embeddings (offline substitute).

The paper uses pre-trained FastText vectors for the semantic feature
block.  Offline we reproduce FastText's *mechanism* — a bag of character
n-grams hashed into a shared vector table — with a seeded random table
instead of pre-trained weights.  The property the pipeline relies on is
preserved: strings sharing subwords map to nearby vectors, so typos sit
close to their clean forms and unrelated values sit far apart.  A cell
embedding is the mean over token vectors, each token vector the mean of
its subword vectors (exactly fastText's composition rule).

The model is a pure function of ``(dim, n_buckets, seed)`` and the
input string, so everything memoizes aggressively: gram→bucket ids and
token vectors are cached per instance, unseen tokens are resolved in
batches (one fancy-indexed mean per distinct gram count instead of one
NumPy call per token), and :meth:`shared` hands out one process-wide
instance per parameter triple so repeated pipeline runs keep their warm
caches.  All fast paths are bit-identical to the naive
mean-of-means definition.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.text.tokenize import char_ngrams, tokenize


def _stable_hash(text: str) -> int:
    """Deterministic 64-bit hash, independent of PYTHONHASHSEED."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class SubwordHashEmbedding:
    """Deterministic subword-hash embedding model.

    Parameters
    ----------
    dim:
        Embedding dimensionality (paper uses 300-d FastText; we default
        to a compact 32-d which is plenty for the feature block).
    n_buckets:
        Size of the shared subword vector table.
    seed:
        Seed for the random vector table; the same seed always yields
        the same embeddings.
    """

    _shared_instances: dict[tuple[int, int, int], "SubwordHashEmbedding"] = {}

    def __init__(self, dim: int = 32, n_buckets: int = 4096, seed: int = 13) -> None:
        if dim <= 0 or n_buckets <= 0:
            raise ValueError("dim and n_buckets must be positive")
        self.dim = dim
        self.n_buckets = n_buckets
        rng = np.random.default_rng(seed)
        # Scaled so that averaged vectors keep unit-order magnitude.
        self._table = rng.standard_normal((n_buckets, dim)) / np.sqrt(dim)
        self._token_cache: dict[str, np.ndarray] = {}
        self._bucket_cache: dict[str, int] = {}
        self._value_tokens: dict[str, list[str]] = {}

    @classmethod
    def shared(
        cls, dim: int = 32, n_buckets: int = 4096, seed: int = 13
    ) -> "SubwordHashEmbedding":
        """Process-wide instance for ``(dim, n_buckets, seed)``.

        The model is deterministic and immutable for a given parameter
        triple — instances differ only in their memoization caches — so
        consumers constructed repeatedly (one FeatureSpace per pipeline
        run) can share one instance and keep its warm token/gram
        caches.  Results are identical to a fresh instance.
        """
        key = (dim, n_buckets, seed)
        inst = cls._shared_instances.get(key)
        if inst is None:
            inst = cls(dim=dim, n_buckets=n_buckets, seed=seed)
            if len(cls._shared_instances) < 64:
                cls._shared_instances[key] = inst
        return inst

    # ------------------------------------------------------------------
    def _bucket_rows(self, grams: list[str]) -> list[int]:
        """Vector-table row per gram (blake2b memoized per gram)."""
        cache = self._bucket_cache
        try:
            return [cache[g] for g in grams]
        except KeyError:
            pass
        rows = []
        for g in grams:
            row = cache.get(g)
            if row is None:
                row = _stable_hash(g) % self.n_buckets
                if len(cache) < 1_000_000:
                    cache[g] = row
            rows.append(row)
        return rows

    def _tokens_of(self, value: str) -> list[str]:
        """Memoized ``tokenize`` (values repeat across columns/runs)."""
        tokens = self._value_tokens.get(value)
        if tokens is None:
            tokens = tokenize(value)
            if len(self._value_tokens) < 500_000:
                self._value_tokens[value] = tokens
        return tokens

    def token_vector(self, token: str) -> np.ndarray:
        """Embedding of a single token (mean of its subword vectors)."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        grams = char_ngrams(token)
        vec = self._table[self._bucket_rows(grams)].mean(axis=0)
        # Cached vectors are handed out by reference (embed's
        # single-token fast path); freeze them so a mutating caller
        # fails loudly instead of corrupting the shared cache.
        vec.setflags(write=False)
        if len(self._token_cache) < 200_000:
            self._token_cache[token] = vec
        return vec

    def _resolve_tokens(self, tokens: list[str]) -> dict[str, np.ndarray]:
        """Vectors for ``tokens``, computing unseen ones in batches.

        Unseen tokens are grouped by gram count so each group costs one
        fancy-indexed ``mean(axis=1)`` — bit-identical to the per-token
        ``mean(axis=0)`` (same elements, same reduction order) but
        without per-token NumPy call overhead.
        """
        cache = self._token_cache
        out: dict[str, np.ndarray] = {}
        pending: set[str] = set()
        by_count: dict[int, list[tuple[str, list[int]]]] = {}
        for t in tokens:
            if t in out or t in pending:
                continue
            vec = cache.get(t)
            if vec is not None:
                out[t] = vec
            else:
                pending.add(t)
                grams = char_ngrams(t)
                by_count.setdefault(len(grams), []).append(
                    (t, self._bucket_rows(grams))
                )
        for entries in by_count.values():
            idx = np.array([rows for _, rows in entries], dtype=np.intp)
            vecs = self._table[idx].mean(axis=1)
            vecs.setflags(write=False)
            for (t, _), vec in zip(entries, vecs):
                out[t] = vec
                if len(cache) < 200_000:
                    cache[t] = vec
        return out

    def embed(self, value: str) -> np.ndarray:
        """Embedding of a cell value (mean over token vectors).

        Empty values (missing cells) map to the zero vector, which keeps
        them maximally distinguishable from every populated value.
        """
        tokens = tokenize(value)
        if not tokens:
            return np.zeros(self.dim)
        if len(tokens) == 1:
            # Mean of one vector is the vector itself, bit-for-bit.
            return self.token_vector(tokens[0])
        return np.mean([self.token_vector(t) for t in tokens], axis=0)

    def embed_uniques(self, values: list[str]) -> np.ndarray:
        """Embed distinct values into an ``(n_unique, dim)`` matrix.

        The columnar fast path: callers factorize a column once (see
        :mod:`repro.data.encoding`), embed only its unique values here,
        and scatter per-row with ``matrix[codes]``.
        """
        token_lists = [self._tokens_of(v) for v in values]
        vectors = self._resolve_tokens(
            [t for tokens in token_lists for t in tokens]
        )
        out = np.empty((len(values), self.dim))
        for i, tokens in enumerate(token_lists):
            if not tokens:
                out[i] = 0.0
            elif len(tokens) == 1:
                out[i] = vectors[tokens[0]]
            else:
                out[i] = np.mean([vectors[t] for t in tokens], axis=0)
        return out

    def embed_many(self, values: list[str]) -> np.ndarray:
        """Embed a list of values into an ``(n, dim)`` matrix.

        Repeated values are embedded once (tabular columns are highly
        repetitive); interned callers use :meth:`embed_uniques` plus a
        ``[codes]`` gather instead.
        """
        unique: dict[str, np.ndarray] = {}
        out = np.empty((len(values), self.dim))
        for i, v in enumerate(values):
            vec = unique.get(v)
            if vec is None:
                vec = self.embed(v)
                unique[v] = vec
            out[i] = vec
        return out
