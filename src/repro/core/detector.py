"""Detector training and prediction (paper §III-D, final step).

One two-layer MLP per attribute, trained on the constructed training
data and applied to every cell of that attribute.  Attributes whose
training data is degenerate (empty, or single-class) fall back to a
constant prediction of that class — the honest behaviour when the LLM
labeled everything identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ZeroEDConfig
from repro.core.featurize import FeatureSpace
from repro.core.training_data import AttributeTrainingData
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.errors import NotFittedError
from repro.ml.mlp import MLPClassifier
from repro.ml.rng import spawn
from repro.ml.scaler import StandardScaler


@dataclass
class _AttributeModel:
    scaler: StandardScaler | None
    mlp: MLPClassifier | None
    constant: bool | None  # fallback constant prediction


class ErrorDetector:
    """Per-attribute MLP ensemble over unified features."""

    def __init__(self, config: ZeroEDConfig) -> None:
        self.config = config
        self._models: dict[str, _AttributeModel] = {}

    def fit(
        self,
        training: dict[str, AttributeTrainingData],
        feature_space: FeatureSpace,
    ) -> "ErrorDetector":
        for attr, data in training.items():
            self._models[attr] = self._fit_attribute(attr, data)
        return self

    def _fit_attribute(
        self, attr: str, data: AttributeTrainingData
    ) -> _AttributeModel:
        y = data.labels
        if len(y) == 0:
            return _AttributeModel(scaler=None, mlp=None, constant=False)
        classes = set(np.unique(y).tolist())
        if len(classes) == 1:
            return _AttributeModel(
                scaler=None, mlp=None, constant=bool(classes.pop())
            )
        scaler = StandardScaler()
        x = scaler.fit_transform(data.features)
        mlp = MLPClassifier(
            hidden=self.config.mlp_hidden,
            epochs=self.config.mlp_epochs,
            lr=self.config.mlp_lr,
            seed=spawn(self.config.seed, f"mlp/{attr}"),
        )
        mlp.fit(x, y)
        return _AttributeModel(scaler=scaler, mlp=mlp, constant=None)

    def predict(self, table: Table, feature_space: FeatureSpace) -> ErrorMask:
        """Classify every cell of ``table`` as clean (False) or dirty."""
        if not self._models:
            raise NotFittedError("ErrorDetector.predict called before fit")
        mask = ErrorMask.zeros(table.attributes, table.n_rows)
        for attr in table.attributes:
            model = self._models.get(attr)
            if model is None:
                continue
            if model.constant is not None:
                if model.constant:
                    mask.matrix[:, table.attr_index(attr)] = True
                continue
            x = model.scaler.transform(feature_space.unified_matrix(attr))
            proba = model.mlp.predict_proba(x)
            mask.matrix[:, table.attr_index(attr)] = (
                proba >= self.config.decision_threshold
            )
        return mask
