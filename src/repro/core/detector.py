"""Detector training and prediction (paper §III-D, final step).

One two-layer MLP per attribute, trained on the constructed training
data and applied to every cell of that attribute.  Attributes whose
training data is degenerate (empty, or single-class) fall back to a
constant prediction of that class — the honest behaviour when the LLM
labeled everything identically.

The MLP execution engine follows ``config.detector_engine``:

* ``exact`` (default) — float64, bitwise identical to the historical
  implementation (one full-matrix forward pass per attribute, now
  through workspace buffers shared across attributes);
* ``fast`` (opt-in) — float32 train/predict over *unique* rows (the
  PR 1/2 interning idea): training collapses duplicate
  (features, label) rows to multiplicity-weighted uniques — the same
  weighted cross-entropy objective on a fraction of the rows — caps
  them at a seeded class-preserving subsample
  (``FAST_MAX_TRAIN_ROWS``, the MiniBatchKMeans subsample idea), and
  prediction computes one probability per unique feature row and
  scatters it back through the codes;
* ``auto`` — resolved against the table's row count at fit time
  (``ZeroEDConfig.resolve_detector_engine``).

With ``config.n_jobs > 1`` the per-attribute fits and prediction
passes fan across a worker-thread pool (the MLP GEMMs release the
GIL); each attribute owns its model, scaler and spawned seed, so masks
stay byte-identical to the serial path for any jobs count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ZeroEDConfig
from repro.core.featurize import FeatureSpace
from repro.core.training_data import AttributeTrainingData
from repro.data.encoding import fold_codes
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.errors import NotFittedError
from repro.ml.distance import collapse_duplicate_rows
from repro.ml.mlp import MLPClassifier, Workspace
from repro.ml.rng import spawn
from repro.ml.scaler import StandardScaler
from repro.parallel import effective_jobs, parallel_map

#: Fast-engine training-set cap: unique training rows beyond this are
#: subsampled (seeded, class-preserving, multiplicities kept as
#: weights) before the MLP sees them — the MiniBatchKMeans seeded
#: subsample idea (PR 2) applied to the detector.  The exact engine
#: always trains on every row.
FAST_MAX_TRAIN_ROWS = 8_192


@dataclass
class _AttributeModel:
    scaler: StandardScaler | None
    mlp: MLPClassifier | None
    constant: bool | None  # fallback constant prediction


def _unified_key_columns(
    feature_space: FeatureSpace, table: Table, attr: str
) -> list[str]:
    """Columns that determine ``attr``'s unified feature row.

    Every feature block is a pure function of the cell value plus a
    few context cells: the owner column itself, its vicinity partners,
    and its criteria's context attributes — for the attribute's own
    block and (when correlated features are on) each concatenated
    correlated block.  Rows agreeing on all these columns are
    guaranteed byte-identical unified rows (extra columns only split
    groups, never merge them, so over-approximating stays exact).
    """
    owners = [attr]
    if feature_space.config.use_correlated_features:
        owners += feature_space.correlated.get(attr, [])
    valid = set(table.attributes)
    out: list[str] = []
    seen: set[str] = set()
    for owner in owners:
        featurizer = feature_space.featurizers[owner]
        deps = [owner] + list(featurizer.correlated) + [
            a for crit in featurizer.criteria for a in crit.context_attrs
        ]
        for a in deps:
            if a not in seen and a in valid:
                seen.add(a)
                out.append(a)
    return out


def _subsample_rows(stacked, weights, cap, rng):
    """Seeded uniform subsample of ``cap`` rows, both classes kept.

    ``stacked`` carries the label in its last column; if the uniform
    draw would lose a class entirely (possible only when that class
    has a handful of unique rows), every row of the missing class is
    swapped in over the tail of the sample.
    """
    keep = np.sort(rng.choice(len(stacked), size=cap, replace=False))
    labels = stacked[:, -1]
    kept_labels = set(np.unique(labels[keep]).tolist())
    missing = [
        c for c in np.unique(labels).tolist() if c not in kept_labels
    ]
    if missing:
        rescue = np.nonzero(np.isin(labels, missing))[0][:cap // 2]
        keep = np.sort(
            np.concatenate([keep[: cap - len(rescue)], rescue])
        )
    return stacked[keep], weights[keep]


class ErrorDetector:
    """Per-attribute MLP ensemble over unified features."""

    def __init__(self, config: ZeroEDConfig) -> None:
        self.config = config
        self._models: dict[str, _AttributeModel] = {}
        # Concrete engine, owned by fit(): 'auto' resolves against the
        # training table's row count there; until then no engine
        # decision exists (predict before fit raises NotFittedError).
        self._engine: str | None = None

    def fit(
        self,
        training: dict[str, AttributeTrainingData],
        feature_space: FeatureSpace,
    ) -> "ErrorDetector":
        self._engine = self.config.resolve_detector_engine(
            feature_space.table.n_rows
        )
        attrs = list(training)
        # Per-attribute MLPs share nothing (each task spawns its own
        # seed and owns its model/scaler), so training fans across the
        # worker pool; attribute order of self._models is preserved.
        models = parallel_map(
            lambda attr: self._fit_attribute(attr, training[attr]),
            attrs,
            self.config.n_jobs,
        )
        for attr, model in zip(attrs, models):
            self._models[attr] = model
        return self

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str | None:
        """Concrete engine resolved at fit time (None before fit)."""
        return self._engine

    def with_config(self, config: ZeroEDConfig) -> "ErrorDetector":
        """A fitted view of this detector under a different config.

        Shares the per-attribute models and resolved engine; only the
        execution knobs prediction reads from ``config`` (``n_jobs``,
        ``decision_threshold``) change.  The sanctioned way to rebind a
        fitted detector — callers must not reach into ``_models``.
        """
        clone = ErrorDetector(config)
        clone._engine = self._engine
        clone._models = self._models
        return clone

    def export_models(self) -> dict[str, dict]:
        """Per-attribute fitted state as plain arrays/scalars.

        The serialization channel for detector artifacts: each entry is
        either ``{"kind": "constant", "constant": bool}`` (degenerate
        training data) or ``{"kind": "mlp", "flat": vector,
        "n_features": d, "scaler_mean": ..., "scaler_scale": ...}``.
        :meth:`from_models` restores a bitwise-identical detector.
        """
        if not self._models:
            raise NotFittedError("ErrorDetector.export_models before fit")
        out: dict[str, dict] = {}
        for attr, model in self._models.items():
            if model.constant is not None:
                out[attr] = {"kind": "constant", "constant": model.constant}
            else:
                out[attr] = {
                    "kind": "mlp",
                    "flat": model.mlp.export_flat_params(),
                    "n_features": model.mlp.n_features_,
                    "scaler_mean": model.scaler.mean_.copy(),
                    "scaler_scale": model.scaler.scale_.copy(),
                }
        return out

    @classmethod
    def from_models(
        cls,
        config: ZeroEDConfig,
        engine: str,
        models: dict[str, dict],
    ) -> "ErrorDetector":
        """Rebuild a fitted detector from :meth:`export_models` output."""
        detector = cls(config)
        detector._engine = engine
        for attr, state in models.items():
            if state["kind"] == "constant":
                detector._models[attr] = _AttributeModel(
                    scaler=None, mlp=None, constant=bool(state["constant"])
                )
                continue
            mlp = MLPClassifier(
                hidden=config.mlp_hidden,
                epochs=config.mlp_epochs,
                lr=config.mlp_lr,
                seed=spawn(config.seed, f"mlp/{attr}"),
                engine=engine,
            )
            mlp.load_flat_params(state["flat"], int(state["n_features"]))
            scaler = StandardScaler()
            scaler.mean_ = np.asarray(state["scaler_mean"], dtype=float)
            scaler.scale_ = np.asarray(state["scaler_scale"], dtype=float)
            detector._models[attr] = _AttributeModel(
                scaler=scaler, mlp=mlp, constant=None
            )
        return detector

    def _fit_attribute(
        self, attr: str, data: AttributeTrainingData
    ) -> _AttributeModel:
        y = data.labels
        if len(y) == 0:
            return _AttributeModel(scaler=None, mlp=None, constant=False)
        classes = set(np.unique(y).tolist())
        if len(classes) == 1:
            return _AttributeModel(
                scaler=None, mlp=None, constant=bool(classes.pop())
            )
        engine = self._engine
        fast = engine == "fast"
        mlp = MLPClassifier(
            hidden=self.config.mlp_hidden,
            epochs=self.config.mlp_epochs,
            lr=self.config.mlp_lr,
            seed=spawn(self.config.seed, f"mlp/{attr}"),
            engine=engine,
        )
        scaler = StandardScaler()
        if fast:
            # Interned training: collapse duplicate (features, label)
            # rows to uniques with multiplicity weights — the weighted
            # BCE objective matches the expanded set exactly, on a
            # fraction of the rows per epoch.  Scaling statistics still
            # come from the full (expanded) matrix.
            scaler.fit(data.features)
            stacked = np.column_stack([data.features, y])
            uniques, _, counts = collapse_duplicate_rows(stacked)
            weights = counts.astype(float)
            if len(uniques) > FAST_MAX_TRAIN_ROWS:
                uniques, weights = _subsample_rows(
                    uniques, weights, FAST_MAX_TRAIN_ROWS,
                    spawn(self.config.seed, f"mlp-subsample/{attr}"),
                )
            mlp.fit(
                scaler.transform(uniques[:, :-1]),
                uniques[:, -1],
                sample_weight=weights,
            )
        else:
            mlp.fit(scaler.fit_transform(data.features), y)
        return _AttributeModel(scaler=scaler, mlp=mlp, constant=None)

    def predict(self, table: Table, feature_space: FeatureSpace) -> ErrorMask:
        """Classify every cell of ``table`` as clean (False) or dirty.

        Serially, one workspace serves every attribute's forward pass:
        all attributes share the table's row count and the configured
        hidden width, so the activation tiles are allocated once and
        reused across the whole prediction sweep.  With
        ``config.n_jobs > 1`` the per-attribute passes fan across the
        worker pool instead (each with its own workspace — buffer reuse
        only affects allocation, never values) after the shared
        base-matrix cache is warmed serially; every attribute writes a
        disjoint mask column, so the mask is byte-identical either way.
        """
        if not self._models:
            raise NotFittedError("ErrorDetector.predict called before fit")
        mask = ErrorMask.zeros(table.attributes, table.n_rows)
        fast = self._engine == "fast"
        attrs = table.attributes
        if effective_jobs(self.config.n_jobs, len(attrs)) > 1:
            for attr in attrs:
                feature_space.base_matrix(attr)
                table.encoding(attr)
            parallel_map(
                lambda attr: self._predict_attribute(
                    attr, table, feature_space, mask, Workspace(), fast
                ),
                attrs,
                self.config.n_jobs,
            )
        else:
            workspace = Workspace()
            for attr in attrs:
                self._predict_attribute(
                    attr, table, feature_space, mask, workspace, fast
                )
        return mask

    def _predict_attribute(
        self,
        attr: str,
        table: Table,
        feature_space: FeatureSpace,
        mask: ErrorMask,
        workspace: Workspace,
        fast: bool,
    ) -> None:
        model = self._models.get(attr)
        if model is None:
            return
        if model.constant is not None:
            if model.constant:
                mask.matrix[:, table.attr_index(attr)] = True
            return
        unified = feature_space.unified_matrix(attr)
        if fast:
            # Equal feature rows get equal probabilities: predict
            # once per unique row, scatter back.  A unified row is
            # a pure function of its interned column codes, so the
            # dedup key is one folded int64 array (O(n)) rather
            # than a lexsort of the float matrix.
            key = fold_codes(
                [
                    table.encoding(a)
                    for a in _unified_key_columns(
                        feature_space, table, attr
                    )
                ]
            )
            _, first_rows, inverse = np.unique(
                key, return_index=True, return_inverse=True
            )
            proba = model.mlp.predict_proba(
                model.scaler.transform(unified[first_rows]),
                workspace=workspace,
            )[inverse]
        else:
            proba = model.mlp.predict_proba(
                model.scaler.transform(unified), workspace=workspace
            )
        mask.matrix[:, table.attr_index(attr)] = (
            proba >= self.config.decision_threshold
        )
