"""Clustering-based representative data sampling (paper §III-C).

Per attribute, the unified feature vectors are partitioned into
``s = data size × label rate`` clusters and the point nearest each
cluster centroid is selected for LLM labeling.  Alternative strategies
(random sampling, agglomerative clustering) reproduce Table VI's
comparison; random sampling still assigns every point to its nearest
sample so in-cluster label propagation remains well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.ml.agglomerative import AgglomerativeClustering
from repro.ml.kmeans import KMeans
from repro.ml.rng import RngLike, as_generator


@dataclass
class SamplingResult:
    """Cluster assignment and selected representatives for one attribute."""

    cluster_labels: np.ndarray
    """Cluster id per row."""

    sampled_indices: list[int]
    """One representative row index per non-empty cluster."""

    representative_of: dict[int, int]
    """cluster id -> sampled row index."""


def _nearest_to_centroids(
    features: np.ndarray, labels: np.ndarray
) -> dict[int, int]:
    """Row nearest each cluster's mean (the paper's centroid point)."""
    out: dict[int, int] = {}
    for cluster_id in np.unique(labels):
        members = np.nonzero(labels == cluster_id)[0]
        centroid = features[members].mean(axis=0)
        dists = np.linalg.norm(features[members] - centroid, axis=1)
        out[int(cluster_id)] = int(members[int(np.argmin(dists))])
    return out


def sample_representatives(
    features: np.ndarray,
    n_clusters: int,
    method: str = "kmeans",
    seed: RngLike = 0,
) -> SamplingResult:
    """Cluster the feature space and pick centroid-nearest points."""
    features = np.asarray(features, dtype=float)
    n = features.shape[0]
    if n == 0:
        raise ConfigError("cannot sample from an empty feature matrix")
    n_clusters = max(1, min(n_clusters, n))
    if method == "kmeans":
        labels = KMeans(n_clusters=n_clusters, seed=seed).fit_predict(features)
    elif method == "agglomerative":
        labels = AgglomerativeClustering(
            n_clusters=n_clusters, seed=seed
        ).fit_predict(features)
    elif method == "random":
        labels = _random_partition(features, n_clusters, seed)
    else:
        raise ConfigError(f"unknown sampling method {method!r}")
    representative_of = _nearest_to_centroids(features, labels)
    sampled = sorted(set(representative_of.values()))
    return SamplingResult(
        cluster_labels=labels,
        sampled_indices=sampled,
        representative_of=representative_of,
    )


def _random_partition(
    features: np.ndarray, n_clusters: int, seed: RngLike
) -> np.ndarray:
    """Random sampling baseline: random anchors, nearest-anchor groups."""
    rng = as_generator(seed)
    n = features.shape[0]
    anchors = rng.choice(n, size=min(n_clusters, n), replace=False)
    anchor_feats = features[anchors]
    cross = features @ anchor_feats.T
    a_sq = np.einsum("ij,ij->i", anchor_feats, anchor_feats)
    return np.argmin(a_sq[None, :] - 2.0 * cross, axis=1)
