"""Clustering-based representative data sampling (paper §III-C).

Per attribute, the unified feature vectors are partitioned into
``s = data size × label rate`` clusters and the point nearest each
cluster centroid is selected for LLM labeling.  Alternative strategies
(random sampling, agglomerative clustering) reproduce Table VI's
comparison; random sampling still assigns every point to its nearest
sample so in-cluster label propagation remains well-defined.

Two engines (``config.sampling_engine``):

* ``exact`` (default) — Lloyd k-means over every row, byte-identical
  masks to the historical implementation;
* ``fast`` — duplicate feature rows are collapsed to unique rows with
  multiplicity weights (the PR 1 value-interning idea applied to
  clustering), mini-batch k-means runs over the uniques through the
  blocked float32 distance kernel, and labels scatter back through the
  codes.  ≥5× faster at 10k rows; cluster boundaries may shift within
  the recorded parity band (see ``tests/test_sampling_engine.py``).

``config.sampling_engine = "auto"`` resolves to one of the two before
reaching this module (``ZeroEDConfig.resolve_sampling_engine``: fast
at/above the ~2k-row crossover, exact below); this layer only accepts
concrete engines.  The pipeline may call :func:`sample_representatives`
for many attributes concurrently (``config.n_jobs``) — every input is
task-local or read-only, so the fan-out needs no coordination here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SAMPLING_ENGINES
from repro.errors import ConfigError
from repro.ml.agglomerative import AgglomerativeClustering
from repro.ml.distance import (
    assigned_dists,
    collapse_duplicate_rows,
    nearest_centers,
)
from repro.ml.kmeans import KMeans
from repro.ml.minibatch import MiniBatchKMeans
from repro.ml.rng import RngLike, as_generator


@dataclass
class SamplingResult:
    """Cluster assignment and selected representatives for one attribute."""

    cluster_labels: np.ndarray
    """Cluster id per row."""

    sampled_indices: list[int]
    """One representative row index per non-empty cluster."""

    representative_of: dict[int, int]
    """cluster id -> sampled row index."""


def _nearest_to_centroids(
    features: np.ndarray, labels: np.ndarray
) -> dict[int, int]:
    """Row nearest each cluster's mean (the paper's centroid point).

    One gather + whole-matrix distance through the shared kernel
    instead of materialising ``features[members]`` twice per cluster;
    ties on distance break to the lowest row index (the historical
    first-argmin semantics), which the lexsort below makes explicit.
    """
    ids, label_index = np.unique(labels, return_inverse=True)
    centroids = np.empty((len(ids), features.shape[1]))
    # Per-cluster .mean() is kept deliberately: its pairwise summation
    # must stay bit-identical to the historical implementation or the
    # seed-pinned detection masks shift (a segment reduceat sums in a
    # different order).  The O(n·k) distance part below is the piece
    # the kernel vectorises.
    for pos, cluster_id in enumerate(ids):
        centroids[pos] = features[labels == cluster_id].mean(axis=0)
    dists = assigned_dists(features, centroids, label_index)
    order = np.lexsort((np.arange(features.shape[0]), dists, label_index))
    _, firsts = np.unique(label_index[order], return_index=True)
    reps = order[firsts]
    return {int(cid): int(reps[pos]) for pos, cid in enumerate(ids)}


def sample_representatives(
    features: np.ndarray,
    n_clusters: int,
    method: str = "kmeans",
    seed: RngLike = 0,
    engine: str = "exact",
) -> SamplingResult:
    """Cluster the feature space and pick centroid-nearest points."""
    features = np.asarray(features, dtype=float)
    n = features.shape[0]
    if n == 0:
        raise ConfigError("cannot sample from an empty feature matrix")
    if engine not in SAMPLING_ENGINES:
        raise ConfigError(
            f"sampling engine must be one of {SAMPLING_ENGINES}, "
            f"got {engine!r}"
        )
    n_clusters = max(1, min(n_clusters, n))
    if method == "kmeans":
        if engine == "fast":
            labels = _fast_kmeans_labels(features, n_clusters, seed)
        else:
            labels = KMeans(
                n_clusters=n_clusters, seed=seed
            ).fit_predict(features)
    elif method == "agglomerative":
        labels = AgglomerativeClustering(
            n_clusters=n_clusters, seed=seed
        ).fit_predict(features)
    elif method == "random":
        labels = _random_partition(features, n_clusters, seed)
    else:
        raise ConfigError(f"unknown sampling method {method!r}")
    representative_of = _nearest_to_centroids(features, labels)
    sampled = sorted(set(representative_of.values()))
    return SamplingResult(
        cluster_labels=labels,
        sampled_indices=sampled,
        representative_of=representative_of,
    )


def _fast_kmeans_labels(
    features: np.ndarray, n_clusters: int, seed: RngLike
) -> np.ndarray:
    """Mini-batch k-means over unique rows, scattered back via codes.

    Feature rows are heavily duplicated (identical value/context pairs
    gather identical vectors), so clustering the unique rows with
    multiplicity weights computes the same weighted objective on a much
    smaller matrix.  When there are no more uniques than clusters every
    unique row is trivially its own (zero-inertia) cluster.
    """
    uniques, codes, counts = collapse_duplicate_rows(features)
    if uniques.shape[0] <= n_clusters:
        return codes
    # Few distinct rows per cluster makes the objective a
    # local-optimum lottery; restarts are cheap there and keep the
    # fast engine inside the exact engine's inertia band.
    n_init = 3 if uniques.shape[0] <= 4 * n_clusters else 1
    unique_labels = MiniBatchKMeans(
        n_clusters=n_clusters, n_init=n_init, seed=seed
    ).fit_predict(uniques, sample_weight=counts.astype(float))
    return unique_labels[codes]


def _random_partition(
    features: np.ndarray, n_clusters: int, seed: RngLike
) -> np.ndarray:
    """Random sampling baseline: random anchors, nearest-anchor groups."""
    rng = as_generator(seed)
    n = features.shape[0]
    anchors = rng.choice(n, size=min(n_clusters, n), replace=False)
    # Shared exact kernel; same expansion this function used to inline.
    return nearest_centers(features, features[anchors])
