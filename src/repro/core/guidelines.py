"""Two-step ED guideline generation (paper §III-C, Fig. 5).

Step 1: the LLM writes distribution-analysis function sources; we
compile them in the criteria sandbox and execute them over the *whole*
table, producing analysis text that is not limited by prompt length.
Step 2: the analysis results plus representative examples are fed back
to the LLM, which synthesises a detailed attribute-specific guideline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.criteria import compile_function
from repro.data.table import Table
from repro.errors import CriteriaError
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import (
    ANALYSIS_FUNCTIONS_PROMPT,
    ERROR_DESCRIPTIONS,
    GUIDELINE_PROMPT,
    serialize_rows,
)


@dataclass
class GuidelineResult:
    """The guideline for one attribute plus its provenance."""

    attr: str
    text: str
    analysis_text: str
    n_functions: int = 0
    failed_functions: list[str] = field(default_factory=list)


def run_analysis_functions(
    table: Table, attr: str, specs: list[dict]
) -> tuple[str, int, list[str]]:
    """Compile and execute analysis-function sources over ``table``."""
    sections: list[str] = []
    failed: list[str] = []
    for i, spec in enumerate(specs, start=1):
        name = spec.get("name", f"distr_analysis_{i}")
        try:
            fn = compile_function(spec["source"], name)
            result = str(fn(table, attr))
        except (CriteriaError, Exception) as exc:  # noqa: BLE001
            failed.append(f"{name}: {exc}")
            continue
        sections.append(f"**Analyzing results {i} ({name}):**\n{result}")
    return "\n\n".join(sections), len(specs) - len(failed), failed


def build_guideline(
    llm: LLMClient,
    table: Table,
    attr: str,
    example_rows: list[dict[str, str]],
) -> GuidelineResult:
    """Generate the ED guideline for ``attr`` via the two-step process."""
    example_block = serialize_rows(example_rows)
    analysis_prompt = ANALYSIS_FUNCTIONS_PROMPT.format(
        attr=attr, dataset=table.name, samples=example_block
    )
    analysis_response = llm.complete(
        LLMRequest(
            kind="analysis_functions",
            prompt=analysis_prompt,
            payload={"dataset": table.name, "attr": attr},
        )
    )
    analysis_text, n_ok, failed = run_analysis_functions(
        table, attr, analysis_response.payload or []
    )
    guideline_prompt = GUIDELINE_PROMPT.format(
        attr=attr,
        dataset=table.name,
        analysis=analysis_text,
        samples=example_block,
        error_descriptions=ERROR_DESCRIPTIONS,
    )
    guideline_response = llm.complete(
        LLMRequest(
            kind="guideline",
            prompt=guideline_prompt,
            payload={
                "dataset": table.name,
                "attr": attr,
                "analysis_text": analysis_text,
                "example_block": example_block,
            },
        )
    )
    return GuidelineResult(
        attr=attr,
        text=guideline_response.text,
        analysis_text=analysis_text,
        n_functions=n_ok,
        failed_functions=failed,
    )
