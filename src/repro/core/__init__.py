"""ZeroED core: the paper's primary contribution."""

from repro.core.correlation import correlated_attributes, nmi_matrix
from repro.core.detector import ErrorDetector
from repro.core.featurize import AttributeFeaturizer, FeatureSpace
from repro.core.guidelines import GuidelineResult, build_guideline
from repro.core.labeling import label_representatives
from repro.core.pipeline import ZeroED
from repro.core.repair import RepairSuggester, RepairSuggestion, apply_repairs
from repro.core.result import DetectionResult, StageInfo
from repro.core.sampling import SamplingResult, sample_representatives
from repro.core.training_data import (
    AttributeTrainingData,
    construct_training_data,
    propagate_labels,
    refine_criteria,
)

__all__ = [
    "AttributeFeaturizer",
    "AttributeTrainingData",
    "DetectionResult",
    "ErrorDetector",
    "FeatureSpace",
    "GuidelineResult",
    "RepairSuggester",
    "RepairSuggestion",
    "SamplingResult",
    "StageInfo",
    "ZeroED",
    "apply_repairs",
    "build_guideline",
    "construct_training_data",
    "correlated_attributes",
    "label_representatives",
    "nmi_matrix",
    "propagate_labels",
    "refine_criteria",
    "sample_representatives",
]
