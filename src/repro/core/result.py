"""Detection results with per-stage provenance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.mask import ErrorMask
from repro.ml.metrics import PRF, score_masks


@dataclass
class StageInfo:
    """Timing and token usage of one pipeline stage."""

    name: str
    seconds: float
    input_tokens: int = 0
    output_tokens: int = 0


@dataclass
class DetectionResult:
    """Output of one pipeline run: the mask plus provenance."""

    mask: ErrorMask
    dataset: str
    method: str
    stages: list[StageInfo] = field(default_factory=list)
    n_llm_requests: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    details: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    def score(self, truth: ErrorMask) -> PRF:
        """Precision/recall/F1 against a ground-truth mask."""
        return score_masks(self.mask, truth)

    def error_cells(self) -> list[tuple[int, str]]:
        """Flagged ``(row, attribute)`` pairs in *global* row ids.

        The mask's row ids are local to the scored table; when the
        table was a shard of a larger stream the scorer records the
        shard's position in ``details["row_offset"]`` and this method
        applies it — consumers get stream-global ids instead of
        silently 0-rebased ones (absent offset means 0, i.e. the table
        was the whole stream).
        """
        offset = int(self.details.get("row_offset", 0))
        return [(i + offset, attr) for i, attr in self.mask.error_cells()]

    def stage_summary(self) -> dict[str, float]:
        return {s.name: s.seconds for s in self.stages}
