"""Context-aware batched LLM labeling (paper §III-C).

The representative values sampled per attribute are labeled in batches
of ``config.batch_size``; each batch prompt embeds the attribute's ED
guideline and the values with their correlated-attribute context.  The
structured payload mirrors the prompt so the simulated backend reasons
over the same information a real model would read.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import ZeroEDConfig
from repro.core.fallback import heuristic_labels
from repro.data.stats import AttributeStats, PairStats
from repro.data.table import Table
from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import LABEL_BATCH_PROMPT, serialize_tuple


def label_representatives(
    llm: LLMClient,
    table: Table,
    attr: str,
    sampled_indices: list[int],
    guideline_text: str,
    stats: AttributeStats,
    pair_stats: dict[str, PairStats],
    correlated: list[str],
    config: ZeroEDConfig,
    on_failure: Callable[[str, LLMError], None] | None = None,
) -> dict[int, int]:
    """Label the sampled rows' ``attr`` values; returns row -> 0/1.

    ``on_failure`` enables graceful degradation per *batch*: a batch
    whose LLM call fails (retries already exhausted underneath) is
    labeled by the pattern/frequency heuristic
    (:mod:`repro.core.fallback`) instead — batches that did succeed
    keep their LLM labels, so one mid-run failure costs one batch of
    label quality, not the attribute.  Without the callback a failure
    propagates (historical fail-fast)."""
    labels: dict[int, int] = {}
    guided = bool(guideline_text)
    col = table.column_view(attr)
    for batch_id, start in enumerate(
        range(0, len(sampled_indices), config.batch_size)
    ):
        batch = sampled_indices[start : start + config.batch_size]
        values = [col[i] for i in batch]
        contexts = []
        batch_lines = []
        for i in batch:
            context = {q: table.cell(i, q) for q in correlated}
            contexts.append(context)
            shown = dict({attr: col[i]}, **context)
            batch_lines.append(serialize_tuple(shown))
        prompt = LABEL_BATCH_PROMPT.format(
            attr=attr,
            dataset=table.name,
            guideline=guideline_text or "(no guideline available)",
            batch="\n".join(batch_lines),
        )
        try:
            response = llm.complete(
                LLMRequest(
                    kind="label_batch",
                    prompt=prompt,
                    payload={
                        "dataset": table.name,
                        "attr": attr,
                        "batch_id": batch_id,
                        "values": values,
                        "contexts": contexts,
                        "stats": stats,
                        "pair_stats": pair_stats,
                        "guided": guided,
                    },
                )
            )
            batch_labels = list(response.payload or [])
        except LLMError as exc:
            if on_failure is None:
                raise
            on_failure(attr, exc)
            batch_labels = heuristic_labels(values, stats)
        # A real model occasionally returns short answers; missing
        # labels default to clean (the majority class).
        while len(batch_labels) < len(batch):
            batch_labels.append(0)
        for i, label in zip(batch, batch_labels):
            labels[i] = int(label)
    return labels
