"""The ZeroED pipeline facade (paper §III).

Orchestrates the four steps — feature representation, representative
sampling + holistic LLM labeling, training-data construction with
mutual verification, and detector training/prediction — with per-stage
timing and token accounting.  Every stochastic component derives from
``config.seed``; two runs with the same config, data and LLM backend
produce identical masks.

The pipeline is split into a train-once / score-many pair (the serving
subsystem, PR 5):

* :meth:`ZeroED.fit` runs the expensive LLM-guided phase (Steps 1-4 up
  to detector training) and returns a :class:`FittedZeroED`;
* :meth:`FittedZeroED.score` applies the fitted per-attribute detectors
  to a table — the training table itself (byte-identical to the
  historical single-shot path) or *unseen* rows featurized against the
  frozen training statistics, with zero LLM calls;
* :meth:`ZeroED.detect` is fit-then-score, masks byte-identical to the
  pre-split implementation (hash-pinned in
  ``tests/test_feature_equivalence.py``).

:meth:`FittedZeroED.save` persists everything scoring needs as a
versioned on-disk artifact (:mod:`repro.serving.artifact`), reloadable
by :class:`repro.serving.scorer.BatchScorer` in a fresh process.
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path

from repro.config import ZeroEDConfig
from repro.core.correlation import correlated_attributes
from repro.core.criteria_step import generate_initial_criteria
from repro.core.detector import ErrorDetector
from repro.core.featurize import FeatureSpace
from repro.core.guidelines import build_guideline
from repro.core.labeling import label_representatives
from repro.core.result import DetectionResult, StageInfo
from repro.core.sampling import SamplingResult, sample_representatives
from repro.core.training_data import (
    AttributeTrainingData,
    assemble_training_data,
    verify_attribute,
)
from repro.data.stats import compute_all_stats
from repro.data.table import Table
from repro.errors import LLMError
from repro.llm.checkpoint import CheckpointedLLM, fit_fingerprint
from repro.llm.client import LLMClient
from repro.llm.profiles import get_profile
from repro.llm.resilience import ResilientLLM, RetryPolicy
from repro.ml.rng import spawn
from repro.obs import log as obs_log
from repro.obs import session as obs_session
from repro.obs import trace
from repro.parallel import effective_jobs, parallel_attr_map

_log = obs_log.get_logger("repro.core.pipeline")


class ZeroED:
    """Hybrid zero-shot error detector.

    Parameters
    ----------
    config:
        Full pipeline configuration; defaults to the paper's settings.
    llm:
        An :class:`~repro.llm.client.LLMClient`.  Defaults to the
        simulated backend with the profile named by
        ``config.llm_model``.
    **overrides:
        Convenience keyword overrides applied to the config, e.g.
        ``ZeroED(label_rate=0.02, seed=7)``.
    """

    def __init__(
        self,
        config: ZeroEDConfig | None = None,
        llm: LLMClient | None = None,
        **overrides,
    ) -> None:
        base = config or ZeroEDConfig()
        self.config = (
            dataclasses.replace(base, **overrides) if overrides else base
        )
        if llm is None:
            from repro.llm.simulated.engine import SimulatedLLM

            llm = SimulatedLLM(
                profile=get_profile(self.config.llm_model),
                seed=self.config.seed,
            )
        self.llm = llm

    # ------------------------------------------------------------------
    def detect(self, table: Table) -> DetectionResult:
        """Detect errors in every cell of ``table`` (fit then score)."""
        return self.fit(table).score(table)

    # ------------------------------------------------------------------
    def fit(self, table: Table) -> "FittedZeroED":
        """Run the LLM-guided training phase (Steps 1-4) on ``table``.

        Everything expensive happens here — criteria reasoning,
        representative sampling, holistic labeling, mutual verification,
        augmentation, and MLP training.  The returned
        :class:`FittedZeroED` scores tables without further LLM calls.
        """
        # Observability knobs carried on the config (the CLI wraps the
        # whole command in its own session, which then wins): an inner
        # session is a no-op unless config asks for something.
        with obs_session(
            trace_out=self.config.trace_out,
            log_json=self.config.log_json,
            log_level=self.config.log_level,
        ):
            with trace.span(
                "fit",
                dataset=table.name,
                rows=table.n_rows,
                attributes=table.n_attributes,
            ):
                return self._fit(table)

    def _fit(self, table: Table) -> "FittedZeroED":
        config = self.config
        # Out-of-core fit (streaming layer): with a sample_rows budget
        # and a larger table, the LLM-guided phase runs on a seeded
        # reservoir sample — the frozen statistics it produces then
        # score the *full* table chunk-by-chunk through the serving
        # layer.  Sampling happens before engine resolution so 'auto'
        # sees the row count the fit actually runs on.
        sample_info = None
        if (
            config.sample_rows is not None
            and table.n_rows > config.sample_rows
        ):
            from repro.serving.streaming import reservoir_sample_chunks

            sample = reservoir_sample_chunks(
                [table], config.sample_rows, seed=config.seed,
                source=table.name,
            )
            table = sample.table
            sample_info = sample.provenance()
        # 'auto' engines resolve against this table's row count once,
        # up front: 'fast' at/above the ~2k-row crossover, 'exact'
        # below it (see config.AUTO_ENGINE_MIN_ROWS).
        if "auto" in (config.sampling_engine, config.detector_engine):
            config = dataclasses.replace(
                config,
                sampling_engine=config.resolve_sampling_engine(table.n_rows),
                detector_engine=config.resolve_detector_engine(table.n_rows),
            )
        # Per-attribute stages fan across a worker pool when n_jobs > 1
        # (masks stay byte-identical for any jobs count); n_jobs == 1
        # keeps the historical serial loops bit-for-bit.
        parallel = effective_jobs(config.n_jobs, table.n_attributes) > 1
        llm = self._wrap_llm(config, table)
        llm.ledger.reset()
        stages: list[StageInfo] = []
        details: dict = {
            "engines": {
                "sampling": config.sampling_engine,
                "detector": config.detector_engine,
            },
            "n_jobs": config.n_jobs,
        }

        # Per-attribute degradation ledger: stage callbacks land here
        # when an attribute's LLM call exhausts its retries and the fit
        # carries on with the statistical fallback for that stage.
        degraded: dict[str, set[str]] = {}
        degraded_lock = threading.Lock()

        def degrade_into(stage: str):
            """on_failure callback for one stage, or None (fail fast)."""
            if not config.degrade_on_failure:
                return None

            def record(attr: str, exc: LLMError) -> None:
                with degraded_lock:
                    degraded.setdefault(attr, set()).add(stage)
                _log.warning(
                    "llm.degraded", attr=attr, stage=stage, error=str(exc)
                )

            return record

        def run_stage(name: str, fn):
            before = llm.ledger.summary()
            with trace.span(name) as sp:
                value = fn()
            after = llm.ledger.summary()
            info = StageInfo(
                name=name,
                seconds=sp.seconds,
                input_tokens=after["input_tokens"] - before["input_tokens"],
                output_tokens=(
                    after["output_tokens"] - before["output_tokens"]
                ),
            )
            stages.append(info)
            _log.debug(
                "fit.stage",
                stage=name,
                seconds=round(info.seconds, 6),
                input_tokens=info.input_tokens,
                output_tokens=info.output_tokens,
            )
            return value

        # --- Step 1: feature representation ---------------------------
        stats = run_stage("stats", lambda: compute_all_stats(table))
        correlated = run_stage(
            "correlation",
            lambda: (
                correlated_attributes(
                    table, config.n_correlated, seed=config.seed
                )
                if config.use_correlated_features
                else {a: [] for a in table.attributes}
            ),
        )
        criteria = run_stage(
            "criteria",
            lambda: (
                generate_initial_criteria(
                    llm, table, correlated, config,
                    on_failure=degrade_into("criteria"),
                )
                if config.use_criteria_features
                else {a: [] for a in table.attributes}
            ),
        )
        feature_space = run_stage(
            "features",
            lambda: FeatureSpace(table, stats, correlated, criteria, config),
        )

        # --- Step 2: sampling and holistic LLM labeling ----------------
        def do_sampling() -> dict[str, SamplingResult]:
            n_clusters = config.clusters_for(table.n_rows)
            if parallel:
                # Warm the shared base-matrix cache serially (unified
                # matrices concatenate other attributes' base blocks)
                # so workers only read it.
                for attr in table.attributes:
                    feature_space.base_matrix(attr)
            return parallel_attr_map(
                lambda attr: sample_representatives(
                    feature_space.unified_matrix(attr),
                    n_clusters=n_clusters,
                    method=config.clustering,
                    seed=spawn(config.seed, f"sample/{attr}"),
                    engine=config.sampling_engine,
                ),
                table.attributes,
                config.n_jobs,
                span="sample",
            )

        sampling = run_stage("sampling", do_sampling)

        def do_guidelines() -> dict[str, str]:
            if not config.use_guidelines:
                return {a: "" for a in table.attributes}
            on_failure = degrade_into("guideline")
            out = {}
            for attr in table.attributes:
                examples = [
                    _context_row(table, i, attr, correlated[attr])
                    for i in sampling[attr].sampled_indices[:15]
                ]
                try:
                    out[attr] = build_guideline(
                        llm, table, attr, examples
                    ).text
                except LLMError as exc:
                    if on_failure is None:
                        raise
                    on_failure(attr, exc)
                    # Labeling prompts degrade to "(no guideline
                    # available)" — the w/o-Guid. ablation's shape.
                    out[attr] = ""
            return out

        guidelines = run_stage("guidelines", do_guidelines)

        def do_labeling() -> dict[str, dict[int, int]]:
            out = {}
            for attr in table.attributes:
                pair_stats = {
                    q: table.pair_stats(q, attr) for q in correlated[attr]
                }
                out[attr] = label_representatives(
                    llm=llm,
                    table=table,
                    attr=attr,
                    sampled_indices=sampling[attr].sampled_indices,
                    guideline_text=guidelines[attr],
                    stats=stats[attr],
                    pair_stats=pair_stats,
                    correlated=correlated[attr],
                    config=config,
                    on_failure=degrade_into("labeling"),
                )
            return out

        llm_labels = run_stage("labeling", do_labeling)

        # --- Step 3: training data construction (Algorithm 1) ----------
        # Verification first for *all* attributes (it swaps refined
        # criteria into the feature space, changing base dimensions),
        # then feature/label assembly against the final feature space.
        def do_training_data():
            # Verification tasks are per-attribute independent: each
            # one reads shared immutable state (table, encodings) and
            # mutates only its own attribute's criteria block, so the
            # fan-out is safe and order-free (LLM responses and spawned
            # seeds are pure functions of (seed, attr)).
            outcomes = parallel_attr_map(
                lambda attr: verify_attribute(
                    llm=llm,
                    table=table,
                    attr=attr,
                    feature_space=feature_space,
                    sampling=sampling[attr],
                    llm_labels=llm_labels[attr],
                    correlated=correlated[attr],
                    config=config,
                    on_failure=degrade_into("refinement"),
                ),
                table.attributes,
                config.n_jobs,
                span="verify",
            )
            if parallel:
                # Criteria refinement invalidated base matrices; warm
                # the rebuilt cache serially before assembly workers
                # gather correlated blocks from it.
                for attr in table.attributes:
                    feature_space.base_matrix(attr)
            return parallel_attr_map(
                lambda attr: assemble_training_data(
                    llm=llm,
                    table=table,
                    attr=attr,
                    feature_space=feature_space,
                    outcome=outcomes[attr],
                    correlated=correlated[attr],
                    config=config,
                    on_failure=degrade_into("augmentation"),
                ),
                table.attributes,
                config.n_jobs,
                span="assemble",
            )

        training = run_stage("training_data", do_training_data)

        # --- Step 4: detector training ----------------------------------
        detector = run_stage(
            "train_detector",
            lambda: ErrorDetector(config).fit(training, feature_space),
        )

        details["n_sampled"] = {
            attr: len(s.sampled_indices) for attr, s in sampling.items()
        }
        details["training"] = {
            attr: {
                "propagated": t.n_propagated,
                "removed": t.n_removed_by_verification,
                "augmented": t.n_augmented,
                "criteria_kept": t.n_criteria_kept,
                "criteria_dropped": t.n_criteria_dropped,
            }
            for attr, t in training.items()
        }
        details["degraded_attrs"] = {
            attr: sorted(stage_names)
            for attr, stage_names in sorted(degraded.items())
        }
        details["resilience"] = self._resilience_summary(llm)
        # Sample provenance rides into the artifact manifest (key
        # "sample"); None means the fit saw every row.
        details["sample"] = sample_info
        return FittedZeroED(
            config=config,
            llm=llm,
            table=table,
            feature_space=feature_space,
            detector=detector,
            training=training,
            stages=stages,
            details=details,
            ledger_summary=llm.ledger.summary(),
        )

    # ------------------------------------------------------------------
    def _wrap_llm(self, config: ZeroEDConfig, table: Table) -> LLMClient:
        """The fit-time client: resilience inside, checkpoints outside.

        ``CheckpointedLLM(ResilientLLM(client))`` — cache hits skip the
        retry machinery entirely; misses get its full protection.  A
        client that is already a :class:`ResilientLLM` (caller tuned
        its own policy) is respected as-is.  Both wrappers share the
        inner token ledger, so accounting is unchanged.
        """
        llm = self.llm
        if not isinstance(llm, (ResilientLLM, CheckpointedLLM)):
            llm = ResilientLLM(
                llm, RetryPolicy.from_config(config), seed=config.seed
            )
        if config.checkpoint_dir and not isinstance(llm, CheckpointedLLM):
            llm = CheckpointedLLM(
                llm,
                config.checkpoint_dir,
                fit_fingerprint(table, config, llm.model_name),
            )
        return llm

    @staticmethod
    def _resilience_summary(llm: LLMClient) -> dict:
        """Failure-path accounting for ``details["resilience"]``."""
        out: dict = {}
        client = llm
        if isinstance(client, CheckpointedLLM):
            out["checkpoint"] = client.summary()
            client = client.inner
        if isinstance(client, ResilientLLM):
            out.update(client.stats.summary())
            out["breaker"] = client.breaker.snapshot()
        return out


class FittedZeroED:
    """A trained ZeroED pipeline: per-attribute detectors plus the
    frozen feature statistics needed to score tables without any LLM.

    Produced by :meth:`ZeroED.fit`.  Scoring the training table reuses
    the fit-time feature space (byte-identical masks to the historical
    ``detect``); any other table is featurized against the frozen
    training statistics through :class:`repro.serving.scorer.BatchScorer`.
    """

    def __init__(
        self,
        *,
        config: ZeroEDConfig,
        llm: LLMClient,
        table: Table,
        feature_space: FeatureSpace,
        detector: ErrorDetector,
        training: dict[str, AttributeTrainingData],
        stages: list[StageInfo],
        details: dict,
        ledger_summary: dict,
    ) -> None:
        self.config = config
        self.llm = llm
        self.table = table
        self.feature_space = feature_space
        self.detector = detector
        self.training = training
        self.stages = stages
        self.details = details
        self.ledger_summary = ledger_summary

    @property
    def attributes(self) -> list[str]:
        """Schema the detectors were fitted on (scoring requires it)."""
        return self.table.attributes

    # ------------------------------------------------------------------
    def score(self, table: Table) -> DetectionResult:
        """Score every cell of ``table`` with the fitted detectors.

        The training table itself goes through the fit-time feature
        space — one detector prediction pass, byte-identical to the
        single-shot ``detect`` masks.  Any other table routes through
        :meth:`scorer`, which featurizes its values against the frozen
        training statistics (zero LLM calls, no sampling).
        """
        if table is not self.table:
            return self.scorer().score_table(table)
        with trace.span(
            "predict", dataset=table.name, rows=table.n_rows
        ) as sp:
            mask = self.detector.predict(table, self.feature_space)
        stages = list(self.stages) + [StageInfo("predict", sp.seconds, 0, 0)]
        ledger = self.ledger_summary
        return DetectionResult(
            mask=mask,
            dataset=table.name,
            method=f"zeroed[{self.llm.model_name}]",
            stages=stages,
            n_llm_requests=ledger["requests"],
            input_tokens=ledger["input_tokens"],
            output_tokens=ledger["output_tokens"],
            details=dict(self.details),
        )

    # ------------------------------------------------------------------
    def scorer(self, n_jobs: int | None = None):
        """A :class:`~repro.serving.scorer.BatchScorer` over this fit.

        Shares the live featurizers and detector (no disk round-trip);
        bitwise-equal to a scorer loaded from :meth:`save`'s artifact.
        """
        from repro.serving.scorer import BatchScorer

        return BatchScorer.from_fitted(self, n_jobs=n_jobs)

    def save(self, path: str | Path) -> Path:
        """Persist this fit as a versioned on-disk detector artifact.

        Writes ``manifest.json`` + ``arrays.npz`` under ``path`` (see
        :mod:`repro.serving.artifact`); reload with
        :meth:`repro.serving.scorer.BatchScorer.from_artifact`.
        """
        from repro.serving.artifact import DetectorArtifact

        return DetectorArtifact.from_fitted(self).save(path)


def _context_row(
    table: Table, i: int, attr: str, correlated: list[str]
) -> dict[str, str]:
    row = {attr: table.cell(i, attr)}
    for q in correlated:
        row[q] = table.cell(i, q)
    return row
