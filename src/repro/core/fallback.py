"""Pattern/frequency-only fallback labeling for degraded attributes.

When every retry for an attribute's LLM labeling is exhausted, the
pipeline does not abort the multi-minute fit — it labels that
attribute's representatives from the table's own distribution facts
(the :class:`~repro.data.stats.AttributeStats` Step 1 already
computed) and lets the rest of the machinery (label propagation, MLP
training, prediction) run unchanged.  The heuristic flags the classic
statistical error signatures:

* missing-value placeholders;
* robust numeric outliers (MAD z-score + quantile span);
* rare values whose *format* is also rare in the column (broken
  patterns), excluding free-text columns where format rarity is
  meaningless;
* rare values a couple of edits away from a frequent value (typos).

It is deliberately the LLM-free subset of the signals the labeling
prompt exposes — strictly weaker than the model (no semantics, no
cross-attribute reasoning), which is the honest shape of degradation:
detection quality for the attribute drops toward a dboost-style
statistical detector instead of dropping to zero.
"""

from __future__ import annotations

from repro.data.errortypes import is_missing_placeholder
from repro.data.stats import AttributeStats


def heuristic_label(value: str, stats: AttributeStats) -> int:
    """0/1 error verdict for one cell value from distribution facts."""
    if is_missing_placeholder(value):
        return 1
    if stats.numeric.fraction >= 0.5 and stats.numeric.is_outlier(value):
        return 1
    n = max(stats.n_rows, 1)
    rare_count = max(2, round(0.002 * n))
    if stats.value_counts.get(value, 0) <= rare_count:
        free_text = stats.pattern_diversity() > 0.8
        if not free_text and stats.pattern_frequency(value, level=2) < 0.05:
            return 1
        if stats.nearest_frequent_value(value) is not None:
            return 1
    return 0


def heuristic_labels(
    values: list[str], stats: AttributeStats
) -> list[int]:
    """Vector form of :func:`heuristic_label` (one verdict per value)."""
    return [heuristic_label(v, stats) for v in values]
