"""Training data construction with mutual verification (Algorithm 1).

Per attribute: propagate LLM labels within clusters; refine criteria by
contrastive in-context prompting over the labeled clean/error values;
mutually verify — criteria must reach the accuracy threshold on
right-labeled data, then right-labeled data must pass the surviving
criteria; finally augment the minority error class with LLM-generated
semantic errors.  Outputs a balanced feature/label training set and the
refined criteria (which also replace the attribute's criteria feature
block, Fig. 3's "update criteria feat").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.config import ZeroEDConfig
from repro.criteria import Criterion, compile_criteria
from repro.core.featurize import FeatureSpace
from repro.core.sampling import SamplingResult
from repro.data.encoding import fold_codes
from repro.data.table import Table
from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import AUGMENT_PROMPT, CONTRASTIVE_CRITERIA_PROMPT
from repro.ml.rng import spawn


#: Clean-value slices for the augmentation request.  The *payload*
#: carries a wide sample — the (simulated) model's basis for drawing
#: realistic error variants, where more coverage means more diverse
#: augmentations — while the *prompt* embeds only a short prefix of
#: the same list: prompt text is token-billed per request, and thirty
#: examples are plenty for a real model to pick up the value format.
AUGMENT_PAYLOAD_CLEAN_VALUES = 200
AUGMENT_PROMPT_CLEAN_VALUES = 30


@dataclass
class VerificationOutcome:
    """Result of Algorithm 1's verification phase for one attribute."""

    attr: str
    propagated: dict[int, int]
    refined_criteria: list[Criterion] = field(default_factory=list)
    criteria_accuracies: dict[str, float] = field(default_factory=dict)
    """Accuracy on right-labeled data per *kept* criterion (by name) —
    the trust signal serving artifacts persist alongside the source."""

    n_propagated: int = 0
    n_removed: int = 0
    n_criteria_kept: int = 0
    n_criteria_dropped: int = 0


@dataclass
class AttributeTrainingData:
    """Balanced training set and provenance counters for one attribute."""

    attr: str
    features: np.ndarray
    labels: np.ndarray
    row_indices: list[int]
    """Source row per non-augmented example (aligned prefix of labels)."""

    n_propagated: int = 0
    n_removed_by_verification: int = 0
    n_augmented: int = 0
    n_criteria_kept: int = 0
    n_criteria_dropped: int = 0
    refined_criteria: list[Criterion] = field(default_factory=list)
    criteria_accuracies: dict[str, float] = field(default_factory=dict)


def propagate_labels(
    sampling: SamplingResult,
    llm_labels: dict[int, int],
    evidence: np.ndarray | list | None = None,
) -> dict[int, int]:
    """Spread each representative's label within its cluster (line 1).

    Clean labels propagate cluster-wide (and are subsequently checked by
    the mutual-verification step).  Error labels propagate only to
    cluster members carrying the *same evidence* — the same cell value
    and correlated-attribute context — when ``evidence`` keys are given:
    identical evidence forces an identical verdict, whereas an erroneous
    representative says little about differently-valued neighbours, and
    Algorithm 1 never re-verifies propagated *error* labels, so
    unrestricted error propagation poisons the minority class on
    high-cardinality attributes (and mislabels context-dependent errors,
    where one value is clean in one row and a rule violation in
    another).

    Cluster membership comes from one stable argsort group-by over
    ``cluster_labels`` (members in ascending row order, matching the
    historical per-cluster ``nonzero`` scan) instead of k full-column
    scans.  ``evidence`` is ideally an int64 code array (see
    ``fold_codes``) so the equality filter is one vectorized compare;
    any other sequence falls back to per-member Python equality.
    """
    labels_arr = sampling.cluster_labels
    order = np.argsort(labels_arr, kind="stable")
    sorted_labels = labels_arr[order]
    group_ids, starts = np.unique(sorted_labels, return_index=True)
    ends = np.append(starts[1:], len(order))
    groups = {
        int(cid): order[start:end]
        for cid, start, end in zip(
            group_ids.tolist(), starts.tolist(), ends.tolist()
        )
    }
    vector_evidence = isinstance(evidence, np.ndarray)
    out: dict[int, int] = {}
    for cluster_id, rep_index in sampling.representative_of.items():
        label = llm_labels.get(rep_index)
        if label is None:
            continue
        members = groups.get(int(cluster_id))
        if members is None:
            continue
        if label == 1 and evidence is not None:
            if vector_evidence:
                members = members[
                    evidence[members] == evidence[rep_index]
                ].tolist()
            else:
                rep_key = evidence[rep_index]
                members = [
                    i for i in members.tolist() if evidence[i] == rep_key
                ]
        else:
            members = members.tolist()
        for i in members:
            out[i] = label
    out.update(llm_labels)  # LLM labels take precedence over propagation
    return out


def _context_row(
    table: Table, i: int, attr: str, correlated: list[str]
) -> dict[str, str]:
    row = {attr: table.cell(i, attr)}
    for q in correlated:
        row[q] = table.cell(i, q)
    return row


def refine_criteria(
    llm: LLMClient,
    table: Table,
    attr: str,
    error_rows: list[dict[str, str]],
    clean_rows: list[dict[str, str]],
    correlated: list[str],
) -> list[Criterion]:
    """Contrastive in-context criteria refinement (lines 4-7).

    Both sides carry their correlated-attribute context: a criterion
    like "brewery_id determines brewery_name" can only be judged
    against errors *in their rows*, not as bare values.
    """
    error_values = [row.get(attr, "") for row in error_rows]
    clean_values = [row.get(attr, "") for row in clean_rows]
    prompt = CONTRASTIVE_CRITERIA_PROMPT.format(
        attr=attr,
        dataset=table.name,
        error_values=error_values[:50],
        clean_values=clean_values[:50],
    )
    response = llm.complete(
        LLMRequest(
            kind="contrastive_criteria",
            prompt=prompt,
            payload={
                "dataset": table.name,
                "attr": attr,
                "error_values": error_values,
                "error_rows": error_rows,
                "clean_rows": clean_rows,
                "correlated": correlated,
            },
        )
    )
    return compile_criteria(attr, response.payload or [])


def verify_attribute(
    llm: LLMClient,
    table: Table,
    attr: str,
    feature_space: FeatureSpace,
    sampling: SamplingResult,
    llm_labels: dict[int, int],
    correlated: list[str],
    config: ZeroEDConfig,
    on_failure: Callable[[str, LLMError], None] | None = None,
) -> VerificationOutcome:
    """Algorithm 1's verification phase (lines 1-24) for one attribute.

    Mutates the feature space (refined criteria replace the attribute's
    criteria block), so run this for *every* attribute before assembling
    any training features — unified representations concatenate other
    attributes' base features, and their dimensions must be final.

    ``on_failure`` enables graceful degradation: a failed contrastive
    refinement (retries already exhausted underneath) proceeds with no
    refinement candidates — the initial criteria still go through the
    verification gauntlet, so the attribute keeps its verified feature
    block.  Without the callback the failure propagates.
    """
    if config.propagate_labels:
        # Evidence keys only need equality semantics, so one folded
        # int64 code array stands in for the (value, context...) string
        # tuples and the same-evidence filter becomes a vectorized
        # compare.
        evidence = fold_codes(
            [table.encoding(attr)]
            + [
                table.encoding(q)
                for q in correlated
                if q in table.attributes
            ]
        )
        propagated = propagate_labels(sampling, llm_labels, evidence=evidence)
    else:
        propagated = dict(llm_labels)
    outcome = VerificationOutcome(
        attr=attr, propagated=propagated, n_propagated=len(propagated)
    )
    if not (config.use_verification and propagated):
        return outcome
    error_rows = [
        _context_row(table, i, attr, correlated)
        for i, lab in sorted(llm_labels.items())
        if lab == 1
    ]
    # Contrastive basis: the propagated right-labeled rows ("the
    # propagated labeled samples" the paper cross-checks the evolving
    # criteria against).  The raw LLM-labeled sample is too small to
    # cover cross-attribute mappings (tens of rows for hundreds of
    # lhs groups), which would leave consistency criteria blind.
    clean_sample = [i for i, lab in propagated.items() if lab == 0]
    if len(clean_sample) > 400:
        rng = spawn(config.seed, f"contrastive/{attr}")
        picked = rng.choice(len(clean_sample), size=400, replace=False)
        clean_sample = [clean_sample[int(k)] for k in sorted(picked)]
    clean_rows = [
        _context_row(table, i, attr, correlated) for i in clean_sample
    ]
    if error_rows and clean_rows:
        try:
            candidates = refine_criteria(
                llm, table, attr, error_rows, clean_rows, correlated
            )
        except LLMError as exc:
            if on_failure is None:
                raise
            on_failure(attr, exc)
            candidates = []
    else:
        candidates = []
    # Verify criteria against propagated right labels (lines 8-14):
    # each criterion evaluates once per distinct (value, context)
    # combo over the right-labeled rows and its accuracy is the mean
    # of the scattered verdicts — no per-row dicts, no defensive
    # copies.
    right_idx = [i for i, lab in propagated.items() if lab == 0]
    # The evolving criteria set = contrastive refinements plus the
    # surviving initial criteria (deduplicated by name, refinements
    # first), all verified against the right-labeled data.
    initial = (
        feature_space.featurizers[attr].criteria
        if config.use_criteria_features
        else []
    )
    merged: dict[str, Criterion] = {}
    for crit in list(candidates) + list(initial):
        merged.setdefault(crit.name, crit)
    refined: list[Criterion] = []
    trusted_verdicts: list[np.ndarray] = []
    for crit in merged.values():
        verdicts = crit.evaluate_rows(table, right_idx, context=correlated)
        accuracy = float(verdicts.mean()) if right_idx else 0.0
        if accuracy >= config.criteria_accuracy_threshold:
            refined.append(crit)
            outcome.criteria_accuracies[crit.name] = accuracy
            outcome.n_criteria_kept += 1
            if accuracy >= config.data_verify_accuracy:
                trusted_verdicts.append(verdicts)
        else:
            outcome.n_criteria_dropped += 1
    # Verify right-labeled data against the *trusted* criteria
    # (lines 15-20): drop rows failing most checks.  Noisier criteria
    # stay as features but must not delete training rows.  One stacked
    # boolean matrix reduction replaces the per-row re-checks (the
    # verdicts are already in hand from the accuracy pass).
    if trusted_verdicts:
        pass_counts = np.sum(trusted_verdicts, axis=0)
        n_trusted = len(trusted_verdicts)
        for pos, i in enumerate(right_idx):
            if int(pass_counts[pos]) / n_trusted < config.data_pass_threshold:
                del propagated[i]
                outcome.n_removed += 1
    # Fig. 3: refined criteria replace the criteria feature block.
    if refined and config.use_criteria_features:
        feature_space.featurizers[attr].set_criteria(refined)
        feature_space.invalidate(attr)
    outcome.refined_criteria = refined
    return outcome


def assemble_training_data(
    llm: LLMClient,
    table: Table,
    attr: str,
    feature_space: FeatureSpace,
    outcome: VerificationOutcome,
    correlated: list[str],
    config: ZeroEDConfig,
    on_failure: Callable[[str, LLMError], None] | None = None,
) -> AttributeTrainingData:
    """Assemble features/labels and augment (Algorithm 1 lines 25-27).

    ``on_failure`` enables graceful degradation: a failed augmentation
    request trains on the unaugmented (imbalanced) propagated set
    instead of aborting.  Without the callback the failure propagates.
    """
    propagated = outcome.propagated
    col = table.column_view(attr)
    unified = feature_space.unified_matrix(attr)
    row_indices = sorted(propagated)
    # The propagated block is gathered straight into the output matrix
    # once the augmented row count is known (below) — one copy instead
    # of the historical gather-then-vstack two.
    labels = (
        [np.array([propagated[i] for i in row_indices], dtype=float)]
        if row_indices
        else []
    )
    aug_features: np.ndarray | None = None
    n_augmented = 0
    if config.use_verification and row_indices:
        n_err = int(sum(propagated[i] for i in row_indices))
        n_right = len(row_indices) - n_err
        needed = int(max(0, (n_right - n_err)) * config.augment_ratio)
        needed = min(needed, 4 * max(n_right, 1))
        if needed > 0 and n_right > 0:
            clean_indices = [i for i in row_indices if propagated[i] == 0]
            rng = spawn(config.seed, f"augment/{attr}")
            source_rows = [
                int(clean_indices[int(k)])
                for k in rng.integers(0, len(clean_indices), size=needed)
            ]
            clean_values = [
                col[i]
                for i in clean_indices[:AUGMENT_PAYLOAD_CLEAN_VALUES]
            ]
            try:
                response = llm.complete(
                    LLMRequest(
                        kind="augment",
                        prompt=AUGMENT_PROMPT.format(
                            attr=attr,
                            dataset=table.name,
                            n=needed,
                            clean_values=clean_values[
                                :AUGMENT_PROMPT_CLEAN_VALUES
                            ],
                            error_desc="typos, format breaks, magnitude "
                            "shifts, placeholders observed in the labeled "
                            "errors",
                        ),
                        payload={
                            "dataset": table.name,
                            "attr": attr,
                            "clean_values": clean_values,
                            "n": needed,
                        },
                    )
                )
                generated = list(response.payload or [])
            except LLMError as exc:
                if on_failure is None:
                    raise
                on_failure(attr, exc)
                generated = []
            featurizer = feature_space.featurizers[attr]
            check_criteria = outcome.refined_criteria or featurizer.criteria
            rare = max(2, round(0.002 * table.n_rows))
            # Verify augmented errors before use: the variant must
            # differ from its source, and must actually *look*
            # erroneous — fail at least one criterion or be rare in
            # the column.  A frequent value passing every check is a
            # failed augmentation (the LLM returned clean data).  The
            # checks and the featurization both run batched — criteria
            # evaluate once per distinct (value, context) combo and
            # features fold per unique value — bit-identical to the
            # retained per-value loop (tests/_reference_assembly.py).
            cand_values: list[str] = []
            cand_rows: list[dict[str, str]] = []
            cand_srcs: list[int] = []
            corr_cols = [(q, table.column_view(q)) for q in correlated]
            for value, src in zip(generated, source_rows):
                if value == col[src]:
                    continue
                row = {attr: value}
                for q, q_col in corr_cols:
                    row[q] = q_col[src]
                cand_values.append(value)
                cand_rows.append(row)
                cand_srcs.append(src)
            n_cand = len(cand_values)
            keep = np.zeros(n_cand, dtype=bool)
            if check_criteria and n_cand:
                # Short-circuit like the per-value ``any(not c.check)``:
                # a candidate failing a criterion is kept and never
                # consults later criteria, so the batch evaluates the
                # same (criterion, combo) pairs as the per-value loop.
                pending = np.arange(n_cand)
                for c in check_criteria:
                    passed = c.evaluate_values(
                        [cand_values[p] for p in pending.tolist()],
                        [cand_rows[p] for p in pending.tolist()],
                    )
                    keep[pending[~passed]] = True
                    pending = pending[passed]
                    if pending.size == 0:
                        break
            counts = featurizer.stats.value_counts
            for pos in np.nonzero(~keep)[0].tolist():
                if counts.get(cand_values[pos], 0) <= rare:
                    keep[pos] = True
            kept = np.nonzero(keep)[0].tolist()
            if kept:
                aug_features = feature_space.unified_rows(
                    attr,
                    [cand_values[k] for k in kept],
                    [cand_rows[k] for k in kept],
                    [cand_srcs[k] for k in kept],
                )
                labels.append(np.ones(len(kept)))
                n_augmented = len(kept)

    if row_indices:  # augmentation only ever runs with labeled rows
        n_prop = len(row_indices)
        feature_matrix = np.empty(
            (n_prop + n_augmented, unified.shape[1])
        )
        np.take(
            unified,
            np.asarray(row_indices, dtype=np.intp),
            axis=0,
            out=feature_matrix[:n_prop],
        )
        if aug_features is not None:
            feature_matrix[n_prop:] = aug_features
        label_vector = np.concatenate(labels)
    else:
        feature_matrix = np.zeros((0, unified.shape[1]))
        label_vector = np.zeros(0)
    return AttributeTrainingData(
        attr=attr,
        features=feature_matrix,
        labels=label_vector,
        row_indices=row_indices,
        n_propagated=outcome.n_propagated,
        n_removed_by_verification=outcome.n_removed,
        n_augmented=n_augmented,
        n_criteria_kept=outcome.n_criteria_kept,
        n_criteria_dropped=outcome.n_criteria_dropped,
        refined_criteria=outcome.refined_criteria,
        criteria_accuracies=dict(outcome.criteria_accuracies),
    )


def construct_training_data(
    llm: LLMClient,
    table: Table,
    attr: str,
    feature_space: FeatureSpace,
    sampling: SamplingResult,
    llm_labels: dict[int, int],
    correlated: list[str],
    config: ZeroEDConfig,
) -> AttributeTrainingData:
    """Run the full Algorithm 1 for a *single* attribute.

    Convenience wrapper for tests and single-attribute use.  The
    pipeline itself runs :func:`verify_attribute` for every attribute
    first and only then :func:`assemble_training_data`, because
    verification mutates feature dimensions that other attributes'
    unified representations depend on.
    """
    outcome = verify_attribute(
        llm, table, attr, feature_space, sampling, llm_labels,
        correlated, config,
    )
    return assemble_training_data(
        llm, table, attr, feature_space, outcome, correlated, config
    )
