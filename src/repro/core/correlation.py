"""Correlated-attribute selection via normalised mutual information.

§III-B: for each attribute, the top-k attributes by NMI form its
correlative set ``R_a``, providing focused context for features,
labeling prompts and rule-violation reasoning.  On large tables NMI is
estimated on a seeded row subsample — value co-occurrence statistics
stabilise quickly, and this keeps the 200k-row Tax workload cheap.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.ml.nmi import normalized_mutual_information
from repro.ml.rng import RngLike, spawn


def nmi_matrix(
    table: Table, max_rows: int = 20_000, seed: RngLike = 0
) -> dict[tuple[str, str], float]:
    """Pairwise NMI between all attributes (symmetric dict)."""
    attrs = table.attributes
    if table.n_rows > max_rows:
        rng = spawn(seed, "nmi/subsample")
        idx = np.sort(rng.choice(table.n_rows, size=max_rows, replace=False))
        sub = table.select_rows(idx.tolist())
    else:
        sub = table
    columns = {a: sub.column_view(a) for a in attrs}
    out: dict[tuple[str, str], float] = {}
    for i, a in enumerate(attrs):
        for b in attrs[i + 1 :]:
            score = normalized_mutual_information(columns[a], columns[b])
            out[(a, b)] = score
            out[(b, a)] = score
    return out


def correlated_attributes(
    table: Table,
    k: int,
    max_rows: int = 20_000,
    seed: RngLike = 0,
) -> dict[str, list[str]]:
    """Top-k NMI partners for every attribute.

    Ties break lexicographically so runs are deterministic.  ``k`` is
    clipped to the number of other attributes.
    """
    attrs = table.attributes
    if k <= 0 or len(attrs) < 2:
        return {a: [] for a in attrs}
    matrix = nmi_matrix(table, max_rows=max_rows, seed=seed)
    out: dict[str, list[str]] = {}
    for a in attrs:
        scored = sorted(
            ((matrix[(a, b)], b) for b in attrs if b != a),
            key=lambda t: (-t[0], t[1]),
        )
        out[a] = [b for _, b in scored[: min(k, len(scored))]]
    return out
