"""Repair suggestion for detected errors (extension beyond the paper).

ZeroED stops at detection; the cleaning systems it cites (Baran,
HoloClean, Horizon) continue to repair.  This module closes the loop
with transparent, evidence-ranked suggestions per flagged cell:

* **dependency vote** — the majority value determined by the strongest
  correlated attribute (fixes rule violations and many swaps);
* **near-duplicate** — the frequent column value within small edit
  distance (fixes typos);
* **mode imputation** — the column's most frequent value, offered for
  missing cells in low-cardinality columns.

Each suggestion carries its source and a confidence in [0, 1], so a
human (or downstream repair model) can triage.  ``apply_repairs``
writes accepted suggestions into a copy of the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.errortypes import is_missing_placeholder
from repro.data.mask import ErrorMask
from repro.data.stats import AttributeStats, PairStats
from repro.data.table import Table
from repro.ml.nmi import normalized_mutual_information


@dataclass(frozen=True)
class RepairSuggestion:
    """One candidate fix for a flagged cell."""

    row: int
    attr: str
    current: str
    suggestion: str
    confidence: float
    source: str  # 'dependency', 'near_duplicate', or 'mode'

    def __str__(self) -> str:
        return (
            f"({self.row}, {self.attr}): {self.current!r} -> "
            f"{self.suggestion!r} [{self.source}, {self.confidence:.2f}]"
        )


class RepairSuggester:
    """Evidence-ranked repair suggestions for a detection mask."""

    def __init__(
        self,
        table: Table,
        min_confidence: float = 0.5,
        max_partners: int = 2,
    ) -> None:
        self.table = table
        self.min_confidence = min_confidence
        self._stats = {
            attr: AttributeStats.compute(table, attr)
            for attr in table.attributes
        }
        self._partners = self._pick_partners(max_partners)

    # ------------------------------------------------------------------
    def _pick_partners(self, k: int) -> dict[str, list[str]]:
        attrs = self.table.attributes
        out: dict[str, list[str]] = {}
        columns = {a: self.table.column_view(a) for a in attrs}
        for attr in attrs:
            scored = sorted(
                (
                    (normalized_mutual_information(columns[q], columns[attr]), q)
                    for q in attrs
                    if q != attr
                ),
                key=lambda t: (-t[0], t[1]),
            )
            out[attr] = [q for score, q in scored[:k] if score > 0.3]
        return out

    def _pairs(self, lhs: str, rhs: str) -> PairStats:
        # Memoized on the table itself (shared with labeling/profiling,
        # invalidated by set_cell) rather than on this suggester.
        return self.table.pair_stats(lhs, rhs)

    # ------------------------------------------------------------------
    def suggest_cell(self, row: int, attr: str) -> RepairSuggestion | None:
        """Best suggestion for one cell, or None below the bar."""
        current = self.table.cell(row, attr)
        stats = self._stats[attr]
        candidates: list[RepairSuggestion] = []
        # Dependency vote from the strongest partner with a confident
        # majority for this row's partner value.
        for partner in self._partners[attr]:
            ps = self._pairs(partner, attr)
            entry = ps.majority.get(self.table.cell(row, partner))
            if entry is None:
                continue
            value, size, share = entry
            if size >= 3 and value != current:
                candidates.append(
                    RepairSuggestion(
                        row=row, attr=attr, current=current,
                        suggestion=value,
                        confidence=share * min(1.0, size / 10),
                        source="dependency",
                    )
                )
        # Near-duplicate frequent value (typo repair).
        if current and not is_missing_placeholder(current):
            near = stats.nearest_frequent_value(current)
            if near is not None:
                near_count = stats.value_counts.get(near, 0)
                candidates.append(
                    RepairSuggestion(
                        row=row, attr=attr, current=current,
                        suggestion=near,
                        confidence=min(0.9, 0.5 + near_count / stats.n_rows),
                        source="near_duplicate",
                    )
                )
        # Mode imputation for missing cells in enum-like columns.
        if is_missing_placeholder(current) and stats.is_categorical():
            top = stats.top_values(1)
            if top:
                candidates.append(
                    RepairSuggestion(
                        row=row, attr=attr, current=current,
                        suggestion=top[0],
                        confidence=0.5 * stats.value_frequency(top[0]),
                        source="mode",
                    )
                )
        candidates = [
            c for c in candidates if c.confidence >= self.min_confidence
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.confidence)

    def suggest(self, mask: ErrorMask) -> list[RepairSuggestion]:
        """Suggestions for every flagged cell that clears the bar."""
        out = []
        for row, attr in mask.error_cells():
            suggestion = self.suggest_cell(row, attr)
            if suggestion is not None:
                out.append(suggestion)
        return out


def apply_repairs(
    table: Table, suggestions: list[RepairSuggestion]
) -> Table:
    """Return a copy of ``table`` with the suggestions applied."""
    repaired = table.copy()
    for s in suggestions:
        repaired.set_cell(s.row, s.attr, s.suggestion)
    return repaired
