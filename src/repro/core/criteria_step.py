"""Initial error-checking criteria reasoning (paper §III-B).

For each attribute, randomly sampled tuples are serialized into the
criteria-reasoning prompt; the LLM returns executable checking
functions which are compiled into :class:`~repro.criteria.Criterion`
objects and drive the binary criteria feature block.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import ZeroEDConfig
from repro.criteria import Criterion, compile_criteria
from repro.data.table import Table
from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import CRITERIA_PROMPT, ERROR_DESCRIPTIONS, serialize_rows
from repro.ml.rng import spawn


def generate_initial_criteria(
    llm: LLMClient,
    table: Table,
    correlated: dict[str, list[str]],
    config: ZeroEDConfig,
    on_failure: Callable[[str, LLMError], None] | None = None,
) -> dict[str, list[Criterion]]:
    """LLM-derived criteria for every attribute of ``table``.

    ``on_failure`` enables per-attribute graceful degradation: when an
    attribute's criteria request fails (retries already exhausted by
    the resilience layer), the callback records it and the attribute
    proceeds with an empty criteria set — its feature vector keeps the
    statistical/pattern/semantic blocks.  Without the callback a
    failure aborts, the historical behaviour.  Row samples are drawn
    from one sequential stream either way, so the surviving
    attributes' prompts are byte-identical to a failure-free run.
    """
    rng = spawn(config.seed, "criteria/sample")
    n = table.n_rows
    sample_size = min(config.criteria_sample_size, n)
    out: dict[str, list[Criterion]] = {}
    for attr in table.attributes:
        idx = rng.choice(n, size=sample_size, replace=False)
        rows = [table.row(int(i)) for i in idx]
        prompt = CRITERIA_PROMPT.format(
            attr=attr,
            dataset=table.name,
            samples=serialize_rows(rows),
            error_descriptions=ERROR_DESCRIPTIONS,
            correlated=correlated.get(attr, []),
        )
        try:
            response = llm.complete(
                LLMRequest(
                    kind="criteria",
                    prompt=prompt,
                    payload={
                        "dataset": table.name,
                        "attr": attr,
                        "sample_rows": rows,
                        "correlated": correlated.get(attr, []),
                    },
                )
            )
        except LLMError as exc:
            if on_failure is None:
                raise
            on_failure(attr, exc)
            out[attr] = []
            continue
        out[attr] = compile_criteria(attr, response.payload or [])
    return out
