"""Feature representation with criteria reasoning (paper §III-B).

Each cell value gets a *base* feature vector with three blocks:

* **statistics** — value frequency, the three pattern-generalisation
  frequencies (L1/L2/L3), and vicinity frequencies P(value | correlated
  attribute's value) for each correlated attribute;
* **semantic** — a subword-hash embedding (FastText substitute);
* **criteria** — one binary feature per LLM-generated error-checking
  criterion, the value's adherence after execution.

The *unified* representation concatenates a cell's base vector with the
base vectors of its top-k NMI-correlated attributes' values in the same
tuple.  Ablation switches on :class:`~repro.config.ZeroEDConfig`
disable individual blocks (Table IV's w/o Crit. / w/o Corr., plus
extension switches for the other blocks).

Every block is a pure function of the cell value (plus a few context
cells), so the whole-column fast path works at *unique-value* level on
the table's interned codes (:mod:`repro.data.encoding`): frequency and
pattern features are computed once per distinct value and scattered to
rows with ``feats[codes]``, vicinity frequencies come from sparse
joint counts over ``(codes_q, codes_attr)`` pairs, and embeddings and
criteria likewise evaluate distinct values/combos only.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

import numpy as np

from repro.config import ZeroEDConfig
from repro.criteria import Criterion
from repro.data.encoding import ColumnEncoding, joint_counts
from repro.data.stats import AttributeStats
from repro.data.table import Table
from repro.text.embeddings import SubwordHashEmbedding
from repro.text.patterns import all_levels


class AttributeFeaturizer:
    """Base-feature computation for one attribute.

    Built from the dirty table itself (frequencies, patterns) plus the
    compiled criteria; can featurise both existing cells (fast path,
    whole-column) and ad-hoc values (augmented training examples).
    """

    def __init__(
        self,
        table: Table,
        attr: str,
        stats: AttributeStats,
        correlated: list[str],
        embedding: SubwordHashEmbedding | None,
        criteria: list[Criterion],
        config: ZeroEDConfig,
    ) -> None:
        self.attr = attr
        self.stats = stats
        self.correlated = list(correlated)
        self.embedding = embedding
        self.criteria = list(criteria)
        self.config = config
        self._n_rows = table.n_rows
        # Pattern frequency tables at the three generalisation levels,
        # accumulated over distinct values in one pass.
        counters: tuple[Counter, Counter, Counter] = (Counter(), Counter(), Counter())
        for value, count in stats.value_counts.items():
            for counter, pattern in zip(counters, all_levels(value)):
                counter[pattern] += count
        self._pattern_counts: list[Counter] = list(counters)
        # Vicinity co-occurrence: for each correlated attribute q,
        # count(v_attr | v_q) and count(v_q), derived from the sparse
        # joint counts of the interned (codes_q, codes_attr) pairs.
        # `_vicinity_joint` holds the code-level facts; the per-row
        # ratio columns for the construction table are precomputed in
        # `_vicinity_fast` (`counts[inverse] / counts_of_lhs`); the
        # string-keyed lookup dicts that ad-hoc values and foreign
        # tables need are built lazily in `_vicinity`.
        self._enc_a = table.encoding(attr)
        self._vicinity_joint: dict[str, tuple] = {}
        self._vicinity_fast: dict[str, np.ndarray] = {}
        self._vicinity_dicts: dict[str, tuple[dict, dict]] | None = None
        if config.use_statistical_features and config.use_correlated_features:
            enc_a = self._enc_a
            for q in self.correlated:
                enc_q = table.encoding(q)
                q_codes, a_codes, counts, inverse = joint_counts(enc_q, enc_a)
                self._vicinity_joint[q] = (enc_q, q_codes, a_codes, counts)
                denom = enc_q.counts[enc_q.codes].astype(float)
                self._vicinity_fast[q] = counts[inverse] / denom

    @classmethod
    def from_frozen(
        cls,
        attr: str,
        value_counts: Mapping[str, int],
        n_rows: int,
        correlated: list[str],
        vicinity: Mapping[str, tuple[Mapping, Mapping]],
        embedding: SubwordHashEmbedding | None,
        criteria: list[Criterion],
        config: ZeroEDConfig,
    ) -> "AttributeFeaturizer":
        """Rebuild a featurizer from frozen training statistics.

        The serving path: no training table exists, only the facts a
        fitted featurizer derived from one — the value frequency table,
        the training row count, and the string-keyed vicinity lookup
        dicts (``q -> (pair_counts, lhs_counts)``).  The result
        featurizes *foreign* tables and ad-hoc values exactly like the
        original featurizer does (the original also falls back to the
        string-keyed vicinity tables whenever a table's encodings are
        not the construction table's own), so scores are bit-identical.
        """
        self = cls.__new__(cls)
        self.attr = attr
        stats = AttributeStats(attr=attr, n_rows=n_rows)
        stats.value_counts = Counter(dict(value_counts))
        self.stats = stats
        self.correlated = list(correlated)
        self.embedding = embedding
        self.criteria = list(criteria)
        self.config = config
        self._n_rows = n_rows
        counters: tuple[Counter, Counter, Counter] = (
            Counter(), Counter(), Counter(),
        )
        for value, count in stats.value_counts.items():
            for counter, pattern in zip(counters, all_levels(value)):
                counter[pattern] += count
        self._pattern_counts = list(counters)
        # No construction-table encodings exist, so the whole-column
        # vicinity fast path can never trigger (`enc_a is self._enc_a`
        # short-circuits on None) and every evaluation routes through
        # the string-keyed `_vicinity` tables.  `_vicinity_joint` keeps
        # the vicinity attribute *order* (it drives column layout) with
        # placeholder values that the fast path never dereferences.
        self._enc_a = None
        self._vicinity_joint = {q: None for q in vicinity}
        self._vicinity_fast = {}
        self._vicinity_dicts = {
            q: (dict(pair_counts), dict(lhs_counts))
            for q, (pair_counts, lhs_counts) in vicinity.items()
        }
        return self

    def export_frozen(self) -> dict:
        """The statistics :meth:`from_frozen` needs, as plain dicts."""
        return {
            "value_counts": dict(self.stats.value_counts),
            "n_rows": self._n_rows,
            "correlated": list(self.correlated),
            "vicinity": {
                q: (dict(pair_counts), dict(lhs_counts))
                for q, (pair_counts, lhs_counts) in self._vicinity.items()
            },
        }

    @property
    def _vicinity(self) -> dict[str, tuple[dict, dict]]:
        """String-keyed vicinity tables ``q -> (pair_counts, lhs_counts)``.

        Built on first use from the code-level joint counts; only
        ad-hoc featurisation (`base_vector`) and foreign tables need
        these — whole-column calls on the construction table stay at
        code level.
        """
        if self._vicinity_dicts is None:
            enc_a = self._enc_a
            out: dict[str, tuple[dict, dict]] = {}
            for q, (enc_q, q_codes, a_codes, counts) in self._vicinity_joint.items():
                pair_counts = {
                    (enc_q.uniques[qc], enc_a.uniques[ac]): c
                    for qc, ac, c in zip(
                        q_codes.tolist(), a_codes.tolist(), counts.tolist()
                    )
                }
                lhs_counts = dict(zip(enc_q.uniques, enc_q.counts.tolist()))
                out[q] = (pair_counts, lhs_counts)
            self._vicinity_dicts = out
        return self._vicinity_dicts

    # ------------------------------------------------------------------
    @property
    def base_dim(self) -> int:
        dim = 0
        if self.config.use_statistical_features:
            dim += 4 + len(self._vicinity_joint)
        if self.config.use_semantic_features and self.embedding is not None:
            dim += self.embedding.dim
        if self.config.use_criteria_features:
            dim += len(self.criteria)
        # With every block disabled, base_matrix emits a single zero
        # column so downstream shapes stay valid; mirror that here.
        return max(dim, 1)

    def set_criteria(self, criteria: list[Criterion]) -> None:
        """Swap in refined criteria (Algorithm 1's 'update criteria feat')."""
        self.criteria = list(criteria)

    # ------------------------------------------------------------------
    def base_matrix(self, table: Table) -> np.ndarray:
        """Base features for every row of ``table``'s ``attr`` column.

        Works per *unique* value on the table's interned codes and
        scatters back to rows — O(n_unique) Python work plus O(n_rows)
        NumPy gathers.  The frequency/vicinity statistics always come
        from the construction table; ``table``'s codes only say which
        rows carry which value.
        """
        n = table.n_rows
        enc_a = table.encoding(self.attr)
        config = self.config
        use_semantic = config.use_semantic_features and self.embedding is not None
        width = 0
        any_block = False
        if config.use_statistical_features:
            width += 4 + len(self._vicinity_joint)
            any_block = True
        if use_semantic:
            width += self.embedding.dim
            any_block = True
        if config.use_criteria_features:
            width += len(self.criteria)
            any_block = True
        if not any_block:
            return np.zeros((n, 1))
        # Fill one preallocated matrix instead of hstacking blocks —
        # the block matrices are wide, and hstack would copy them all
        # a second time.
        out = np.empty((n, width))
        col = 0
        if config.use_statistical_features:
            uniq_freqs = np.asarray(
                [self._frequency_features(u) for u in enc_a.uniques]
            ).reshape(enc_a.n_unique, 4)
            out[:, :4] = uniq_freqs[enc_a.codes]
            for k, q in enumerate(self._vicinity_joint):
                same_encodings = (
                    enc_a is self._enc_a
                    and table.encoding(q) is self._vicinity_joint[q][0]
                )
                if same_encodings:
                    out[:, 4 + k] = self._vicinity_fast[q]
                else:
                    out[:, 4 + k] = self._vicinity_column(table, q, enc_a)
            col = 4 + len(self._vicinity_joint)
        if use_semantic:
            dim = self.embedding.dim
            out[:, col : col + dim] = self.embedding.embed_uniques(
                enc_a.uniques
            )[enc_a.codes]
            col += dim
        if config.use_criteria_features:
            for c in self.criteria:
                out[:, col] = c.evaluate_column(table)
                col += 1
        return out

    def _vicinity_column(self, table: Table, q: str, enc_a) -> np.ndarray:
        """P(value | q's value) per row, via distinct (q, attr) pairs."""
        pair_counts, lhs_counts = self._vicinity[q]
        enc_q = table.encoding(q)
        q_codes, a_codes, _, inverse = joint_counts(enc_q, enc_a)
        numer = np.asarray(
            [
                pair_counts.get((enc_q.uniques[qc], enc_a.uniques[ac]), 0)
                for qc, ac in zip(q_codes.tolist(), a_codes.tolist())
            ],
            dtype=float,
        )
        denom_u = np.asarray(
            [lhs_counts.get(u, 0) for u in enc_q.uniques], dtype=float
        )
        denom = denom_u[enc_q.codes]
        safe = denom > 0
        out = np.zeros(table.n_rows)
        np.divide(numer[inverse], denom, out=out, where=safe)
        return out

    def base_vector(self, value: str, row: dict[str, str]) -> np.ndarray:
        """Base features for an ad-hoc value in a row context."""
        blocks: list[np.ndarray] = []
        if self.config.use_statistical_features:
            stat = list(self._frequency_features(value))
            for q in self._vicinity:
                pair_counts, lhs_counts = self._vicinity[q]
                lhs = row.get(q, "")
                denom = lhs_counts.get(lhs, 0)
                stat.append(
                    pair_counts.get((lhs, value), 0) / denom if denom else 0.0
                )
            blocks.append(np.array(stat))
        if self.config.use_semantic_features and self.embedding is not None:
            blocks.append(self.embedding.embed(value))
        if self.config.use_criteria_features:
            context = dict(row)
            context[self.attr] = value
            blocks.append(
                np.array([float(c.check(context)) for c in self.criteria])
            )
        if not blocks:
            return np.zeros(1)
        return np.concatenate(blocks)

    def base_rows(
        self,
        values: Sequence[str],
        rows: Sequence[Mapping[str, str]],
    ) -> np.ndarray:
        """Base features for ad-hoc ``(value, row-context)`` pairs.

        The batch form of :meth:`base_vector` — bit-identical output,
        assembled with the interning treatment instead of one
        concatenate per pair: frequency/pattern and embedding features
        are pure functions of the value, so they are computed once per
        *unique* value and scattered to pairs with one gather; vicinity
        ratios depend on the row context and stay per-pair (two dict
        lookups each); criteria evaluate through
        :meth:`~repro.criteria.Criterion.evaluate_values`, once per
        distinct (value, context) combo.
        """
        n = len(values)
        if n != len(rows):
            raise ValueError("values and rows must align")
        config = self.config
        use_semantic = (
            config.use_semantic_features and self.embedding is not None
        )
        if not (
            config.use_statistical_features
            or use_semantic
            or config.use_criteria_features
        ):
            return np.zeros((n, 1))
        # Factorize the ad-hoc values like any table column.
        enc = ColumnEncoding.from_values(list(values))
        codes, uniques = enc.codes, enc.uniques
        width = 0
        if config.use_statistical_features:
            width += 4 + len(self._vicinity_joint)
        if use_semantic:
            width += self.embedding.dim
        if config.use_criteria_features:
            width += len(self.criteria)
        out = np.empty((n, width))
        col = 0
        if config.use_statistical_features:
            uniq_freqs = np.asarray(
                [self._frequency_features(u) for u in uniques]
            ).reshape(len(uniques), 4)
            out[:, :4] = uniq_freqs[codes]
            col = 4
            for q in self._vicinity:
                pair_counts, lhs_counts = self._vicinity[q]
                column = out[:, col]
                for pos, (value, row) in enumerate(zip(values, rows)):
                    lhs = row.get(q, "")
                    denom = lhs_counts.get(lhs, 0)
                    column[pos] = (
                        pair_counts.get((lhs, value), 0) / denom
                        if denom
                        else 0.0
                    )
                col += 1
        if use_semantic:
            dim = self.embedding.dim
            out[:, col : col + dim] = self.embedding.embed_uniques(uniques)[
                codes
            ]
            col += dim
        if config.use_criteria_features:
            for c in self.criteria:
                out[:, col] = c.evaluate_values(values, rows)
                col += 1
        return out

    def _frequency_features(
        self, value: str
    ) -> tuple[float, float, float, float]:
        n = max(self._n_rows, 1)
        p1, p2, p3 = all_levels(value)
        c1, c2, c3 = self._pattern_counts
        return (
            self.stats.value_counts.get(value, 0) / n,
            c1.get(p1, 0) / n,
            c2.get(p2, 0) / n,
            c3.get(p3, 0) / n,
        )


class FeatureSpace:
    """Unified feature representations for every attribute of a table."""

    def __init__(
        self,
        table: Table,
        stats: dict[str, AttributeStats],
        correlated: dict[str, list[str]],
        criteria: dict[str, list[Criterion]],
        config: ZeroEDConfig,
    ) -> None:
        self.table = table
        self.config = config
        self.correlated = correlated
        # The embedding model is immutable for a given (dim, seed), so
        # repeated pipeline runs share one instance and its warm caches.
        self.embedding = (
            SubwordHashEmbedding.shared(
                dim=config.embedding_dim, seed=config.seed
            )
            if config.use_semantic_features
            else None
        )
        self.featurizers: dict[str, AttributeFeaturizer] = {
            attr: AttributeFeaturizer(
                table=table,
                attr=attr,
                stats=stats[attr],
                correlated=correlated.get(attr, []),
                embedding=self.embedding,
                criteria=criteria.get(attr, []),
                config=config,
            )
            for attr in table.attributes
        }
        self._base_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def base_matrix(self, attr: str) -> np.ndarray:
        cached = self._base_cache.get(attr)
        if cached is None:
            cached = self.featurizers[attr].base_matrix(self.table)
            self._base_cache[attr] = cached
        return cached

    def invalidate(self, attr: str) -> None:
        """Drop the cached base matrix (after criteria refinement)."""
        self._base_cache.pop(attr, None)

    def unified_matrix(self, attr: str) -> np.ndarray:
        """``f_base(cell) ⊕ f_base(correlated cells)`` for every row."""
        parts = [self.base_matrix(attr)]
        if self.config.use_correlated_features:
            for q in self.correlated.get(attr, []):
                parts.append(self.base_matrix(q))
        return np.hstack(parts)

    def unified_rows(
        self,
        attr: str,
        values: Sequence[str],
        rows: Sequence[Mapping[str, str]],
        row_indices: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Unified features for ad-hoc values within known row contexts.

        The batch form of :meth:`unified_vector` with ``row_index``
        known for every pair (Step-3 assembly's augmented examples):
        the attribute's own base block folds per unique value through
        :meth:`AttributeFeaturizer.base_rows`, and each correlated
        block is one fancy-indexed gather from the cached
        ``base_matrix`` instead of a per-pair row copy.  Bit-identical
        to stacking the per-pair vectors.
        """
        base = self.featurizers[attr].base_rows(values, rows)
        parts = [base]
        if self.config.use_correlated_features:
            idx = np.asarray(row_indices, dtype=np.intp)
            if len(idx) != len(base):
                raise ValueError("row_indices must align with values")
            for q in self.correlated.get(attr, []):
                parts.append(self.base_matrix(q)[idx])
        return np.hstack(parts)

    def unified_vector(
        self, attr: str, value: str, row: dict[str, str], row_index: int | None
    ) -> np.ndarray:
        """Unified features for an ad-hoc value within a row context.

        For the correlated blocks, uses the row's existing base features
        when ``row_index`` is known (fast), otherwise recomputes from
        the row dict.
        """
        parts = [self.featurizers[attr].base_vector(value, row)]
        if self.config.use_correlated_features:
            for q in self.correlated.get(attr, []):
                if row_index is not None:
                    parts.append(self.base_matrix(q)[row_index])
                else:
                    parts.append(
                        self.featurizers[q].base_vector(row.get(q, ""), row)
                    )
        return np.concatenate(parts)
