"""Feature representation with criteria reasoning (paper §III-B).

Each cell value gets a *base* feature vector with three blocks:

* **statistics** — value frequency, the three pattern-generalisation
  frequencies (L1/L2/L3), and vicinity frequencies P(value | correlated
  attribute's value) for each correlated attribute;
* **semantic** — a subword-hash embedding (FastText substitute);
* **criteria** — one binary feature per LLM-generated error-checking
  criterion, the value's adherence after execution.

The *unified* representation concatenates a cell's base vector with the
base vectors of its top-k NMI-correlated attributes' values in the same
tuple.  Ablation switches on :class:`~repro.config.ZeroEDConfig`
disable individual blocks (Table IV's w/o Crit. / w/o Corr., plus
extension switches for the other blocks).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.config import ZeroEDConfig
from repro.criteria import Criterion
from repro.data.stats import AttributeStats
from repro.data.table import Table
from repro.text.embeddings import SubwordHashEmbedding
from repro.text.patterns import generalize


class AttributeFeaturizer:
    """Base-feature computation for one attribute.

    Built from the dirty table itself (frequencies, patterns) plus the
    compiled criteria; can featurise both existing cells (fast path,
    whole-column) and ad-hoc values (augmented training examples).
    """

    def __init__(
        self,
        table: Table,
        attr: str,
        stats: AttributeStats,
        correlated: list[str],
        embedding: SubwordHashEmbedding | None,
        criteria: list[Criterion],
        config: ZeroEDConfig,
    ) -> None:
        self.attr = attr
        self.stats = stats
        self.correlated = list(correlated)
        self.embedding = embedding
        self.criteria = list(criteria)
        self.config = config
        self._n_rows = table.n_rows
        # Pattern frequency tables at the three generalisation levels.
        self._pattern_counts: list[Counter] = []
        for level in (1, 2, 3):
            counter: Counter = Counter()
            for value, count in stats.value_counts.items():
                counter[generalize(value, level)] += count
            self._pattern_counts.append(counter)
        # Vicinity co-occurrence: for each correlated attribute q,
        # count(v_attr | v_q) and count(v_q).
        self._vicinity: dict[str, tuple[Counter, Counter]] = {}
        if config.use_statistical_features and config.use_correlated_features:
            own_col = table.column_view(attr)
            for q in self.correlated:
                pair_counts: Counter = Counter()
                lhs_counts: Counter = Counter()
                for vq, vj in zip(table.column_view(q), own_col):
                    pair_counts[(vq, vj)] += 1
                    lhs_counts[vq] += 1
                self._vicinity[q] = (pair_counts, lhs_counts)

    # ------------------------------------------------------------------
    @property
    def base_dim(self) -> int:
        dim = 0
        if self.config.use_statistical_features:
            dim += 4 + len(self._vicinity)
        if self.config.use_semantic_features and self.embedding is not None:
            dim += self.embedding.dim
        if self.config.use_criteria_features:
            dim += len(self.criteria)
        # With every block disabled, base_matrix emits a single zero
        # column so downstream shapes stay valid; mirror that here.
        return max(dim, 1) if dim == 0 else dim

    def set_criteria(self, criteria: list[Criterion]) -> None:
        """Swap in refined criteria (Algorithm 1's 'update criteria feat')."""
        self.criteria = list(criteria)

    # ------------------------------------------------------------------
    def base_matrix(self, table: Table) -> np.ndarray:
        """Base features for every row of ``table``'s ``attr`` column."""
        n = table.n_rows
        blocks: list[np.ndarray] = []
        col = table.column_view(self.attr)
        if self.config.use_statistical_features:
            stat = np.empty((n, 4 + len(self._vicinity)))
            freq_cache: dict[str, tuple[float, float, float, float]] = {}
            for i, value in enumerate(col):
                cached = freq_cache.get(value)
                if cached is None:
                    cached = self._frequency_features(value)
                    freq_cache[value] = cached
                stat[i, :4] = cached
            for k, q in enumerate(self._vicinity):
                pair_counts, lhs_counts = self._vicinity[q]
                q_col = table.column_view(q)
                for i in range(n):
                    lhs = q_col[i]
                    denom = lhs_counts.get(lhs, 0)
                    stat[i, 4 + k] = (
                        pair_counts.get((lhs, col[i]), 0) / denom if denom else 0.0
                    )
            blocks.append(stat)
        if self.config.use_semantic_features and self.embedding is not None:
            blocks.append(self.embedding.embed_many(list(col)))
        if self.config.use_criteria_features:
            if self.criteria:
                crit = np.stack(
                    [c.evaluate_column(table) for c in self.criteria], axis=1
                ).astype(float)
            else:
                crit = np.zeros((n, 0))
            blocks.append(crit)
        if not blocks:
            return np.zeros((n, 1))
        return np.hstack(blocks)

    def base_vector(self, value: str, row: dict[str, str]) -> np.ndarray:
        """Base features for an ad-hoc value in a row context."""
        blocks: list[np.ndarray] = []
        if self.config.use_statistical_features:
            stat = list(self._frequency_features(value))
            for q in self._vicinity:
                pair_counts, lhs_counts = self._vicinity[q]
                lhs = row.get(q, "")
                denom = lhs_counts.get(lhs, 0)
                stat.append(
                    pair_counts.get((lhs, value), 0) / denom if denom else 0.0
                )
            blocks.append(np.array(stat))
        if self.config.use_semantic_features and self.embedding is not None:
            blocks.append(self.embedding.embed(value))
        if self.config.use_criteria_features:
            context = dict(row)
            context[self.attr] = value
            blocks.append(
                np.array([float(c.check(context)) for c in self.criteria])
            )
        if not blocks:
            return np.zeros(1)
        return np.concatenate(blocks)

    def _frequency_features(
        self, value: str
    ) -> tuple[float, float, float, float]:
        n = max(self._n_rows, 1)
        value_freq = self.stats.value_counts.get(value, 0) / n
        pattern_freqs = tuple(
            self._pattern_counts[level - 1].get(generalize(value, level), 0) / n
            for level in (1, 2, 3)
        )
        return (value_freq, *pattern_freqs)


class FeatureSpace:
    """Unified feature representations for every attribute of a table."""

    def __init__(
        self,
        table: Table,
        stats: dict[str, AttributeStats],
        correlated: dict[str, list[str]],
        criteria: dict[str, list[Criterion]],
        config: ZeroEDConfig,
    ) -> None:
        self.table = table
        self.config = config
        self.correlated = correlated
        self.embedding = (
            SubwordHashEmbedding(dim=config.embedding_dim, seed=config.seed)
            if config.use_semantic_features
            else None
        )
        self.featurizers: dict[str, AttributeFeaturizer] = {
            attr: AttributeFeaturizer(
                table=table,
                attr=attr,
                stats=stats[attr],
                correlated=correlated.get(attr, []),
                embedding=self.embedding,
                criteria=criteria.get(attr, []),
                config=config,
            )
            for attr in table.attributes
        }
        self._base_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def base_matrix(self, attr: str) -> np.ndarray:
        cached = self._base_cache.get(attr)
        if cached is None:
            cached = self.featurizers[attr].base_matrix(self.table)
            self._base_cache[attr] = cached
        return cached

    def invalidate(self, attr: str) -> None:
        """Drop the cached base matrix (after criteria refinement)."""
        self._base_cache.pop(attr, None)

    def unified_matrix(self, attr: str) -> np.ndarray:
        """``f_base(cell) ⊕ f_base(correlated cells)`` for every row."""
        parts = [self.base_matrix(attr)]
        if self.config.use_correlated_features:
            for q in self.correlated.get(attr, []):
                parts.append(self.base_matrix(q))
        return np.hstack(parts)

    def unified_vector(
        self, attr: str, value: str, row: dict[str, str], row_index: int | None
    ) -> np.ndarray:
        """Unified features for an ad-hoc value within a row context.

        For the correlated blocks, uses the row's existing base features
        when ``row_index`` is known (fast), otherwise recomputes from
        the row dict.
        """
        parts = [self.featurizers[attr].base_vector(value, row)]
        if self.config.use_correlated_features:
            for q in self.correlated.get(attr, []):
                if row_index is not None:
                    parts.append(self.base_matrix(q)[row_index])
                else:
                    parts.append(
                        self.featurizers[q].base_vector(row.get(q, ""), row)
                    )
        return np.concatenate(parts)
