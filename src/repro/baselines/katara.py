"""KATARA baseline: knowledge-base-powered validation (Chu et al., 2015).

KATARA aligns table columns with KB relations and flags cells that
contradict the KB.  Coverage is everything: when no relevant relations
exist for a dataset (Flights, Beers, Rayyan, Movies in the paper's
setup), KATARA detects nothing — reproduced here by shipping those
datasets an empty :class:`~repro.data.kb.KnowledgeBase`.
"""

from __future__ import annotations

from repro.baselines.base import Detector, cells_to_mask
from repro.data.errortypes import is_missing_placeholder
from repro.data.kb import KnowledgeBase
from repro.data.mask import ErrorMask
from repro.data.table import Table


class Katara(Detector):
    """Flag domain violations and relation-pair contradictions."""

    name = "katara"

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb

    def _detect_mask(self, table: Table) -> ErrorMask:
        flagged: list[tuple[int, str]] = []
        if self.kb.is_empty():
            return cells_to_mask(table, flagged)
        for attr, domain in self.kb.domains.items():
            if attr not in table.attributes:
                continue
            for i, value in enumerate(table.column_view(attr)):
                if value and not is_missing_placeholder(value) and value not in domain:
                    flagged.append((i, attr))
        for (lhs, rhs), pairs in self.kb.relations.items():
            if lhs not in table.attributes or rhs not in table.attributes:
                continue
            lhs_col = table.column_view(lhs)
            rhs_col = table.column_view(rhs)
            known_lhs = {a for a, _ in pairs}
            for i in range(table.n_rows):
                lhs_value = lhs_col[i]
                if lhs_value not in known_lhs:
                    continue  # the KB cannot vouch for unseen entities
                if (lhs_value, rhs_col[i]) not in pairs:
                    flagged.append((i, rhs))
        return cells_to_mask(table, flagged)
