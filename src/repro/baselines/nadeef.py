"""NADEEF baseline: generalized rule-based cleaning (Ebaid et al., 2013).

NADEEF evaluates a user-supplied pack of declarative quality rules —
functional dependencies (as denial constraints), format patterns,
domains, ranges and not-null constraints — and reports every violating
cell.  Precision and recall are entirely determined by the rule pack;
the packs shipped with each dataset generator mirror the public
constraint sets the paper reused.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import Detector, cells_to_mask
from repro.data.mask import ErrorMask
from repro.data.rules import Rule
from repro.data.table import Table


class Nadeef(Detector):
    """Union of violations across the configured rule pack."""

    name = "nadeef"

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def _detect_mask(self, table: Table) -> ErrorMask:
        flagged: list[tuple[int, str]] = []
        for rule in self.rules:
            flagged.extend(rule.violations(table))
        return cells_to_mask(table, flagged)
