"""FM_ED baseline: per-tuple zero-shot LLM prompting (Narayan et al., 2022).

The "can foundation models wrangle your data?" recipe: serialize each
tuple and ask the LLM whether it contains errors.  Every tuple costs an
input prompt, so token consumption grows linearly with table size —
Fig. 8's contrast with ZeroED.  Detection capability is limited to what
a context-free model can judge (Table I: missing values and surface
anomalies).
"""

from __future__ import annotations

from repro.baselines.base import Detector
from repro.core.result import DetectionResult, StageInfo
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.llm.client import LLMClient, LLMRequest
from repro.llm.prompts import TUPLE_CHECK_PROMPT, serialize_tuple


class FMED(Detector):
    """Tuple-at-a-time LLM error querying."""

    name = "fm_ed"

    def __init__(self, llm: LLMClient) -> None:
        self.llm = llm

    def _detect_mask(self, table: Table) -> ErrorMask:
        mask = ErrorMask.zeros(table.attributes, table.n_rows)
        for i in range(table.n_rows):
            row = table.row(i)
            response = self.llm.complete(
                LLMRequest(
                    kind="tuple_check",
                    prompt=TUPLE_CHECK_PROMPT.format(
                        dataset=table.name, tuple=serialize_tuple(row)
                    ),
                    payload={"dataset": table.name, "row": row, "row_id": i},
                )
            )
            verdicts = response.payload or {}
            for attr, bad in verdicts.items():
                if bad and attr in table.attributes:
                    mask.set(i, attr, True)
        return mask

    def _before_detect(self, table: Table) -> None:
        self.llm.ledger.reset()

    def _build_result(
        self, table: Table, mask: ErrorMask, seconds: float
    ) -> DetectionResult:
        ledger = self.llm.ledger.summary()
        return DetectionResult(
            mask=mask,
            dataset=table.name,
            method=f"fm_ed[{self.llm.model_name}]",
            stages=[StageInfo(
                name="detect",
                seconds=seconds,
                input_tokens=ledger["input_tokens"],
                output_tokens=ledger["output_tokens"],
            )],
            n_llm_requests=ledger["requests"],
            input_tokens=ledger["input_tokens"],
            output_tokens=ledger["output_tokens"],
        )
