"""Raha baseline: configuration-free error detection (Mahdavi et al., 2019).

Raha runs a battery of cheap detection strategies over every column,
represents each cell by its strategy-agreement vector, clusters cells
per column, asks a human to label a small tuple budget, and propagates
those labels through the clusters.  The ground-truth mask plays the
human: only the cells of ``n_labeled_tuples`` sampled tuples are
revealed.  Fig. 6's active-learning curve sweeps that budget.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Detector
from repro.data.errortypes import is_missing_placeholder
from repro.data.mask import ErrorMask
from repro.data.stats import AttributeStats
from repro.data.table import Table
from repro.ml.agglomerative import AgglomerativeClustering
from repro.ml.rng import RngLike, as_generator, spawn


def strategy_matrix(table: Table, attr: str) -> np.ndarray:
    """Cell × strategy boolean outputs for one column.

    The strategy battery mirrors Raha's generator families: missing
    markers, value-frequency thresholds, format-frequency thresholds,
    numeric outlier thresholds, and character-level anomalies.
    """
    stats = AttributeStats.compute(table, attr)
    col = table.column_view(attr)
    n = len(col)
    strategies: list[np.ndarray] = []

    def per_value(fn) -> np.ndarray:
        cache: dict[str, bool] = {}
        out = np.empty(n, dtype=bool)
        for i, v in enumerate(col):
            hit = cache.get(v)
            if hit is None:
                hit = bool(fn(v))
                cache[v] = hit
            out[i] = hit
        return out

    strategies.append(per_value(is_missing_placeholder))
    for theta in (0.001, 0.005, 0.02):
        strategies.append(per_value(lambda v, t=theta: stats.value_frequency(v) < t))
    for theta in (0.005, 0.02):
        strategies.append(
            per_value(lambda v, t=theta: stats.pattern_frequency(v, 3) < t)
        )
    strategies.append(per_value(lambda v: stats.pattern_frequency(v, 2) < 0.01))
    if stats.numeric.fraction >= 0.5:
        for z in (2.5, 4.0):
            strategies.append(
                per_value(lambda v, zz=z: stats.numeric.is_outlier(v, z=zz))
            )
        strategies.append(per_value(lambda v: not _is_number(v)))
    strategies.append(
        per_value(lambda v: bool(v) and sum(not c.isalnum() for c in v) / len(v) > 0.3)
    )
    strategies.append(per_value(lambda v: v != v.strip()))
    return np.stack(strategies, axis=1).astype(float)


def _is_number(value: str) -> bool:
    try:
        float(value)
    except (TypeError, ValueError):
        return False
    return True


class Raha(Detector):
    """Strategy ensemble + per-column clustering + label propagation."""

    name = "raha"

    def __init__(
        self,
        truth: ErrorMask,
        n_labeled_tuples: int = 2,
        seed: RngLike = 0,
    ) -> None:
        self.truth = truth
        self.n_labeled_tuples = n_labeled_tuples
        self.seed = seed

    def _detect_mask(self, table: Table) -> ErrorMask:
        rng = as_generator(spawn(self.seed, "raha/tuples"))
        n = table.n_rows
        budget = min(self.n_labeled_tuples, n)
        labeled = (
            rng.choice(n, size=budget, replace=False) if budget else np.array([], int)
        )
        mask = ErrorMask.zeros(table.attributes, n)
        if budget == 0:
            return mask
        n_clusters = min(n, 2 * budget + 2)
        for attr in table.attributes:
            features = strategy_matrix(table, attr)
            clusters = AgglomerativeClustering(
                n_clusters=n_clusters,
                seed=spawn(self.seed, f"raha/{attr}"),
            ).fit_predict(features)
            truth_col = self.truth.column(attr)
            col_index = table.attr_index(attr)
            for cluster_id in np.unique(clusters):
                members = np.nonzero(clusters == cluster_id)[0]
                votes = [bool(truth_col[i]) for i in labeled if clusters[i] == cluster_id]
                if not votes:
                    continue  # unlabeled cluster defaults to clean
                if sum(votes) * 2 >= len(votes) and sum(votes) > 0:
                    mask.matrix[members, col_index] = True
        return mask
