"""dBoost baseline: statistical outlier detection.

Re-implements dBoost's core models (Pit-Claudel et al., 2016) in the
configuration the cleaning literature uses: per column, a histogram
model flags values in low-mass bins, and a gaussian model (textbook
mean/std fit, as in the original — heavy contamination masks moderate
outliers) flags numerics beyond a z-score threshold.  Purely
statistical: strong on extreme outliers, reasonable on pattern
violations (rare formats), blind to rule violations and to
frequent-but-wrong values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Detector, cells_to_mask
from repro.data.errortypes import is_missing_placeholder
from repro.data.mask import ErrorMask
from repro.data.stats import AttributeStats
from repro.data.table import Table


@dataclass
class DBoostConfig:
    """Statistical thresholds (dBoost's tuned parameters)."""

    histogram_threshold: float = 0.002
    """Values whose relative frequency falls below this are outliers in
    categorical columns."""

    gaussian_z: float = 3.0
    """Robust z-score beyond which numerics are outliers."""

    max_categorical_distinct: int = 100
    """Histogram model applies when distinct count is below this."""

    flag_missing: bool = False
    """dBoost's statistical models don't treat empties as errors by
    default (Table I: missing ✗)."""


class DBoost(Detector):
    """Histogram + robust gaussian outlier detection per column."""

    name = "dboost"

    def __init__(self, config: DBoostConfig | None = None) -> None:
        self.config = config or DBoostConfig()

    def _detect_mask(self, table: Table) -> ErrorMask:
        flagged: list[tuple[int, str]] = []
        for attr in table.attributes:
            stats = AttributeStats.compute(table, attr)
            flagged.extend(self._detect_column(table, attr, stats))
        return cells_to_mask(table, flagged)

    def _detect_column(
        self, table: Table, attr: str, stats: AttributeStats
    ) -> list[tuple[int, str]]:
        cfg = self.config
        col = table.column_view(attr)
        out: list[tuple[int, str]] = []
        use_gaussian = stats.numeric.fraction >= 0.8
        use_histogram = (
            not use_gaussian
            and stats.n_distinct() <= cfg.max_categorical_distinct
        )
        numbers = None
        if use_gaussian:
            parsed = []
            for v in col:
                try:
                    parsed.append(float(v))
                except ValueError:
                    parsed.append(np.nan)
            numbers = np.array(parsed)
            finite = numbers[np.isfinite(numbers)]
            # dBoost's gaussian model is the textbook (non-robust)
            # mean/std fit: heavy contamination inflates the std and
            # masks all but the most extreme outliers — the weakness
            # behind its modest recall on outlier-rich columns.
            mean = float(np.mean(finite)) if finite.size else 0.0
            scale = float(np.std(finite)) if finite.size else 1.0
            if scale <= 0:
                scale = 1.0
        for i, value in enumerate(col):
            if is_missing_placeholder(value):
                if cfg.flag_missing:
                    out.append((i, attr))
                continue
            if use_gaussian:
                num = numbers[i]
                if not np.isfinite(num):
                    out.append((i, attr))  # non-numeric in numeric column
                elif abs(num - mean) / scale > cfg.gaussian_z:
                    out.append((i, attr))
            elif use_histogram:
                if stats.value_frequency(value) < cfg.histogram_threshold:
                    out.append((i, attr))
            else:
                # High-cardinality text column: fall back to the format
                # histogram (dBoost's discrete model over value shapes).
                if (
                    stats.pattern_frequency(value, level=3)
                    < cfg.histogram_threshold
                    and stats.pattern_diversity() < 0.5
                ):
                    out.append((i, attr))
        return out
