"""Common baseline detector interface.

Every baseline implements :meth:`Detector.detect` returning the same
:class:`~repro.core.result.DetectionResult` the ZeroED pipeline emits,
so the benchmark harness treats all methods uniformly.
"""

from __future__ import annotations

import abc
import time

from repro.core.result import DetectionResult, StageInfo
from repro.data.mask import ErrorMask
from repro.data.table import Table


class Detector(abc.ABC):
    """A cell-level error detector."""

    name: str = "detector"

    @abc.abstractmethod
    def _detect_mask(self, table: Table) -> ErrorMask:
        """Produce the predicted error mask for ``table``."""

    def detect(self, table: Table) -> DetectionResult:
        """Run detection with timing; token fields stay zero unless the
        detector uses an LLM (FM_ED overrides to fill them in)."""
        start = time.perf_counter()
        mask = self._detect_mask(table)
        elapsed = time.perf_counter() - start
        return DetectionResult(
            mask=mask,
            dataset=table.name,
            method=self.name,
            stages=[StageInfo(name="detect", seconds=elapsed)],
        )


def cells_to_mask(
    table: Table, cells: list[tuple[int, str]]
) -> ErrorMask:
    """Build an :class:`ErrorMask` from flagged (row, attr) pairs."""
    return ErrorMask.from_cells(table.attributes, table.n_rows, cells)
