"""Common baseline detector interface.

Every baseline implements :meth:`Detector.detect` returning the same
:class:`~repro.core.result.DetectionResult` the ZeroED pipeline emits,
so the benchmark harness treats all methods uniformly.
"""

from __future__ import annotations

import abc

from repro.core.result import DetectionResult, StageInfo
from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.obs import trace


class Detector(abc.ABC):
    """A cell-level error detector."""

    name: str = "detector"

    @abc.abstractmethod
    def _detect_mask(self, table: Table) -> ErrorMask:
        """Produce the predicted error mask for ``table``."""

    def detect(self, table: Table) -> DetectionResult:
        """Run detection under one timing span.

        The timing path is shared by every baseline (one span, one
        ``elapsed``); subclasses customise the edges instead of
        copy-pasting the ``perf_counter`` pair: :meth:`_before_detect`
        for setup (FM_ED resets its token ledger there) and
        :meth:`_build_result` for the result shape (FM_ED adds token
        accounting).
        """
        self._before_detect(table)
        with trace.span(
            "detect", method=self.name, dataset=table.name,
            rows=table.n_rows,
        ) as sp:
            mask = self._detect_mask(table)
        return self._build_result(table, mask, sp.seconds)

    def _before_detect(self, table: Table) -> None:
        """Hook run before the timed detection starts (default: none)."""

    def _build_result(
        self, table: Table, mask: ErrorMask, seconds: float
    ) -> DetectionResult:
        """Shape the timed mask into a result; token fields stay zero
        unless the detector uses an LLM (FM_ED overrides)."""
        return DetectionResult(
            mask=mask,
            dataset=table.name,
            method=self.name,
            stages=[StageInfo(name="detect", seconds=seconds)],
        )


def cells_to_mask(
    table: Table, cells: list[tuple[int, str]]
) -> ErrorMask:
    """Build an :class:`ErrorMask` from flagged (row, attr) pairs."""
    return ErrorMask.from_cells(table.attributes, table.n_rows, cells)
