"""Baseline error-detection methods evaluated against ZeroED."""

from repro.baselines.activeclean import ActiveClean
from repro.baselines.base import Detector
from repro.baselines.dboost import DBoost, DBoostConfig
from repro.baselines.fm_ed import FMED
from repro.baselines.katara import Katara
from repro.baselines.nadeef import Nadeef
from repro.baselines.raha import Raha, strategy_matrix

__all__ = [
    "ActiveClean",
    "DBoost",
    "DBoostConfig",
    "Detector",
    "FMED",
    "Katara",
    "Nadeef",
    "Raha",
    "strategy_matrix",
]
