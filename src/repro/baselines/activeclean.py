"""ActiveClean baseline (Krishnan et al., 2016).

ActiveClean detects dirty *records* by their influence on a downstream
model: records the model finds surprising (high loss / gradient
magnitude) are prioritised for cleaning.  Following the paper's use of
it as an error detector, we train a tuple-level linear model on a small
labeled budget (tuple featurisation is deliberately simple — that
simplicity is exactly why the paper reports it "struggles to
differentiate errors", flagging nearly everything on Flights/Rayyan)
and flag every cell of each tuple classified dirty.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Detector
from repro.data.errortypes import is_missing_placeholder
from repro.data.mask import ErrorMask
from repro.data.stats import AttributeStats
from repro.data.table import Table
from repro.ml.rng import RngLike, as_generator


class ActiveClean(Detector):
    """Tuple-level dirty-record classifier with simple features."""

    name = "activeclean"

    def __init__(
        self,
        truth: ErrorMask,
        n_labeled_tuples: int = 2,
        seed: RngLike = 0,
    ) -> None:
        """``truth`` plays the human oracle: only ``n_labeled_tuples``
        randomly chosen tuples' labels are revealed to the detector."""
        self.truth = truth
        self.n_labeled_tuples = n_labeled_tuples
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    def _tuple_features(self, table: Table) -> np.ndarray:
        """Per-tuple features: mean value frequency, missing share,
        mean pattern frequency — the 'simple feature extraction' the
        paper criticises."""
        stats = {a: AttributeStats.compute(table, a) for a in table.attributes}
        n = table.n_rows
        feats = np.zeros((n, 3))
        for j, attr in enumerate(table.attributes):
            col = table.column_view(attr)
            st = stats[attr]
            for i in range(n):
                value = col[i]
                feats[i, 0] += st.value_frequency(value)
                feats[i, 1] += 1.0 if is_missing_placeholder(value) else 0.0
                feats[i, 2] += st.pattern_frequency(value, level=3)
        return feats / max(table.n_attributes, 1)

    def _detect_mask(self, table: Table) -> ErrorMask:
        feats = self._tuple_features(table)
        n = table.n_rows
        labeled = self._rng.choice(
            n, size=min(self.n_labeled_tuples, n), replace=False
        )
        tuple_dirty = self.truth.matrix.any(axis=1)
        x = feats[labeled]
        y = tuple_dirty[labeled].astype(float)
        weights = self._fit_logistic(x, y)
        scores = _sigmoid(feats @ weights[:-1] + weights[-1])
        if len(set(y.tolist())) < 2:
            # Degenerate budget: everything looks like the one observed
            # class; ActiveClean then flags all records when that class
            # was dirty, nothing otherwise.
            predicted = np.full(n, bool(y[0] if len(y) else False))
        else:
            predicted = scores >= 0.5
        mask = ErrorMask.zeros(table.attributes, n)
        mask.matrix[predicted, :] = True
        return mask

    def _fit_logistic(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Tiny logistic regression via gradient descent."""
        n, d = x.shape
        w = np.zeros(d + 1)
        if n == 0:
            return w
        xb = np.hstack([x, np.ones((n, 1))])
        for _ in range(200):
            p = _sigmoid(xb @ w)
            grad = xb.T @ (p - y) / n
            w -= 0.5 * grad
        return w


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
