"""Structured JSON-lines logging on stdlib :mod:`logging`.

Every library logger hangs off the ``"repro"`` root, which carries a
``NullHandler``: **quiet by default** — imports, tests and the
hash-pinned equivalence runs see no output unless the application (or
the CLI's ``--log-json`` / ``--log-level`` flags) calls
:func:`configure`.

Loggers here emit *events with fields*, not format strings::

    _log = get_logger("repro.serving.service")
    _log.info("score.request", rows=64, status=200, ms=12.3)

With ``configure(json_lines=True)`` each record renders as one JSON
object per line — timestamp, level, logger, event, the fields, plus
correlation ids: the installed tracer's ``trace_id``/``span_id`` (see
:func:`repro.obs.trace.current_ids`) and any fields bound on the
current context with :func:`bind` (the service binds ``request_id``
around each request).  ``json_lines=False`` renders the same record as
a human-readable ``key=value`` line.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs import trace as _trace

ROOT_LOGGER_NAME = "repro"

#: Extra correlation fields bound on this context (tuple of pairs so
#: the value is immutable — nested binds push/pop cleanly).
_BOUND: ContextVar[tuple[tuple[str, object], ...]] = ContextVar(
    "repro_log_bound", default=()
)

#: Levels accepted by configure() and the CLI --log-level flag.
LEVELS = ("debug", "info", "warning", "error", "critical")

# Library logs are invisible until configure() installs a real handler
# (NullHandler stops logging.lastResort from printing warnings).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


@contextmanager
def bind(**fields):
    """Attach correlation fields to every log record in this context."""
    token = _BOUND.set(_BOUND.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _BOUND.reset(token)


def bound_fields() -> dict:
    return dict(_BOUND.get())


class EventLogger:
    """Thin wrapper turning ``logger.level(event, **fields)`` calls
    into stdlib records carrying a fields dict."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"repro_fields": fields})

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> EventLogger:
    """An :class:`EventLogger` under the ``repro`` hierarchy."""
    if name != ROOT_LOGGER_NAME and not name.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return EventLogger(logging.getLogger(name))


def _record_fields(record: logging.LogRecord) -> dict:
    fields = dict(bound_fields())
    fields.update(_trace.current_ids())
    extra = getattr(record, "repro_fields", None)
    if extra:
        fields.update(extra)
    return fields


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: the machine-readable pipeline."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        out.update(_record_fields(record))
        if record.exc_info:
            out["exception"] = self.formatException(record.exc_info)
        return json.dumps(out, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human-readable twin: ``HH:MM:SS LEVEL logger event k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.gmtime(record.created))
        parts = [
            stamp,
            record.levelname,
            record.name,
            record.getMessage(),
        ]
        for key, value in _record_fields(record).items():
            parts.append(f"{key}={value}")
        line = " ".join(str(p) for p in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


#: The handler configure() installed, so reconfiguring swaps instead
#: of stacking duplicates.
_HANDLER: logging.Handler | None = None


def configure(
    level: str = "info",
    json_lines: bool = True,
    stream: io.TextIOBase | None = None,
) -> logging.Handler:
    """Install (or replace) the ``repro`` log handler.

    Idempotent: calling again swaps the previous handler this function
    installed, so repeated CLI invocations or nested fits never stack
    duplicate lines.  Handlers the application attached itself are
    untouched.
    """
    if level.lower() not in LEVELS:
        from repro.errors import ConfigError

        raise ConfigError(
            f"log level must be one of {LEVELS}, got {level!r}"
        )
    global _HANDLER
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLineFormatter() if json_lines else KeyValueFormatter()
    )
    root.addHandler(handler)
    root.setLevel(level.upper())
    _HANDLER = handler
    return handler


def unconfigure() -> None:
    """Remove the handler :func:`configure` installed (tests, CLI exit)."""
    global _HANDLER
    if _HANDLER is not None:
        logging.getLogger(ROOT_LOGGER_NAME).removeHandler(_HANDLER)
        _HANDLER = None
