"""Span tracing: nested, attributed timers with Chrome-trace export.

One timing primitive replaces the scattered ``time.perf_counter()``
pairs across the pipeline, the serving scorer, the streaming shard
executor and the baselines::

    with trace.span("featurize", attr="city", rows=1000) as sp:
        ...work...
    elapsed = sp.seconds          # identical semantics to the old pair

Two tracer implementations share that interface:

* :class:`NoopTracer` — the **default**.  Its spans measure elapsed
  time (two ``perf_counter`` calls, one tiny object) and record
  nothing: no lock, no context variable, no allocation growth.  The
  overhead against a bare ``perf_counter`` pair is benchmarked and
  gated in ``benchmarks/bench_obs.py``.
* :class:`Tracer` — records every finished span (name, attributes,
  ids, thread, start/end) under a lock and exports them as Chrome
  trace-event JSON (``{"traceEvents": [...]}``, microsecond ``ts`` /
  ``dur``) loadable in ``chrome://tracing`` and Perfetto.

Parentage rides on a :mod:`contextvars` variable, so nesting works
across any call depth without threading span objects through
signatures.  New threads start from a *default* context, so thread
pools do not inherit the caller's span — :func:`propagate` captures
the submitting context and re-attaches it inside the worker, which is
exactly what :mod:`repro.parallel` does before fanning out.  Worker
*processes* receive only the string :func:`trace_id` (spans cannot
cross a pickle boundary); it correlates their structured log lines
with the front process's trace.

Instrumentation is **observe-only** by contract: installing a
recording tracer must never change a mask byte (asserted in
``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

#: (trace_id, span_id) of the innermost open span on this context, or
#: None outside any span.  Only the *recording* tracer touches it.
_CURRENT: ContextVar[tuple[str, int] | None] = ContextVar(
    "repro_trace_current", default=None
)


def current_ids() -> dict:
    """Correlation fields of the innermost open span (``{}`` outside).

    The structured-log formatter stamps these onto every record so a
    log line can be joined back to its trace.
    """
    current = _CURRENT.get()
    if current is None:
        return {}
    return {"trace_id": current[0], "span_id": current[1]}


class _NoopSpan:
    """A span that only measures time — the no-op tracer's product.

    Deliberately minimal: two ``perf_counter`` calls and two slots, so
    instrumented code pays (benchmarked) noise when tracing is off
    while keeping the *elapsed* semantics of the timing pair it
    replaced.
    """

    __slots__ = ("_t0", "_t1")

    def __enter__(self) -> "_NoopSpan":
        self._t1 = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._t1 = time.perf_counter()
        return False

    @property
    def seconds(self) -> float:
        end = self._t1 if self._t1 is not None else time.perf_counter()
        return end - self._t0

    def set(self, **attrs) -> None:
        """Attribute updates are dropped: nothing records them."""


class NoopTracer:
    """The default tracer: free to keep installed, records nothing."""

    enabled = False

    def span(self, name: str, **attrs) -> _NoopSpan:
        return _NoopSpan()


@dataclass
class SpanRecord:
    """One finished span as stored by the recording tracer."""

    name: str
    trace_id: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float
    thread_id: int
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


class Span:
    """A live recording span: a context manager that times, nests and
    lands in its tracer's record list on exit."""

    __slots__ = (
        "name", "attrs", "_tracer", "span_id", "parent_id",
        "_t0", "_t1", "_token", "_thread_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._t1 = None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        current = _CURRENT.get()
        self.parent_id = current[1] if current is not None else None
        self._thread_id = threading.get_ident()
        self._token = _CURRENT.set((tracer.trace_id, self.span_id))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._t1 = time.perf_counter()
        _CURRENT.reset(self._token)
        self._tracer._record(self)
        return False

    @property
    def seconds(self) -> float:
        end = self._t1 if self._t1 is not None else time.perf_counter()
        return end - self._t0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (row counts etc.)."""
        self.attrs.update(attrs)


class Tracer:
    """A recording tracer: collects spans, exports Chrome trace JSON."""

    enabled = True

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.trace_id = uuid.uuid4().hex[:16]
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._id = 0
        #: perf_counter origin: exported timestamps are relative to
        #: tracer creation so the trace viewer starts near zero.
        self._epoch = time.perf_counter()

    # -- span production -----------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _record(self, span: Span) -> None:
        record = SpanRecord(
            name=span.name,
            trace_id=self.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start_s=span._t0 - self._epoch,
            end_s=span._t1 - self._epoch,
            thread_id=span._thread_id,
            attrs=dict(span.attrs),
        )
        with self._lock:
            self._records.append(record)

    # -- inspection ----------------------------------------------------
    @property
    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [r for r in self.records if r.name == name]

    # -- export --------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The Chrome trace-event representation (Perfetto-loadable).

        Complete ``"ph": "X"`` events: microsecond ``ts``/``dur``, one
        ``tid`` per producing thread, span attributes and ids under
        ``args``.
        """
        events = []
        for r in self.records:
            args = {k: _jsonable(v) for k, v in r.attrs.items()}
            args["span_id"] = r.span_id
            if r.parent_id is not None:
                args["parent_id"] = r.parent_id
            events.append(
                {
                    "name": r.name,
                    "cat": self.name,
                    "ph": "X",
                    "ts": round(r.start_s * 1e6, 3),
                    "dur": round((r.end_s - r.start_s) * 1e6, 3),
                    "pid": 1,
                    "tid": r.thread_id,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }

    def export(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``."""
        out = Path(path)
        out.write_text(json.dumps(self.chrome_trace()) + "\n")
        return out


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------
# Global tracer slot
# ---------------------------------------------------------------------
_NOOP = NoopTracer()
_TRACER: NoopTracer | Tracer = _NOOP


def get_tracer() -> NoopTracer | Tracer:
    """The currently installed tracer (the no-op one by default)."""
    return _TRACER


def set_tracer(tracer: NoopTracer | Tracer | None):
    """Install ``tracer`` (None restores the no-op); returns the old one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else _NOOP
    return previous


def span(name: str, **attrs):
    """``get_tracer().span(...)`` — the one-line instrumentation call."""
    return _TRACER.span(name, **attrs)


def trace_id() -> str | None:
    """The installed tracer's trace id (None when tracing is off)."""
    return _TRACER.trace_id if _TRACER.enabled else None


def propagate(fn):
    """Wrap ``fn`` so it runs under the submitting thread's span context.

    New threads get a *default* contextvars context, which would orphan
    every span opened inside a pool worker.  With the no-op tracer this
    returns ``fn`` unchanged — the parallel fan-out paths stay
    untouched when tracing is off.
    """
    if not _TRACER.enabled:
        return fn
    parent = _CURRENT.get()

    def wrapped(*args, **kwargs):
        token = _CURRENT.set(parent)
        try:
            return fn(*args, **kwargs)
        finally:
            _CURRENT.reset(token)

    return wrapped
