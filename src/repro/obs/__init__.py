"""Observability: span tracing, metrics, structured logging.

Three zero-dependency pillars (see the submodule docstrings):

* :mod:`repro.obs.trace` — nested spans with attributes, thread
  propagation and Chrome trace-event export; the default tracer is a
  no-op whose overhead is benchmarked and gated.
* :mod:`repro.obs.metrics` — counters/gauges/histograms rendered in
  Prometheus text format for ``GET /metrics``.
* :mod:`repro.obs.log` — JSON-lines structured logging on stdlib
  ``logging``, quiet by default, trace/request-id correlated.

The contract shared by all three: **observe-only**.  Telemetry may
never change a mask byte — equivalence tests pass unmodified with a
recording tracer installed, JSON logging enabled, or both.

:func:`session` is the entry-point glue (used by the CLI and honored
by ``ZeroED.fit`` for config-carried knobs): configure logging,
install a recording tracer, run, export the trace, restore.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import log, metrics, trace
from repro.obs.log import bind, configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NoopTracer,
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    propagate,
    set_tracer,
    span,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "bind",
    "configure",
    "get_logger",
    "get_tracer",
    "log",
    "metrics",
    "propagate",
    "session",
    "set_tracer",
    "span",
    "trace",
]


@contextmanager
def session(
    trace_out: str | None = None,
    log_json: bool = False,
    log_level: str | None = None,
):
    """One observability scope: logging + tracing around a unit of work.

    * ``log_level``/``log_json`` configure the ``repro`` log handler
      (JSON lines when ``log_json``, key=value otherwise; giving only
      ``log_json`` implies level ``info``);
    * ``trace_out`` installs a recording :class:`~repro.obs.trace.
      Tracer` for the scope and exports Chrome trace JSON to that path
      on exit — unless a recording tracer is already installed (an
      outer session owns it, including its export).

    With every argument falsy this is a no-op, so call sites can wrap
    unconditionally.  Yields the active tracer (recording or not).
    """
    if log_level is not None or log_json:
        configure(level=log_level or "info", json_lines=log_json)
    installed = None
    if trace_out and not trace.get_tracer().enabled:
        installed = trace.Tracer()
        trace.set_tracer(installed)
    try:
        yield trace.get_tracer()
    finally:
        if installed is not None:
            trace.set_tracer(None)
            installed.export(trace_out)
