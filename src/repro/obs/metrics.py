"""Counters, gauges and histograms with Prometheus text exposition.

Zero-dependency metrics for the serving layer.  A
:class:`MetricsRegistry` owns a namespace of metrics and renders them
in the Prometheus text format (version 0.0.4) for ``GET /metrics``::

    registry = MetricsRegistry()
    shed = registry.counter("repro_shed_total", "Requests shed at admission")
    shed.inc()
    latency = registry.histogram(
        "repro_score_latency_seconds", "Batch scoring latency",
        labelnames=("tenant",),
    )
    latency.observe(0.012, tenant="hospital")
    text = registry.render()

Design points:

* **per-instance registries, no global state** — every
  :class:`~repro.serving.service.ScoringService` owns one, so tests
  spinning up many services in one process never collide on names;
* **collectors bridge existing counters** — subsystems that already
  keep hand-rolled monotonic ints under their own locks (the
  micro-batcher, the artifact registry, the resilience stats) stay the
  single source of truth: a collector callback reads *one* consistent
  snapshot at render time and mirrors it into the registry via
  :meth:`Counter.set_total` / :meth:`Gauge.set`.  ``/healthz`` reads
  the same snapshot functions, so the two surfaces can never disagree;
* **fixed log-scale latency buckets** — a 1-2.5-5 ladder from 500µs to
  60s (:data:`LATENCY_BUCKETS_S`), cumulative ``_bucket{le=...}``
  rendering with ``_sum``/``_count`` per labelset;
* **thread-safe** — each metric guards its samples with its own lock;
  collectors run under the registry lock at render time.
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Callable, Sequence

from repro.errors import ConfigError

#: Fixed log-scale latency ladder (seconds): 1-2.5-5 per decade.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _format_number(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared plumbing: naming, labels, per-metric lock, samples."""

    type_name = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ConfigError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        #: label-value tuple -> sample value (shape varies by type).
        self._samples: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {sorted(labels)!r}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _series(self, key: tuple) -> str:
        if not self.labelnames:
            return self.name
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        )
        return f"{self.name}{{{pairs}}}"

    def samples(self) -> dict[tuple, object]:
        with self._lock:
            return dict(self._samples)


class Counter(_Metric):
    """Monotonically increasing count."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(self._samples.get(key, 0.0)) + amount

    def set_total(self, value: float, **labels) -> None:
        """Mirror an externally maintained monotonic total.

        For collector callbacks bridging subsystems that already count
        under their own locks; the external int stays the source of
        truth, this just re-publishes it.
        """
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def render(self) -> list[str]:
        samples = self.samples() or ({(): 0.0} if not self.labelnames else {})
        return [
            f"{self._series(key)} {_format_number(value)}"
            for key, value in sorted(samples.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down."""

    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(self._samples.get(key, 0.0)) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def render(self) -> list[str]:
        samples = self.samples() or ({(): 0.0} if not self.labelnames else {})
        return [
            f"{self._series(key)} {_format_number(value)}"
            for key, value in sorted(samples.items())
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (fixed bucket ladder per metric)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = [[0] * len(self.buckets), 0.0, 0]
                self._samples[key] = state
            counts, total, count = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            state[1] = total + value
            state[2] = count + 1

    def render(self) -> list[str]:
        lines: list[str] = []
        samples = self.samples()
        if not samples and not self.labelnames:
            samples = {(): [[0] * len(self.buckets), 0.0, 0]}
        for key, (counts, total, count) in sorted(samples.items()):
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                series = self._bucket_series(key, _format_number(bound))
                lines.append(f"{series} {cumulative}")
            lines.append(f"{self._bucket_series(key, '+Inf')} {count}")
            lines.append(
                f"{self._suffixed_series('_sum', key)} "
                f"{_format_number(total)}"
            )
            lines.append(f"{self._suffixed_series('_count', key)} {count}")
        return lines

    def _bucket_series(self, key: tuple, le: str) -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        pairs.append(f'le="{le}"')
        return f"{self.name}_bucket{{{','.join(pairs)}}}"

    def _suffixed_series(self, suffix: str, key: tuple) -> str:
        if not self.labelnames:
            return f"{self.name}{suffix}"
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        )
        return f"{self.name}{suffix}{{{pairs}}}"


class MetricsRegistry:
    """A namespace of metrics plus the collectors that refresh them."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration (get-or-create, idempotent) ----------------------
    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}"
                    )
                return existing
            metric = Histogram(name, help_text, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name, help_text, labelnames):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}"
                    )
                return existing
            metric = cls(name, help_text, labelnames)
            self._metrics[name] = metric
            return metric

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback run before each render to refresh
        bridged metrics from their owning subsystem's snapshot."""
        with self._lock:
            self._collectors.append(fn)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # -- exposition ----------------------------------------------------
    def render(self) -> str:
        """The Prometheus text-format exposition of every metric.

        Collector failures are swallowed (stale values beat a 500 from
        the telemetry endpoint); metric blocks render in registration
        order with ``# HELP`` / ``# TYPE`` headers.
        """
        with self._lock:
            collectors = list(self._collectors)
            metrics = list(self._metrics.values())
        for collect in collectors:
            try:
                collect()
            except Exception:
                pass
        lines: list[str] = []
        for metric in metrics:
            help_text = metric.help_text.replace("\\", r"\\").replace(
                "\n", r"\n"
            )
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: Content-Type for the text exposition (what Prometheus scrapers send
#: in Accept and expect back).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
