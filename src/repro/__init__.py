"""repro — a full reproduction of ZeroED (ICDE 2025).

ZeroED is a hybrid zero-shot error-detection framework combining LLM
reasoning with a classical ML pipeline.  The top-level package exposes
the public API: dataset access, the ZeroED pipeline, the baselines, and
metric helpers.

Quickstart::

    from repro import ZeroED, make_dataset, score_masks

    data = make_dataset("hospital", seed=0)
    zeroed = ZeroED(seed=0)
    result = zeroed.detect(data.dirty)
    print(score_masks(result.mask, data.mask))
"""

from repro.version import __version__

from repro.config import ZeroEDConfig
from repro.core.pipeline import FittedZeroED, ZeroED
from repro.core.result import DetectionResult
from repro.serving import BatchScorer, DetectorArtifact, ScoringService
from repro.data import (
    COMPARISON_DATASETS,
    ErrorMask,
    ErrorProfile,
    ErrorType,
    Table,
    get_dataset,
    make_dataset,
)
from repro.llm import LLMClient, SimulatedLLM, TokenLedger
from repro.ml import PRF, precision_recall_f1, score_masks

__all__ = [
    "BatchScorer",
    "COMPARISON_DATASETS",
    "DetectionResult",
    "DetectorArtifact",
    "ErrorMask",
    "FittedZeroED",
    "ScoringService",
    "ErrorProfile",
    "ErrorType",
    "LLMClient",
    "PRF",
    "SimulatedLLM",
    "Table",
    "TokenLedger",
    "ZeroED",
    "ZeroEDConfig",
    "__version__",
    "get_dataset",
    "make_dataset",
    "precision_recall_f1",
    "score_masks",
]
