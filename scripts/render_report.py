"""Render a consolidated text report from results/*.json artifacts.

Usage:  python scripts/render_report.py [> results/REPORT.txt]

Collects every benchmark artifact the suite wrote and prints the
paper-style tables plus ASCII renderings of the figure series, so the
whole evaluation is readable in one place without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.figures import render_line_chart
from repro.bench.reporting import format_table

RESULTS = Path(__file__).resolve().parents[1] / "results"


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    table2 = load("table2_datasets")
    if table2:
        section("Table II — dataset statistics")
        print(format_table(
            table2,
            ["Name", "#Tuples", "#A.", "Err.(%)", "MV(%)", "PV(%)",
             "T(%)", "O(%)", "RV(%)"],
        ))

    table3 = load("table3_comparison")
    if table3:
        section("Table III — method comparison")
        print(format_table(
            table3, ["method", "dataset", "precision", "recall", "f1"]
        ))

    table4 = load("table4_ablation")
    if table4:
        section("Table IV — ablation study")
        print(format_table(
            table4, ["variant", "dataset", "precision", "recall", "f1"]
        ))

    table5 = load("table5_llms")
    if table5:
        section("Table V — LLM choice")
        print(format_table(
            table5, ["llm", "dataset", "precision", "recall", "f1"]
        ))

    table6 = load("table6_clustering")
    if table6:
        section("Table VI — clustering methods")
        print(format_table(
            table6, ["clustering", "dataset", "precision", "recall", "f1"]
        ))

    fig6 = load("fig6_raha_labels")
    if fig6:
        section("Fig. 6 — Raha active learning vs ZeroED")
        datasets = sorted({r["dataset"] for r in fig6})
        for dataset in datasets:
            series = {
                "raha": [
                    (r["labels"], r["f1"]) for r in fig6
                    if r["dataset"] == dataset and r["method"] == "raha"
                ],
            }
            zeroed = [
                r["f1"] for r in fig6
                if r["dataset"] == dataset and r["method"] == "zeroed"
            ]
            if zeroed:
                series["zeroed(0 labels)"] = [
                    (x, zeroed[0]) for x in (0, 45)
                ]
            print(render_line_chart(
                series, title=f"[{dataset}]", height=10,
                y_label="F1", x_label="#labeled tuples",
            ))

    fig7 = load("fig7_runtime")
    if fig7:
        section("Fig. 7b — runtime vs Tax size")
        methods = sorted({r["method"] for r in fig7["tax_scaling"]})
        series = {
            m: [
                (r["rows"], r["seconds"]) for r in fig7["tax_scaling"]
                if r["method"] == m
            ]
            for m in methods
        }
        print(render_line_chart(
            series, height=12, y_label="seconds", x_label="rows"
        ))

    fig8 = load("fig8_tokens")
    if fig8:
        section("Fig. 8b — token cost vs Tax size")
        methods = sorted({r["method"] for r in fig8["tax_scaling"]})
        series = {
            m: [
                (r["rows"], r["total"]) for r in fig8["tax_scaling"]
                if r["method"] == m
            ]
            for m in methods
        }
        print(render_line_chart(
            series, height=12, y_label="tokens", x_label="rows"
        ))

    fig9 = load("fig9_label_rate")
    if fig9:
        section("Fig. 9 — label-rate sweep")
        print(format_table(
            fig9, ["dataset", "label_rate", "precision", "recall", "f1"]
        ))

    fig10 = load("fig10_corr_attrs")
    if fig10:
        section("Fig. 10 — correlated-attribute sweep")
        print(format_table(
            fig10, ["dataset", "n_correlated", "precision", "recall", "f1"]
        ))

    fig11 = load("fig11_error_types")
    if fig11:
        section("Fig. 11 — error-type scenarios (Beers)")
        print(format_table(
            fig11, ["scenario", "method", "precision", "recall", "f1"]
        ))

    sig = load("significance")
    if sig:
        section("Paired t-tests (3 seeds)")
        print(format_table(
            sig, ["method", "dataset", "precision", "recall", "f1",
                  "p_vs_zeroed"],
        ))

    extended = load("ablation_extended")
    if extended:
        section("Extended ablations (beyond Table IV)")
        print(format_table(
            extended, ["variant", "dataset", "precision", "recall", "f1"]
        ))


if __name__ == "__main__":
    main()
