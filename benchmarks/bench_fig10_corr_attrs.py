"""E10 — Fig. 10: effect of the correlated-attribute count.

Sweeps k (top-k NMI partners concatenated into the unified features and
used as labeling context) from 1 to 5.  Shape expectation from the
paper: the middle settings (2-3) are at least as good on average as the
extremes (1: insufficient context; 5: noise and dimensionality).
"""

from __future__ import annotations

import numpy as np

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.config import ZeroEDConfig

KS = (1, 2, 3, 4, 5)


def build_fig10() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        for k in KS:
            config = ZeroEDConfig(seed=SEED, n_correlated=k)
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                zeroed_config=config,
            )
            row = run.as_row()
            row["n_correlated"] = k
            rows.append(row)
    return rows


def test_fig10_correlated_attributes(benchmark):
    rows = benchmark.pedantic(build_fig10, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["dataset", "n_correlated", "precision", "recall", "f1"],
        title="Fig. 10 — performance under different correlated-attribute counts",
    ))
    write_json(results_dir() / "fig10_corr_attrs.json", rows)

    f1 = {(r["dataset"], r["n_correlated"]): r["f1"] for r in rows}
    mean_at = {
        k: float(np.mean([f1[(d, k)] for d in SWEEP_DATASETS])) for k in KS
    }
    # Shape: the 2-3 band is competitive with any other setting.
    assert max(mean_at[2], mean_at[3]) >= max(mean_at.values()) - 0.05
