"""E6 — Fig. 6: Raha's active-learning curve vs ZeroED.

Sweeps Raha's human-label budget from 0 to 45 tuples and records where
(if anywhere) it first overtakes the zero-label ZeroED line — the
paper's point being that Raha needs >20 labeled tuples on most datasets
to match ZeroED.
"""

from __future__ import annotations

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.registry import get_dataset

BUDGETS = (0, 5, 10, 15, 20, 25, 30, 35, 40, 45)


def build_fig6() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        spec = get_dataset(dataset)
        data = spec.make(n_rows=rows_for(dataset), seed=SEED)
        zeroed = run_method("zeroed", dataset, seed=SEED, data=data)
        rows.append({
            "dataset": dataset, "method": "zeroed", "labels": 0,
            "f1": round(zeroed.prf.f1, 3),
        })
        for budget in BUDGETS:
            run = run_method(
                "raha", dataset, seed=SEED, data=data, label_budget=budget
            )
            rows.append({
                "dataset": dataset, "method": "raha", "labels": budget,
                "f1": round(run.prf.f1, 3),
            })
    return rows


def test_fig6_raha_active_learning(benchmark):
    rows = benchmark.pedantic(build_fig6, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["dataset", "method", "labels", "f1"],
        title="Fig. 6 — Raha performance via active learning",
    ))
    write_json(results_dir() / "fig6_raha_labels.json", rows)

    for dataset in SWEEP_DATASETS:
        zeroed_f1 = next(
            r["f1"] for r in rows
            if r["dataset"] == dataset and r["method"] == "zeroed"
        )
        raha = {
            r["labels"]: r["f1"] for r in rows
            if r["dataset"] == dataset and r["method"] == "raha"
        }
        # Shape: Raha's curve rises with the label budget...
        assert raha[45] >= raha[0]
        # ...and Raha at the paper's 2-tuple regime (~0-5 labels) does
        # not beat zero-label ZeroED.
        assert raha[0] <= zeroed_f1
        assert raha[5] <= zeroed_f1 + 0.05
