"""Benchmark: telemetry overhead gate (observability layer, PR 10).

The tracing contract has two halves and this benchmark gates both:

* **observe-only** — scoring with a recording tracer installed must
  produce byte-identical masks to scoring with the default no-op
  tracer, and the exported Chrome trace must be valid JSON covering
  the expected span names (``featurize`` / ``base_matrix`` /
  ``predict``);
* **cheap when off, cheap enough when on** — the instrumented scoring
  path is timed best-of-N under the no-op tracer and again under a
  recording tracer.  The gate fails only when the enabled run is both
  >5% slower *and* the absolute gap exceeds a tenth of the shared GEMM
  calibration unit — a relative-only gate flakes on CI noise when the
  workload is fast, an absolute-only gate goes blind on slow hardware.

A per-span microbenchmark (no-op span vs a bare ``perf_counter`` pair
on an empty body) is recorded for the JSON but not gated: it measures
nanoseconds and any gate on it would be a coin flip.

Writes ``BENCH_obs.json``.  ``--smoke`` runs the same cases at the
same sizes (the workload is already CI-sized) and exits 1 on any
failure — the CI gate for the observability layer.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from _common import calibrate_gemm_s

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.registry import make_dataset
from repro.obs import trace

#: Overhead gate: enabled-tracer scoring may exceed no-op scoring by
#: at most this factor...
MAX_OVERHEAD_RATIO = 1.05
#: ...unless the absolute gap is below this many GEMM calibration
#: units (sub-noise differences never trip the gate).
ABS_SLACK_GEMM_UNITS = 0.1

FIT_ROWS = 2_000
SCORE_ROWS = 5_000
REPEATS = 3

#: Span names one scoring pass must land in the trace.
EXPECTED_SCORE_SPANS = ("featurize", "base_matrix", "predict")


def _mask_sha(mask) -> str:
    return hashlib.sha256(mask.matrix.tobytes()).hexdigest()


def fit_scorer():
    """One Tax fit shared by every case (scoring is the subject)."""
    config = ZeroEDConfig(
        seed=0, sampling_engine="auto", detector_engine="auto"
    )
    t0 = time.perf_counter()
    fitted = ZeroED(config).fit(
        make_dataset("tax", n_rows=FIT_ROWS, seed=0).dirty
    )
    return fitted, fitted.scorer(), time.perf_counter() - t0


def overhead_case(scorer) -> tuple[dict, list[str]]:
    """Best-of-N scoring wall time, no-op vs recording tracer.

    The modes are interleaved (noop, enabled, noop, enabled, ...) so a
    machine warming up or throttling mid-benchmark penalises both
    sides equally instead of whichever ran second.
    """
    failures: list[str] = []
    table = make_dataset("tax", n_rows=SCORE_ROWS, seed=1).dirty
    scorer.score_table(table)  # warm caches once, outside timing

    times = {"noop": [], "enabled": []}
    shas = {"noop": set(), "enabled": set()}
    span_names: set[str] = set()
    for _ in range(REPEATS):
        for mode in ("noop", "enabled"):
            tracer = trace.Tracer() if mode == "enabled" else None
            if tracer is not None:
                trace.set_tracer(tracer)
            try:
                t0 = time.perf_counter()
                result = scorer.score_table(table)
                times[mode].append(time.perf_counter() - t0)
            finally:
                trace.set_tracer(None)
            shas[mode].add(_mask_sha(result.mask))
            if tracer is not None:
                span_names.update(r.name for r in tracer.records)

    best_noop = min(times["noop"])
    best_enabled = min(times["enabled"])
    calib = calibrate_gemm_s()
    ratio = best_enabled / best_noop
    gap_units = (best_enabled - best_noop) / calib
    out = {
        "n_rows": SCORE_ROWS,
        "repeats": REPEATS,
        "noop_best_s": round(best_noop, 4),
        "enabled_best_s": round(best_enabled, 4),
        "overhead_ratio": round(ratio, 4),
        "gemm_calibration_s": round(calib, 4),
        "gap_gemm_units": round(gap_units, 4),
        "max_ratio": MAX_OVERHEAD_RATIO,
        "abs_slack_units": ABS_SLACK_GEMM_UNITS,
        "spans_per_score": sorted(span_names),
    }
    if ratio > MAX_OVERHEAD_RATIO and gap_units > ABS_SLACK_GEMM_UNITS:
        failures.append(
            f"enabled tracer is {ratio:.3f}x the no-op scoring time "
            f"(gap {gap_units:.3f} calibration units; gate "
            f"{MAX_OVERHEAD_RATIO}x / {ABS_SLACK_GEMM_UNITS} units)"
        )
    if len(shas["noop"] | shas["enabled"]) != 1:
        failures.append(
            "masks diverge across tracer modes — telemetry is not "
            "observe-only"
        )
    out["mask_identical_across_modes"] = (
        len(shas["noop"] | shas["enabled"]) == 1
    )
    for name in EXPECTED_SCORE_SPANS:
        if name not in span_names:
            failures.append(f"scoring trace is missing span {name!r}")
    return out, failures


def trace_export_case(scorer) -> tuple[dict, list[str]]:
    """One traced score exported to disk must be Perfetto-loadable
    (valid JSON, complete X events, parent links that resolve)."""
    failures: list[str] = []
    table = make_dataset("tax", n_rows=1_000, seed=2).dirty
    tracer = trace.Tracer()
    trace.set_tracer(tracer)
    try:
        scorer.score_table(table)
    finally:
        trace.set_tracer(None)
    with TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "score_trace.json"
        tracer.export(out_path)
        payload = json.loads(out_path.read_text())
    events = payload.get("traceEvents", [])
    ids = {e["args"]["span_id"] for e in events}
    dangling = [
        e["name"]
        for e in events
        if e["args"].get("parent_id") not in ids
        and "parent_id" in e["args"]
    ]
    out = {
        "n_events": len(events),
        "span_names": sorted({e["name"] for e in events}),
        "dangling_parents": dangling,
    }
    if not events:
        failures.append("exported trace carries no events")
    for event in events:
        if event.get("ph") != "X" or event.get("dur", -1) < 0:
            failures.append(f"malformed trace event {event.get('name')!r}")
            break
    if dangling:
        failures.append(f"dangling parent ids on spans {dangling!r}")
    return out, failures


def noop_span_case() -> dict:
    """Per-span cost of the no-op path vs a bare perf_counter pair.

    Recorded for the JSON (nanoseconds; a gate here would be noise).
    """
    n = 100_000

    t0 = time.perf_counter()
    for _ in range(n):
        s0 = time.perf_counter()
        time.perf_counter()  # the "stage"
        time.perf_counter() - s0
    bare_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("noop"):
            time.perf_counter()
    span_s = time.perf_counter() - t0

    return {
        "iterations": n,
        "bare_pair_ns": round(1e9 * bare_s / n, 1),
        "noop_span_ns": round(1e9 * span_s / n, 1),
        "ratio": round(span_s / bare_s, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="overhead + export + observe-only gates; exit 1 on "
        "failure (CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_obs.json",
    )
    args = parser.parse_args()

    fitted, scorer, fit_s = fit_scorer()
    results: dict = {
        "protocol": (
            "one Tax fit (2k rows, auto engines); scoring a 5k table "
            "best-of-3 with the default no-op tracer vs a recording "
            "tracer, modes interleaved; gate trips only when the "
            "enabled run is >5% slower AND the gap exceeds 0.1 GEMM "
            "calibration units; masks must be byte-identical across "
            "modes and the exported Chrome trace valid"
        ),
        "fit_s": round(fit_s, 1),
        "engines": fitted.details["engines"],
        "cases": {},
    }
    all_failures: list[str] = []

    overhead, failures = overhead_case(scorer)
    results["cases"]["overhead"] = overhead
    all_failures.extend(failures)
    print(
        f"overhead: noop {overhead['noop_best_s']}s, enabled "
        f"{overhead['enabled_best_s']}s ({overhead['overhead_ratio']}x, "
        f"gap {overhead['gap_gemm_units']} calibration units), "
        f"masks identical={overhead['mask_identical_across_modes']}"
    )

    export, failures = trace_export_case(scorer)
    results["cases"]["export"] = export
    all_failures.extend(failures)
    print(
        f"export: {export['n_events']} events, spans "
        f"{export['span_names']}, dangling={export['dangling_parents']}"
    )

    results["cases"]["noop_span"] = noop_span_case()
    print(
        f"noop span: {results['cases']['noop_span']['noop_span_ns']}ns "
        f"vs bare pair {results['cases']['noop_span']['bare_pair_ns']}ns"
    )

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if all_failures:
        for failure in all_failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
