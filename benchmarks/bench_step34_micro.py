"""Micro-benchmark: Step-3 verification + Step-4 train/predict.

Times Algorithm 1's mutual-verification phase (`verify_attribute` over
every attribute), training-data assembly, and the detector stage
(`ErrorDetector.fit` / `.predict`) on 1k/10k-row Tax slices, and writes
the results to ``BENCH_training.json`` so the performance trajectory is
tracked PR-over-PR.

The pipeline is built once per slice up to the LLM-labeling output
(features warm, sampling on the fast engine so setup stays cheap); the
timed sections are exactly the Step-3/Step-4 stage bodies the pipeline
runs.  The headline number is ``combined_s`` = verification + detector
train + predict — the post-PR 2 hot path this PR vectorizes.

When the config exposes ``detector_engine`` (PR 3), the detector stage
is additionally timed with the opt-in float32 ``fast`` engine and
reported alongside the exact numbers.

``--smoke`` runs the 1k slice only and **fails** (exit 1) when the
exact path — or, separately, the batched Step-3 assembly stage
(PR 4) — regresses more than 2x against its recorded baseline,
hardware-normalised by the shared in-run GEMM calibration
(``_common.calibrate_gemm_s``) — the same CI-gate pattern as
``bench_sampling_micro.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_step34_micro.py
    PYTHONPATH=src python benchmarks/bench_step34_micro.py --smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

from _common import calibrate_gemm_s

from repro.config import ZeroEDConfig
from repro.core.correlation import correlated_attributes
from repro.core.criteria_step import generate_initial_criteria
from repro.core.detector import ErrorDetector
from repro.core.featurize import FeatureSpace
from repro.core.guidelines import build_guideline
from repro.core.labeling import label_representatives
from repro.core.sampling import sample_representatives
from repro.core.training_data import assemble_training_data, verify_attribute
from repro.data.registry import make_dataset
from repro.data.stats import compute_all_stats
from repro.llm.profiles import get_profile
from repro.llm.simulated.engine import SimulatedLLM
from repro.ml.rng import spawn

#: Per-rowcount seconds measured at PR 3 time on the seed (per-row)
#: Step-3/4 implementation (single-core container), for the
#: speedup-trajectory columns.
SEED_BASELINE_S = {
    "1000": {"verify_s": 0.30, "train_s": 10.37, "predict_s": 0.03,
             "combined_s": 10.70},
    "10000": {"verify_s": 2.55, "train_s": 50.16, "predict_s": 0.46,
              "combined_s": 53.17},
}

#: The vectorized (PR 3) exact path's 1k combined measurement divided
#: by ``calibrate_gemm_s()`` on the recording machine.  The smoke gate
#: compares *calibration-units*, so slower CI hardware rescales both
#: sides instead of tripping it.
EXACT_BASELINE_1K_UNITS = 179.0

#: The batched (PR 4) Step-3 assembly's 1k measurement in the same
#: calibration units (``assemble_s / calibrate_gemm_s()`` on the
#: recording machine); the smoke gate fails on >2x regression of the
#: assembly stage, same pattern as the combined gate above.
ASSEMBLY_BASELINE_1K_UNITS = 12.5

SIZES = (1_000, 10_000)
SMOKE_REGRESSION_FACTOR = 2.0


def build_state(n_rows: int, seed: int = 0) -> dict:
    """Run the pipeline up to LLM labeling (Steps 1-2), warm features."""
    config = ZeroEDConfig(seed=seed, sampling_engine="fast")
    table = make_dataset("tax", n_rows=n_rows, seed=seed).dirty
    llm = SimulatedLLM(profile=get_profile(config.llm_model), seed=seed)
    stats = compute_all_stats(table)
    correlated = correlated_attributes(table, config.n_correlated, seed=seed)
    criteria = generate_initial_criteria(llm, table, correlated, config)
    fs = FeatureSpace(table, stats, correlated, criteria, config)
    n_clusters = config.clusters_for(table.n_rows)
    sampling = {
        attr: sample_representatives(
            fs.unified_matrix(attr),
            n_clusters=n_clusters,
            method=config.clustering,
            seed=spawn(seed, f"sample/{attr}"),
            engine=config.sampling_engine,
        )
        for attr in table.attributes
    }
    guidelines = {}
    for attr in table.attributes:
        examples = [
            {attr: table.cell(i, attr),
             **{q: table.cell(i, q) for q in correlated[attr]}}
            for i in sampling[attr].sampled_indices[:15]
        ]
        guidelines[attr] = build_guideline(llm, table, attr, examples).text
    llm_labels = {}
    for attr in table.attributes:
        pair_stats = {
            q: _pair_stats(table, q, attr) for q in correlated[attr]
        }
        llm_labels[attr] = label_representatives(
            llm=llm, table=table, attr=attr,
            sampled_indices=sampling[attr].sampled_indices,
            guideline_text=guidelines[attr], stats=stats[attr],
            pair_stats=pair_stats, correlated=correlated[attr],
            config=config,
        )
    return {
        "config": config, "table": table, "llm": llm, "fs": fs,
        "sampling": sampling, "correlated": correlated,
        "llm_labels": llm_labels,
    }


def _pair_stats(table, q, attr):
    """Use the Table-level memo when available (PR 3), else recompute."""
    if hasattr(table, "pair_stats"):
        return table.pair_stats(q, attr)
    from repro.data.stats import PairStats

    return PairStats.compute(table, q, attr)


def bench_size(n_rows: int) -> dict:
    state = build_state(n_rows)
    config, table, fs = state["config"], state["table"], state["fs"]
    out: dict = {"n_rows": n_rows, "n_attributes": table.n_attributes}

    # --- Step 3: mutual verification (the timed hot path) --------------
    t0 = time.perf_counter()
    outcomes = {
        attr: verify_attribute(
            llm=state["llm"], table=table, attr=attr, feature_space=fs,
            sampling=state["sampling"][attr],
            llm_labels=state["llm_labels"][attr],
            correlated=state["correlated"][attr], config=config,
        )
        for attr in table.attributes
    }
    out["verify_s"] = round(time.perf_counter() - t0, 4)

    # --- Step 3: assembly (reported, not part of the gated figure) -----
    t0 = time.perf_counter()
    training = {
        attr: assemble_training_data(
            llm=state["llm"], table=table, attr=attr, feature_space=fs,
            outcome=outcomes[attr], correlated=state["correlated"][attr],
            config=config,
        )
        for attr in table.attributes
    }
    out["assemble_s"] = round(time.perf_counter() - t0, 4)
    out["n_training_rows"] = int(
        sum(len(t.labels) for t in training.values())
    )

    # --- Step 4: detector train + predict, per engine ------------------
    engines = ["exact"]
    if any(
        f.name == "detector_engine"
        for f in dataclasses.fields(ZeroEDConfig)
    ):
        engines.append("fast")
    for engine in engines:
        cfg = (
            config if engine == "exact"
            else dataclasses.replace(config, detector_engine=engine)
        )
        t0 = time.perf_counter()
        detector = ErrorDetector(cfg).fit(training, fs)
        train_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        detector.predict(table, fs)
        predict_s = time.perf_counter() - t0
        prefix = "" if engine == "exact" else f"{engine}_"
        out[f"{prefix}train_s"] = round(train_s, 4)
        out[f"{prefix}predict_s"] = round(predict_s, 4)
    out["combined_s"] = round(
        out["verify_s"] + out["train_s"] + out["predict_s"], 4
    )
    if "fast_train_s" in out:
        out["fast_combined_s"] = round(
            out["verify_s"] + out["fast_train_s"] + out["fast_predict_s"], 4
        )

    baseline = SEED_BASELINE_S.get(str(n_rows))
    if baseline:
        out["speedup_vs_seed"] = round(
            baseline["combined_s"] / out["combined_s"], 2
        )
        out["verify_speedup_vs_seed"] = round(
            baseline["verify_s"] / out["verify_s"], 2
        )
        if "fast_combined_s" in out:
            out["fast_speedup_vs_seed"] = round(
                baseline["combined_s"] / out["fast_combined_s"], 2
            )
    if n_rows == 1_000:
        calib = calibrate_gemm_s()
        out["gemm_calibration_s"] = round(calib, 4)
        out["combined_units"] = round(out["combined_s"] / calib, 2)
        out["combined_units_vs_baseline"] = round(
            out["combined_units"] / EXACT_BASELINE_1K_UNITS, 2
        )
        out["assemble_units"] = round(out["assemble_s"] / calib, 2)
        out["assemble_units_vs_baseline"] = round(
            out["assemble_units"] / ASSEMBLY_BASELINE_1K_UNITS, 2
        )
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1k rows only; exit 1 on >2x regression of the exact "
        "Step-3/4 path against the recorded baseline (CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_training.json",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.smoke else SIZES
    results = {
        "protocol": (
            "dirty Tax slices, pipeline built through LLM labeling "
            "(fast sampling engine), then timed: Step-3 mutual "
            "verification over all attributes, training-data assembly, "
            "and detector fit/predict; combined_s = verify + train + "
            "predict; speedups compare against the recorded per-row "
            "seed implementation"
        ),
        "seed_baseline_s": SEED_BASELINE_S,
        "sizes": {},
    }
    failed = False
    for n_rows in sizes:
        entry = bench_size(n_rows)
        results["sizes"][str(n_rows)] = entry
        line = (
            f"tax/{n_rows}: verify {entry['verify_s']}s, "
            f"train {entry['train_s']}s, predict {entry['predict_s']}s "
            f"(combined {entry['combined_s']}s"
        )
        if "speedup_vs_seed" in entry:
            line += f", {entry['speedup_vs_seed']}x vs seed"
        line += ")"
        if "fast_combined_s" in entry:
            line += (
                f"; fast engine: train {entry['fast_train_s']}s, "
                f"predict {entry['fast_predict_s']}s "
                f"(combined {entry['fast_combined_s']}s"
            )
            if "fast_speedup_vs_seed" in entry:
                line += f", {entry['fast_speedup_vs_seed']}x vs seed"
            line += ")"
        ratio = entry.get("combined_units_vs_baseline")
        if ratio is not None:
            line += f" [{ratio}x vs baseline, hardware-normalised]"
            if args.smoke and ratio > SMOKE_REGRESSION_FACTOR:
                line += "  REGRESSION"
                failed = True
        assemble_ratio = entry.get("assemble_units_vs_baseline")
        if assemble_ratio is not None:
            line += (
                f"; assembly {entry['assemble_s']}s "
                f"[{assemble_ratio}x vs baseline]"
            )
            if args.smoke and assemble_ratio > SMOKE_REGRESSION_FACTOR:
                line += "  ASSEMBLY REGRESSION"
                failed = True
        print(line)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failed:
        print(
            f"FAIL: exact Step-3/4 path or assembly stage slower than "
            f"{SMOKE_REGRESSION_FACTOR}x its recorded baseline"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
