"""Statistical significance of ZeroED's wins (paper Table III footnote).

The paper backs Table III with paired t-tests (p < 0.05) over repeated
runs.  This bench repeats ZeroED and the strongest baselines across
seeds on two datasets and reports mean±std F1 plus the paired-t p-value
of ZeroED against each baseline.
"""

from __future__ import annotations

from _common import SEED, rows_for
from repro.bench import paired_t_test, run_repeated
from repro.bench.reporting import format_table, results_dir, write_json

DATASETS = ("beers", "hospital")
BASELINES = ("dboost", "nadeef", "fm_ed")
SEEDS = (0, 1, 2)


def build_significance() -> list[dict]:
    rows = []
    for dataset in DATASETS:
        zeroed = run_repeated(
            "zeroed", dataset, seeds=SEEDS, n_rows=rows_for(dataset)
        )
        rows.append(dict(zeroed.as_row(), p_vs_zeroed=""))
        for baseline in BASELINES:
            agg = run_repeated(
                baseline, dataset, seeds=SEEDS, n_rows=rows_for(dataset)
            )
            _, p = paired_t_test(zeroed, agg)
            rows.append(dict(agg.as_row(), p_vs_zeroed=round(p, 4)))
    return rows


def test_significance(benchmark):
    rows = benchmark.pedantic(build_significance, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["method", "dataset", "runs", "precision", "recall", "f1",
         "p_vs_zeroed"],
        title="Paired t-tests: ZeroED vs strongest baselines (3 seeds)",
    ))
    write_json(results_dir() / "significance.json", rows)

    # Shape: ZeroED's mean F1 beats each baseline's mean on each dataset.
    f1_mean = {}
    for row in rows:
        f1_mean[(row["method"], row["dataset"])] = float(
            row["f1"].split("±")[0]
        )
    for dataset in DATASETS:
        zeroed_key = next(
            k for k in f1_mean if k[0].startswith("zeroed") and k[1] == dataset
        )
        for baseline in BASELINES:
            assert f1_mean[zeroed_key] > f1_mean[(baseline, dataset)]
