"""Benchmark: out-of-core sharded scoring (streaming layer).

Measures, against one fitted Tax detector:

* **equivalence** — chunked ``score_chunks`` masks vs the in-memory
  ``score_table`` mask on a 10k Tax slice, across chunk sizes × worker
  counts (must be byte-identical for every combination);
* **throughput** — rows/s of the streaming CSV path
  (``score_csv --chunk-rows``) at 100k and 1M synthetic Tax rows, next
  to the in-memory path at 100k (the 1M table is scored *only*
  out-of-core — materializing it whole is exactly what the layer
  exists to avoid);
* **peak memory** — tracemalloc peak of the streaming path vs the
  in-memory path (100k) and vs a single-chunk baseline (the bounded-
  memory claim: streaming peak stays a small multiple of one chunk,
  whatever the total row count).

The synthetic CSV is itself produced out-of-core: 50k-row shards are
generated and appended (``append_csv_rows``) so the benchmark never
holds the full table either.

Writes ``BENCH_streaming.json``.  ``--smoke`` runs the 10k equivalence
grid plus a 200k-row / 10k-chunk memory check and **fails** (exit 1)
when any chunked mask diverges from the in-memory one, when scoring
touches the LLM, when the streaming peak exceeds
:data:`MEM_BOUND_FACTOR` times the single-chunk baseline, or when
throughput regresses more than 2x against its recorded baseline
(hardware-normalised by the shared GEMM calibration) — the CI gate for
the streaming layer.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import time
import tracemalloc
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from _common import calibrate_gemm_s

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.csvio import append_csv_rows, iter_csv_chunks, write_csv
from repro.data.registry import make_dataset
from repro.serving.streaming import iter_table_chunks, score_chunks

#: Best chunked-grid score time on the 10k equivalence slice (steady
#: state, untraced) divided by ``calibrate_gemm_s()`` on the recording
#: machine; the smoke gate fails on >2x regression in calibration
#: units, the same pattern as the other smoke gates.  (The 200k memory
#: case is NOT the throughput probe — it runs under tracemalloc, whose
#: allocator hooks dominate its wall time.)
STREAM_BASELINE_SMOKE_UNITS = 17.0
SMOKE_REGRESSION_FACTOR = 2.0

#: Bounded-memory gate: the streaming path's tracemalloc peak must stay
#: under this multiple of the single-chunk baseline peak (one chunk
#: read + scored in isolation).  With 2 workers the read-ahead window
#: holds up to 4 chunks in flight, so 8x leaves headroom without
#: letting an accidental whole-table materialization pass.
MEM_BOUND_FACTOR = 8.0

#: Smoke-mode sizes (satellite memory check: 200k rows, 10k chunks).
SMOKE_EQUIV_ROWS = 10_000
SMOKE_EQUIV_GRID = [(1_000, 1), (1_000, 4), (3_333, 1), (3_333, 4),
                    (20_000, 1), (20_000, 4)]
SMOKE_MEM_ROWS = 200_000
SMOKE_MEM_CHUNK = 10_000

#: Full-mode sizes: in-memory comparison at 100k, streaming-only at 1M.
FULL_SIZES = [100_000, 1_000_000]
FULL_CHUNK = 50_000
FULL_JOBS = 4

#: Shard size for out-of-core synthetic CSV generation.
GEN_SHARD_ROWS = 50_000

FIT_ROWS = 2_000


def _mask_sha(mask) -> str:
    return hashlib.sha256(mask.matrix.tobytes()).hexdigest()


def _mb(n_bytes: float) -> float:
    return round(n_bytes / 1e6, 1)


def build_csv(path: Path, total_rows: int) -> float:
    """Generate a synthetic Tax CSV of ``total_rows`` rows, shard-wise.

    Each shard comes from a different generator seed so values vary
    across the file (no degenerate all-duplicates table); shards are
    appended, so peak memory is one shard regardless of ``total_rows``.
    """
    t0 = time.perf_counter()
    written = 0
    shard_seed = 1_000
    while written < total_rows:
        n = min(GEN_SHARD_ROWS, total_rows - written)
        shard = make_dataset("tax", n_rows=n, seed=shard_seed).dirty
        if written == 0:
            write_csv(shard, path)
        else:
            append_csv_rows(shard, path)
        written += n
        shard_seed += 1
    return time.perf_counter() - t0


def fit_scorer():
    """One Tax fit shared by every case (scoring is the subject here)."""
    config = ZeroEDConfig(
        seed=0, sampling_engine="auto", detector_engine="auto"
    )
    t0 = time.perf_counter()
    fitted = ZeroED(config).fit(
        make_dataset("tax", n_rows=FIT_ROWS, seed=0).dirty
    )
    return fitted, fitted.scorer(), time.perf_counter() - t0


def _traced(fn):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes)."""
    tracemalloc.start()
    try:
        value = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return value, peak


def equivalence_case(scorer, ledger) -> tuple[dict, list[str]]:
    """10k Tax: chunked masks byte-identical across chunk sizes × jobs."""
    failures: list[str] = []
    table = make_dataset("tax", n_rows=SMOKE_EQUIV_ROWS, seed=1).dirty
    requests_before = ledger.summary()["requests"]
    t0 = time.perf_counter()
    whole = scorer.score_table(table)
    whole_s = time.perf_counter() - t0
    whole_sha = _mask_sha(whole.mask)
    out: dict = {
        "n_rows": table.n_rows,
        "in_memory_score_s": round(whole_s, 3),
        "mask_sha256": whole_sha,
        "grid": [],
    }
    for chunk_rows, jobs in SMOKE_EQUIV_GRID:
        t0 = time.perf_counter()
        result = score_chunks(
            scorer,
            iter_table_chunks(table, chunk_rows),
            chunk_rows=chunk_rows,
            n_jobs=jobs,
        )
        elapsed = time.perf_counter() - t0
        identical = _mask_sha(result.mask) == whole_sha
        out["grid"].append(
            {
                "chunk_rows": chunk_rows,
                "jobs": jobs,
                "n_shards": len(result.shards),
                "score_s": round(elapsed, 3),
                "rows_per_s": round(table.n_rows / elapsed, 1),
                "mask_identical": identical,
            }
        )
        if not identical:
            failures.append(
                f"chunked mask diverges at chunk_rows={chunk_rows} "
                f"jobs={jobs}"
            )
    llm_calls = ledger.summary()["requests"] - requests_before
    out["llm_calls_during_scoring"] = llm_calls
    if llm_calls != 0:
        failures.append("streaming scoring issued LLM calls")
    return out, failures


def memory_case(
    scorer, total_rows: int, chunk_rows: int, jobs: int,
    compare_in_memory: bool, gate: bool, untraced_timing: bool = False,
) -> tuple[dict, list[str]]:
    """Score a ``total_rows`` CSV out-of-core, peaks under tracemalloc.

    tracemalloc's allocator hooks inflate wall time several-fold, so
    with ``untraced_timing`` the case runs twice: once untraced for the
    real throughput figure, once traced for the peak (full mode).  The
    smoke gate keeps the single traced run — its throughput gate lives
    on the untraced equivalence grid instead.
    """
    failures: list[str] = []
    out: dict = {
        "n_rows": total_rows,
        "chunk_rows": chunk_rows,
        "jobs": jobs,
    }
    with TemporaryDirectory() as tmp:
        path = Path(tmp) / "tax.csv"
        out["generate_s"] = round(build_csv(path, total_rows), 1)
        out["csv_bytes"] = path.stat().st_size

        # Single-chunk baseline: one chunk read + scored in isolation —
        # the unit the bounded-memory claim is measured against.
        def one_chunk():
            chunk = next(iter_csv_chunks(path, chunk_rows))
            return scorer.score_table(chunk)

        _, chunk_peak = _traced(one_chunk)
        out["single_chunk_peak_mb"] = _mb(chunk_peak)

        def stream():
            return scorer.score_csv(
                path, chunk_rows=chunk_rows, n_jobs=jobs
            )

        if untraced_timing:
            t0 = time.perf_counter()
            result = stream()
            elapsed = time.perf_counter() - t0
            traced_result, stream_peak = _traced(stream)
            if result.manifest()["mask_sha256"] != (
                traced_result.manifest()["mask_sha256"]
            ):
                failures.append("traced/untraced streaming masks diverge")
            out["timing_traced"] = False
        else:
            t0 = time.perf_counter()
            result, stream_peak = _traced(stream)
            elapsed = time.perf_counter() - t0
            out["timing_traced"] = True
        out["streaming_score_s"] = round(elapsed, 2)
        out["rows_per_s"] = round(total_rows / elapsed, 1)
        out["n_shards"] = len(result.shards)
        out["error_cells"] = result.mask.error_count()
        out["mask_sha256"] = result.manifest()["mask_sha256"]
        out["streaming_peak_mb"] = _mb(stream_peak)
        out["peak_vs_single_chunk"] = round(stream_peak / chunk_peak, 2)
        out["ru_maxrss_mb"] = _mb(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        )
        if result.total_rows != total_rows:
            failures.append(
                f"streamed {result.total_rows} rows, expected {total_rows}"
            )
        if gate and stream_peak > MEM_BOUND_FACTOR * chunk_peak:
            failures.append(
                f"streaming peak {_mb(stream_peak)}MB exceeds "
                f"{MEM_BOUND_FACTOR}x single-chunk baseline "
                f"{_mb(chunk_peak)}MB"
            )

        if compare_in_memory:
            from repro.data.csvio import read_csv

            def whole():
                return scorer.score_table(read_csv(path))

            t0 = time.perf_counter()
            whole_result = whole()
            out["in_memory_score_s"] = round(time.perf_counter() - t0, 2)
            _, whole_peak = _traced(whole)
            out["in_memory_peak_mb"] = _mb(whole_peak)
            out["peak_ratio_streaming_vs_in_memory"] = round(
                stream_peak / whole_peak, 3
            )
            identical = bool(
                np.array_equal(whole_result.mask.matrix, result.mask.matrix)
            )
            out["mask_identical_to_in_memory"] = identical
            if not identical:
                failures.append(
                    f"streaming mask diverges from in-memory at "
                    f"{total_rows} rows"
                )
    return out, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="10k equivalence grid + 200k/10k-chunk memory gate; exit 1 "
        "on mask divergence, LLM calls, unbounded memory, or >2x "
        "throughput regression (CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_streaming.json",
    )
    args = parser.parse_args()

    fitted, scorer, fit_s = fit_scorer()
    results: dict = {
        "protocol": (
            "one Tax fit (2k rows, auto engines) shared by every case; "
            "equivalence: chunked score_chunks masks vs in-memory "
            "score_table on 10k rows across chunk sizes x jobs; "
            "throughput/memory: synthetic Tax CSVs generated shard-wise "
            "(append_csv_rows, never held whole), scored via "
            "score_csv with tracemalloc peaks; the 1M-row case runs "
            "out-of-core only — bounded peak is the claim, recorded as "
            "peak_vs_single_chunk"
        ),
        "fit_s": round(fit_s, 1),
        "engines": fitted.details["engines"],
        "cases": {},
    }
    all_failures: list[str] = []

    equiv, failures = equivalence_case(scorer, fitted.llm.ledger)
    results["cases"][f"equivalence/{SMOKE_EQUIV_ROWS}"] = equiv
    all_failures.extend(failures)
    worst = max(
        (g["score_s"] for g in equiv["grid"]), default=0.0
    )
    print(
        f"equivalence/{SMOKE_EQUIV_ROWS}: in-memory "
        f"{equiv['in_memory_score_s']}s, chunked grid "
        f"{len(equiv['grid'])} combos (worst {worst}s), identical="
        f"{all(g['mask_identical'] for g in equiv['grid'])}"
    )

    if args.smoke:
        # Throughput gate from the (untraced) equivalence grid: best
        # steady-state chunked time, hardware-normalised.
        calib = calibrate_gemm_s()
        equiv["gemm_calibration_s"] = round(calib, 4)
        best_s = min(g["score_s"] for g in equiv["grid"])
        equiv["stream_units"] = round(best_s / calib, 2)
        equiv["stream_units_vs_baseline"] = round(
            equiv["stream_units"] / STREAM_BASELINE_SMOKE_UNITS, 2
        )
        if equiv["stream_units_vs_baseline"] > SMOKE_REGRESSION_FACTOR:
            all_failures.append(
                f"streaming throughput {equiv['stream_units_vs_baseline']}x "
                "its recorded baseline (hardware-normalised)"
            )

        mem, failures = memory_case(
            scorer, SMOKE_MEM_ROWS, SMOKE_MEM_CHUNK, jobs=2,
            compare_in_memory=False, gate=True,
        )
        all_failures.extend(failures)
        results["cases"][f"memory/{SMOKE_MEM_ROWS}"] = mem
        print(
            f"memory/{SMOKE_MEM_ROWS}: {mem['streaming_score_s']}s traced "
            f"({mem['rows_per_s']} rows/s), peak {mem['streaming_peak_mb']}"
            f"MB = {mem['peak_vs_single_chunk']}x one chunk "
            f"[throughput {equiv['stream_units_vs_baseline']}x vs "
            "baseline, hardware-normalised]"
        )
    else:
        for total_rows in FULL_SIZES:
            # gate=False: with 4 workers the read-ahead window alone
            # legitimately holds ~8 chunks; the bounded-memory *gate*
            # runs in smoke mode (2 workers), full mode records the
            # factor for the JSON.
            entry, failures = memory_case(
                scorer, total_rows, FULL_CHUNK, jobs=FULL_JOBS,
                compare_in_memory=(total_rows == FULL_SIZES[0]),
                gate=False, untraced_timing=True,
            )
            all_failures.extend(failures)
            results["cases"][f"streaming/{total_rows}"] = entry
            line = (
                f"streaming/{total_rows}: {entry['streaming_score_s']}s "
                f"({entry['rows_per_s']} rows/s), peak "
                f"{entry['streaming_peak_mb']}MB = "
                f"{entry['peak_vs_single_chunk']}x one chunk"
            )
            if "in_memory_score_s" in entry:
                line += (
                    f"; in-memory {entry['in_memory_score_s']}s, peak "
                    f"{entry['in_memory_peak_mb']}MB, identical="
                    f"{entry['mask_identical_to_in_memory']}"
                )
            print(line)

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if all_failures:
        for failure in all_failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
