"""Micro-benchmark: Step-2 representative sampling, exact vs fast.

Times k-means representative sampling over every attribute's unified
feature matrix — the post-PR 1 hot spot — on 1k/5k/10k-row Tax slices
for both sampling engines, and writes the results to
``BENCH_sampling.json`` so the performance trajectory is tracked
PR-over-PR.

Per size the report records wall time per engine, the fast/exact
speedup, and the worst and mean per-attribute inertia ratio (fast
engine objective / exact objective, computed from the returned labels
so the comparison is engine-neutral) — the quality telemetry behind
the tolerance band in ``tests/test_sampling_engine.py``.

``--smoke`` runs the 1k slice only and **fails** (exit 1) when the
exact engine regresses more than 2x against the recorded baseline —
the CI guard that fast-engine work never taxes the default path.  The
comparison is hardware-normalised: both the recorded baseline and the
measured time are divided by an in-run float64 GEMM calibration, so
the gate trips on code regressions, not on landing on a slower
runner.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampling_micro.py
    PYTHONPATH=src python benchmarks/bench_sampling_micro.py --smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from _common import calibrate_gemm_s

from repro.config import ZeroEDConfig
from repro.core.correlation import correlated_attributes
from repro.core.criteria_step import generate_initial_criteria
from repro.core.featurize import FeatureSpace
from repro.core.sampling import sample_representatives
from repro.data.registry import make_dataset
from repro.data.stats import compute_all_stats
from repro.llm.profiles import get_profile
from repro.llm.simulated.engine import SimulatedLLM
from repro.ml.rng import spawn

#: Exact-engine sampling seconds measured at PR 2 time (single-core
#: container, all attributes), for the speedup-trajectory columns.
EXACT_BASELINE_S = {"1000": 0.52, "5000": 10.5, "10000": 51.5}

#: The same 1k measurement divided by ``calibrate_gemm_s()`` on the
#: recording machine.  The smoke gate compares *calibration-units*, so
#: slower CI hardware rescales both sides instead of tripping it.
EXACT_BASELINE_1K_UNITS = 12.5

SIZES = (1_000, 5_000, 10_000)
SMOKE_REGRESSION_FACTOR = 2.0


def label_inertia(x: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances to own-cluster means, from labels."""
    total = 0.0
    for cid in np.unique(labels):
        members = x[labels == cid]
        centroid = members.mean(axis=0)
        total += float(((members - centroid) ** 2).sum())
    return total


def build_matrices(n_rows: int) -> dict[str, np.ndarray]:
    config = ZeroEDConfig(seed=0)
    table = make_dataset("tax", n_rows=n_rows, seed=0).dirty
    llm = SimulatedLLM(profile=get_profile(config.llm_model), seed=0)
    stats = compute_all_stats(table)
    correlated = correlated_attributes(table, config.n_correlated, seed=0)
    criteria = generate_initial_criteria(llm, table, correlated, config)
    fs = FeatureSpace(table, stats, correlated, criteria, config)
    return {attr: fs.unified_matrix(attr) for attr in table.attributes}


def bench_size(n_rows: int, engines: tuple[str, ...]) -> dict:
    config = ZeroEDConfig(seed=0)
    matrices = build_matrices(n_rows)
    n_clusters = config.clusters_for(n_rows)
    out: dict = {"n_rows": n_rows, "n_attributes": len(matrices)}
    inertia: dict[str, dict[str, float]] = {e: {} for e in engines}
    for engine in engines:
        t0 = time.perf_counter()
        results = {
            attr: sample_representatives(
                m,
                n_clusters=n_clusters,
                method="kmeans",
                seed=spawn(0, f"sample/{attr}"),
                engine=engine,
            )
            for attr, m in matrices.items()
        }
        out[f"{engine}_s"] = round(time.perf_counter() - t0, 4)
        for attr, r in results.items():
            inertia[engine][attr] = label_inertia(
                matrices[attr], r.cluster_labels
            )
    if "exact" in engines and "fast" in engines:
        out["speedup_fast_vs_exact"] = round(
            out["exact_s"] / out["fast_s"], 2
        )
        ratios = [
            inertia["fast"][a] / inertia["exact"][a]
            for a in inertia["exact"]
            if inertia["exact"][a] > 1e-9
        ]
        out["inertia_ratio_worst"] = round(max(ratios), 4)
        out["inertia_ratio_mean"] = round(
            float(np.mean(ratios)), 4
        )
        out["inertia_ratio_total"] = round(
            sum(inertia["fast"].values())
            / max(sum(inertia["exact"].values()), 1e-12),
            4,
        )
    baseline = EXACT_BASELINE_S.get(str(n_rows))
    if baseline and "exact" in engines:
        out["exact_vs_baseline"] = round(out["exact_s"] / baseline, 2)
    if n_rows == 1_000 and "exact" in engines:
        calib = calibrate_gemm_s()
        out["gemm_calibration_s"] = round(calib, 4)
        out["exact_units"] = round(out["exact_s"] / calib, 2)
        out["exact_units_vs_baseline"] = round(
            out["exact_units"] / EXACT_BASELINE_1K_UNITS, 2
        )
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1k rows, exact engine only; exit 1 on >2x regression "
        "against the recorded exact-engine baseline (CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_sampling.json",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.smoke else SIZES
    engines = ("exact",) if args.smoke else ("exact", "fast")
    results = {
        "protocol": (
            "kmeans representative sampling over every attribute's "
            "unified feature matrix on dirty Tax slices, k = rows x "
            "label_rate (capped at 500); speedup = exact wall time / "
            "fast wall time; inertia ratios compare the two engines' "
            "clustering objectives per attribute, computed from labels"
        ),
        "exact_baseline_s": EXACT_BASELINE_S,
        "sizes": {},
    }
    failed = False
    for n_rows in sizes:
        entry = bench_size(n_rows, engines)
        results["sizes"][str(n_rows)] = entry
        line = f"tax/{n_rows}: exact {entry['exact_s']}s"
        if "fast_s" in entry:
            line += (
                f", fast {entry['fast_s']}s "
                f"({entry['speedup_fast_vs_exact']}x, worst inertia "
                f"ratio {entry['inertia_ratio_worst']})"
            )
        ratio = entry.get("exact_units_vs_baseline")
        if ratio is not None:
            line += f" [{ratio}x vs baseline, hardware-normalised]"
            if args.smoke and ratio > SMOKE_REGRESSION_FACTOR:
                line += "  REGRESSION"
                failed = True
        print(line)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failed:
        print(
            f"FAIL: exact engine slower than "
            f"{SMOKE_REGRESSION_FACTOR}x the recorded baseline"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
