"""E7 — Fig. 7: end-to-end runtime across datasets and data sizes.

(a) runtime of every method per comparison dataset; (b) ZeroED / Raha /
dBoost runtime on growing slices of the Tax dataset.  Shape
expectations: simple heuristic methods (dBoost, NADEEF, KATARA) run
orders of magnitude faster than ZeroED, and ZeroED's runtime grows
with data size.
"""

from __future__ import annotations

from _common import SEED, TAX_SIZES, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.registry import COMPARISON_DATASETS

FAST_METHODS = ("dboost", "nadeef", "katara")
PART_A_METHODS = ("dboost", "nadeef", "katara", "raha", "fm_ed", "zeroed")
PART_B_METHODS = ("dboost", "raha", "zeroed")


def build_fig7() -> dict:
    part_a = []
    for dataset in COMPARISON_DATASETS:
        for method in PART_A_METHODS:
            run = run_method(
                method, dataset, n_rows=rows_for(dataset), seed=SEED
            )
            part_a.append({
                "dataset": dataset, "method": method,
                "seconds": round(run.seconds, 3),
            })
    part_b = []
    for size in TAX_SIZES:
        for method in PART_B_METHODS:
            run = run_method(method, "tax", n_rows=size, seed=SEED)
            part_b.append({
                "rows": size, "method": method,
                "seconds": round(run.seconds, 3),
            })
    return {"across_datasets": part_a, "tax_scaling": part_b}


def test_fig7_runtime(benchmark):
    result = benchmark.pedantic(build_fig7, rounds=1, iterations=1)
    print()
    print(format_table(
        result["across_datasets"],
        ["dataset", "method", "seconds"],
        title="Fig. 7a — runtime across datasets",
    ))
    print()
    print(format_table(
        result["tax_scaling"],
        ["rows", "method", "seconds"],
        title="Fig. 7b — runtime vs data size (Tax)",
    ))
    write_json(results_dir() / "fig7_runtime.json", result)

    by = {
        (r["dataset"], r["method"]): r["seconds"]
        for r in result["across_datasets"]
    }
    for dataset in COMPARISON_DATASETS:
        # Shape: heuristic methods are much faster than ZeroED.
        for fast in FAST_METHODS:
            assert by[(dataset, fast)] <= by[(dataset, "zeroed")]
    tax = {
        (r["method"], r["rows"]): r["seconds"]
        for r in result["tax_scaling"]
    }
    sizes = sorted({r["rows"] for r in result["tax_scaling"]})
    # Shape: ZeroED runtime grows with data size.
    assert tax[("zeroed", sizes[-1])] > tax[("zeroed", sizes[0])]
