"""E9 — Fig. 9: effect of the LLM label rate (clustering number).

Sweeps the label rate from 1% to 5% (cluster count = rows x rate).
Shape expectation: F1 generally improves with more labeled data — the
5% setting beats the 1% setting on average.
"""

from __future__ import annotations

import numpy as np

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.config import ZeroEDConfig

RATES = (0.01, 0.02, 0.03, 0.04, 0.05)


def build_fig9() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        for rate in RATES:
            config = ZeroEDConfig(seed=SEED, label_rate=rate)
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                zeroed_config=config,
            )
            row = run.as_row()
            row["label_rate"] = rate
            rows.append(row)
    return rows


def test_fig9_label_rate(benchmark):
    rows = benchmark.pedantic(build_fig9, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["dataset", "label_rate", "precision", "recall", "f1"],
        title="Fig. 9 — performance under different label rates",
    ))
    write_json(results_dir() / "fig9_label_rate.json", rows)

    f1 = {(r["dataset"], r["label_rate"]): r["f1"] for r in rows}
    low = float(np.mean([f1[(d, RATES[0])] for d in SWEEP_DATASETS]))
    high = float(np.mean([f1[(d, RATES[-1])] for d in SWEEP_DATASETS]))
    # Shape: more labels help on average.
    assert high >= low
