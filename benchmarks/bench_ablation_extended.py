"""Extended ablations beyond the paper's Table IV (DESIGN.md §4).

Covers the design choices the paper does not isolate:
* feature-block ablations (semantic / statistical blocks individually);
* label propagation on/off;
* the mutual-verification thresholds of Algorithm 1.

Shape expectation: the default configuration is competitive with every
variant on mean F1 (no variant dominates it by a wide margin).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.config import ZeroEDConfig

VARIANTS: dict[str, dict] = {
    "default": {},
    "no-semantic": {"use_semantic_features": False},
    "no-statistical": {"use_statistical_features": False},
    "no-propagation": {"propagate_labels": False},
    "loose-verify(0.5)": {"data_pass_threshold": 0.5},
    "untrusted-verify": {"data_verify_accuracy": 0.0},
}


def build_extended() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        for variant, overrides in VARIANTS.items():
            config = dataclasses.replace(
                ZeroEDConfig(seed=SEED), **overrides
            )
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                zeroed_config=config,
            )
            row = run.as_row()
            row["variant"] = variant
            rows.append(row)
    return rows


def test_extended_ablations(benchmark):
    rows = benchmark.pedantic(build_extended, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["variant", "dataset", "precision", "recall", "f1"],
        title="Extended ablations (beyond Table IV)",
    ))
    write_json(results_dir() / "ablation_extended.json", rows)

    mean_f1: dict[str, list[float]] = {}
    for row in rows:
        mean_f1.setdefault(row["variant"], []).append(row["f1"])
    means = {k: float(np.mean(v)) for k, v in mean_f1.items()}
    assert means["default"] >= max(means.values()) - 0.05
