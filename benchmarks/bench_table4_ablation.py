"""E3 — Table IV: ablation study.

Removes one ZeroED component at a time — guideline generation (Guid.),
criteria reasoning (Crit.), correlated-attribute calculation (Corr.),
and training-data verification/augmentation (Veri.) — and compares F1
against the full pipeline.  Shape expectation: no ablation beats the
full pipeline on mean F1.
"""

from __future__ import annotations

import numpy as np

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.config import ZeroEDConfig

ABLATIONS = ("full", "guid", "crit", "corr", "veri")


def build_table4() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        for ablation in ABLATIONS:
            config = ZeroEDConfig(seed=SEED)
            if ablation != "full":
                config = config.ablated(ablation)
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                zeroed_config=config,
            )
            label = "ZeroED" if ablation == "full" else f"w/o {ablation.title()}."
            row = run.as_row()
            row["variant"] = label
            rows.append(row)
    return rows


def test_table4_ablation(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["variant", "dataset", "precision", "recall", "f1"],
        title="Table IV — ablation study",
    ))
    write_json(results_dir() / "table4_ablation.json", rows)

    mean_f1: dict[str, list[float]] = {}
    for row in rows:
        mean_f1.setdefault(row["variant"], []).append(row["f1"])
    means = {k: float(np.mean(v)) for k, v in mean_f1.items()}
    # Shape: the full pipeline's mean F1 is the maximum.
    assert means["ZeroED"] == max(means.values())
    # Each ablation costs something on average (ties allowed but no
    # ablation should *beat* the full pipeline by a margin).
    for variant, value in means.items():
        if variant != "ZeroED":
            assert value <= means["ZeroED"] + 0.02
