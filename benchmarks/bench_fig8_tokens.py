"""E8 — Fig. 8: LLM token consumption, ZeroED vs FM_ED.

(a) input/output tokens per comparison dataset; (b) token growth on
increasing Tax slices.  Shape expectations from the paper: FM_ED is
input-token-heavy (it serialises *every* tuple), ZeroED concentrates
spend on output tokens (criteria/guidelines/reasoning), and on the
largest Tax slice ZeroED cuts total tokens by a large factor (the paper
reports >90% reduction at 200k rows).
"""

from __future__ import annotations

from _common import FULL, SEED, TAX_SIZES, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.registry import COMPARISON_DATASETS


def build_fig8() -> dict:
    part_a = []
    for dataset in COMPARISON_DATASETS:
        for method in ("zeroed", "fm_ed"):
            run = run_method(
                method, dataset, n_rows=rows_for(dataset), seed=SEED
            )
            part_a.append({
                "dataset": dataset, "method": method,
                "input_tokens": run.input_tokens,
                "output_tokens": run.output_tokens,
                "total": run.input_tokens + run.output_tokens,
            })
    part_b = []
    for size in TAX_SIZES:
        for method in ("zeroed", "fm_ed"):
            run = run_method(method, "tax", n_rows=size, seed=SEED)
            part_b.append({
                "rows": size, "method": method,
                "input_tokens": run.input_tokens,
                "output_tokens": run.output_tokens,
                "total": run.input_tokens + run.output_tokens,
            })
    return {"across_datasets": part_a, "tax_scaling": part_b}


def test_fig8_token_consumption(benchmark):
    result = benchmark.pedantic(build_fig8, rounds=1, iterations=1)
    print()
    print(format_table(
        result["across_datasets"],
        ["dataset", "method", "input_tokens", "output_tokens", "total"],
        title="Fig. 8a — token cost across datasets",
    ))
    print()
    print(format_table(
        result["tax_scaling"],
        ["rows", "method", "input_tokens", "output_tokens", "total"],
        title="Fig. 8b — token cost vs data size (Tax)",
    ))
    write_json(results_dir() / "fig8_tokens.json", result)

    a = {
        (r["dataset"], r["method"]): r for r in result["across_datasets"]
    }
    for dataset in COMPARISON_DATASETS:
        zeroed = a[(dataset, "zeroed")]
        fm = a[(dataset, "fm_ed")]
        # Shape: FM_ED is input-dominated; ZeroED's output share is far
        # larger than FM_ED's.
        assert fm["input_tokens"] > fm["output_tokens"]
        zeroed_out_share = zeroed["output_tokens"] / max(zeroed["total"], 1)
        fm_out_share = fm["output_tokens"] / max(fm["total"], 1)
        assert zeroed_out_share > fm_out_share

    b = {(r["method"], r["rows"]): r for r in result["tax_scaling"]}
    largest = max(TAX_SIZES)
    zeroed_total = b[("zeroed", largest)]["total"]
    fm_total = b[("fm_ed", largest)]["total"]
    # Shape: ZeroED's token cost is a fraction of FM_ED's at the
    # largest size.  The paper's >90% reduction materialises at 200k
    # rows where the labeling budget is capped while FM_ED stays
    # linear; the scaled-down default sits earlier on the same curve,
    # so the bound is correspondingly looser.
    reduction = 1 - zeroed_total / max(fm_total, 1)
    assert reduction > (0.9 if FULL else 0.15)
    # Shape: FM_ED grows steeply with size, ZeroED sub-linearly.
    fm_growth = b[("fm_ed", largest)]["total"] / b[("fm_ed", TAX_SIZES[0])]["total"]
    zeroed_growth = (
        b[("zeroed", largest)]["total"] / b[("zeroed", TAX_SIZES[0])]["total"]
    )
    assert fm_growth > zeroed_growth
