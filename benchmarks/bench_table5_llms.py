"""E4 — Table V: ZeroED with different LLMs.

Runs the pipeline under each simulated LLM quality profile.  Shape
expectations from the paper: Qwen2.5-72b is best on mean F1 and
GPT-4o-mini's precision-driven weakness puts it last.
"""

from __future__ import annotations

import numpy as np

from _common import SEED, SWEEP_DATASETS, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.llm.profiles import PROFILES


def build_table5() -> list[dict]:
    rows = []
    for dataset in SWEEP_DATASETS:
        for model in sorted(PROFILES):
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                llm_model=model,
            )
            row = run.as_row()
            row["llm"] = model
            rows.append(row)
    return rows


def test_table5_llm_choice(benchmark):
    rows = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["llm", "dataset", "precision", "recall", "f1"],
        title="Table V — detection performance with different LLMs",
    ))
    write_json(results_dir() / "table5_llms.json", rows)

    mean = {}
    prec = {}
    for row in rows:
        mean.setdefault(row["llm"], []).append(row["f1"])
        prec.setdefault(row["llm"], []).append(row["precision"])
    mean_f1 = {m: float(np.mean(v)) for m, v in mean.items()}
    mean_p = {m: float(np.mean(v)) for m, v in prec.items()}
    # Shape: Qwen2.5-72b best overall; GPT-4o-mini hurt by precision.
    assert mean_f1["qwen2.5-72b"] == max(mean_f1.values())
    assert mean_p["gpt-4o-mini"] == min(mean_p.values())
    # Bigger models beat their smaller family siblings.
    assert mean_f1["llama3.1-70b"] >= mean_f1["qwen2.5-7b"] - 0.05
