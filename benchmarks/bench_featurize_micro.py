"""Micro-benchmark: featurization + sampling on Tax slices.

Times the Step-1/Step-2 hot path — ``FeatureSpace`` construction plus
``unified_matrix`` for every attribute, and k-means representative
sampling — on 1k/5k/10k-row Tax slices, and writes the results to
``BENCH_featurize.json`` so the performance trajectory is tracked
PR-over-PR.

Each size is timed over several repeats.  The first repeat is reported
as ``cold`` (process-fresh memoization caches pay full price); the
fastest repeat is reported as ``best`` (steady state, the regime a
long-running service sees).  The ``seed_baseline`` block records the
same protocol measured on the pre-interning seed implementation, so
the file carries its own speedup denominator.

Usage::

    PYTHONPATH=src python benchmarks/bench_featurize_micro.py
    PYTHONPATH=src python benchmarks/bench_featurize_micro.py --smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.config import ZeroEDConfig
from repro.core.correlation import correlated_attributes
from repro.core.criteria_step import generate_initial_criteria
from repro.core.featurize import FeatureSpace
from repro.core.sampling import sample_representatives
from repro.data.registry import make_dataset
from repro.data.stats import compute_all_stats
from repro.llm.profiles import get_profile
from repro.llm.simulated.engine import SimulatedLLM
from repro.ml.rng import spawn

#: Featurize seconds measured on the seed (pre-interning, per-row)
#: implementation with this same driver at PR 1 time, for the speedup
#: column.  cold = first repeat, best = fastest of 4.
SEED_BASELINE = {
    "1000": {"featurize_cold_s": 0.465, "featurize_best_s": 0.440},
    "5000": {"featurize_cold_s": 1.935, "featurize_best_s": 1.835},
    "10000": {"featurize_cold_s": 3.595, "featurize_best_s": 3.313},
}

SIZES = (1_000, 5_000, 10_000)


def bench_size(n_rows: int, repeats: int, sample: bool) -> dict:
    config = ZeroEDConfig(seed=0)
    table = make_dataset("tax", n_rows=n_rows, seed=0).dirty
    llm = SimulatedLLM(profile=get_profile(config.llm_model), seed=0)

    t0 = time.perf_counter()
    stats = compute_all_stats(table)
    stats_s = time.perf_counter() - t0
    correlated = correlated_attributes(table, config.n_correlated, seed=0)
    criteria = generate_initial_criteria(llm, table, correlated, config)

    featurize_times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        feature_space = FeatureSpace(table, stats, correlated, criteria, config)
        for attr in table.attributes:
            feature_space.unified_matrix(attr)
        featurize_times.append(time.perf_counter() - t0)

    out = {
        "n_rows": n_rows,
        "n_attributes": table.n_attributes,
        "stats_s": round(stats_s, 4),
        "featurize_cold_s": round(featurize_times[0], 4),
        "featurize_best_s": round(min(featurize_times), 4),
        "featurize_repeats_s": [round(t, 4) for t in featurize_times],
    }
    baseline = SEED_BASELINE.get(str(n_rows))
    if baseline:
        out["speedup_vs_seed_cold"] = round(
            baseline["featurize_cold_s"] / out["featurize_cold_s"], 2
        )
        out["speedup_vs_seed_best"] = round(
            baseline["featurize_best_s"] / out["featurize_best_s"], 2
        )
    if sample:
        n_clusters = config.clusters_for(table.n_rows)
        t0 = time.perf_counter()
        for attr in table.attributes:
            sample_representatives(
                feature_space.unified_matrix(attr),
                n_clusters=n_clusters,
                method=config.clustering,
                seed=spawn(0, f"sample/{attr}"),
            )
        out["sampling_s"] = round(time.perf_counter() - t0, 4)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1k rows only, no sampling stage (CI smoke run)",
    )
    parser.add_argument("--repeats", type=int, default=4)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_featurize.json",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.smoke else SIZES
    results = {
        "protocol": (
            "FeatureSpace construction + unified_matrix over all attributes "
            "on dirty Tax slices; cold = first repeat in a fresh process, "
            "best = fastest of N repeats (steady state); sampling = kmeans "
            "representative sampling over the unified matrices"
        ),
        "seed_baseline": SEED_BASELINE,
        "sizes": {},
    }
    for n_rows in sizes:
        entry = bench_size(n_rows, args.repeats, sample=not args.smoke)
        results["sizes"][str(n_rows)] = entry
        speedup = entry.get("speedup_vs_seed_best")
        print(
            f"tax/{n_rows}: featurize cold {entry['featurize_cold_s']}s, "
            f"best {entry['featurize_best_s']}s"
            + (f" ({speedup}x vs seed)" if speedup else "")
            + (f", sampling {entry['sampling_s']}s" if "sampling_s" in entry else "")
        )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
