"""E11 — Fig. 11: per-error-type performance on Beers.

Re-dirties the clean Beers table with a *single* error type at a time
(T / MV / PV / RV / O) plus a low-rate mixed scenario (ME), and runs
all seven methods on each.  Shape expectations from the paper:
specialists win their home scenario classes (NADEEF on RV, dBoost on
O), ZeroED is at or near the top elsewhere, and the LLM-based methods
degrade least in the mixed scenario.
"""

from __future__ import annotations

from _common import SEED, rows_for
from repro.bench import METHODS, run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.errortypes import ErrorType
from repro.data.injector import ErrorProfile
from repro.data.registry import get_dataset

SCENARIOS: dict[str, ErrorProfile] = {
    "T": ErrorProfile.single_type(ErrorType.TYPO, 0.05),
    "MV": ErrorProfile.single_type(ErrorType.MISSING, 0.05),
    "PV": ErrorProfile.single_type(ErrorType.PATTERN, 0.05),
    "RV": ErrorProfile.single_type(ErrorType.RULE, 0.05),
    "O": ErrorProfile.single_type(ErrorType.OUTLIER, 0.05),
    "ME": ErrorProfile(
        missing=0.0016, typo=0.0017, pattern=0.0016, allow_overlap=True
    ),  # mixed, ~0.49% as in the paper
}


def build_fig11() -> list[dict]:
    spec = get_dataset("beers")
    rows = []
    for scenario, profile in SCENARIOS.items():
        data = spec.make(
            n_rows=rows_for("beers"), seed=SEED, profile=profile
        )
        for method in METHODS:
            run = run_method(method, "beers", seed=SEED, data=data)
            rows.append({
                "scenario": scenario, "method": method,
                "f1": round(run.prf.f1, 3),
                "precision": round(run.prf.precision, 3),
                "recall": round(run.prf.recall, 3),
            })
    return rows


def test_fig11_error_scenarios(benchmark):
    rows = benchmark.pedantic(build_fig11, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["scenario", "method", "precision", "recall", "f1"],
        title="Fig. 11 — performance vs error types (Beers)",
    ))
    write_json(results_dir() / "fig11_error_types.json", rows)

    f1 = {(r["scenario"], r["method"]): r["f1"] for r in rows}
    # Shape: the rule engine dominates the pure rule-violation scenario.
    assert f1[("RV", "nadeef")] >= f1[("RV", "dboost")]
    # ZeroED handles every scenario (nonzero F1 across the board) and
    # leads or ties on the majority of scenarios among non-specialists.
    for scenario in SCENARIOS:
        assert f1[(scenario, "zeroed")] > 0.0
    wins = sum(
        1 for s in ("T", "MV", "PV", "O", "ME")
        if f1[(s, "zeroed")]
        >= max(f1[(s, m)] for m in ("raha", "activeclean", "fm_ed"))
    )
    assert wins >= 3
