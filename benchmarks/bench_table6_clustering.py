"""E5 — Table VI: sampling/clustering strategy comparison.

Random sampling vs agglomerative clustering vs k-means on Flights,
Billionaire and Movies.  Shape expectation: the clustering strategies
beat random sampling on the complex datasets (Billionaire, Movies),
with a smaller gap on Flights — exactly the paper's reading.
"""

from __future__ import annotations

import numpy as np

from _common import SEED, rows_for
from repro.bench import run_method
from repro.bench.reporting import format_table, results_dir, write_json
from repro.config import ZeroEDConfig

DATASETS = ("flights", "billionaire", "movies")
METHODS = ("random", "agglomerative", "kmeans")


def build_table6() -> list[dict]:
    rows = []
    for dataset in DATASETS:
        for clustering in METHODS:
            config = ZeroEDConfig(seed=SEED, clustering=clustering)
            run = run_method(
                "zeroed", dataset, n_rows=rows_for(dataset), seed=SEED,
                zeroed_config=config,
            )
            row = run.as_row()
            row["clustering"] = clustering
            rows.append(row)
    return rows


def test_table6_clustering_methods(benchmark):
    rows = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["clustering", "dataset", "precision", "recall", "f1"],
        title="Table VI — performance with different clustering methods",
    ))
    write_json(results_dir() / "table6_clustering.json", rows)

    f1 = {(r["clustering"], r["dataset"]): r["f1"] for r in rows}
    means = {
        m: float(np.mean([f1[(m, d)] for d in DATASETS])) for m in METHODS
    }
    # Shape: clustering-based sampling beats random sampling on average.
    assert max(means["kmeans"], means["agglomerative"]) >= means["random"]
