"""End-to-end per-stage pipeline profile (ROADMAP open item).

Runs the full ZeroED pipeline on a generator dataset (default: the
10k-row Tax slice with ``engine=auto``, which resolves to the fast
engines there) once per requested jobs count and reports every stage's
wall-clock seconds and LLM token consumption — the timing table that
picks the next optimisation target.  Results are printed and written to
``BENCH_profile.json``: the top-level stage table describes the
sweep's *fastest* run (its ``n_jobs`` field says which) and
``jobs_sweep`` records every run.

Usage::

    PYTHONPATH=src python benchmarks/profile_pipeline.py
    PYTHONPATH=src python benchmarks/profile_pipeline.py \
        --dataset tax --rows 10000 --sampling-engine auto \
        --detector-engine auto --jobs 1,4
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.config import (
    DETECTOR_ENGINE_CHOICES,
    SAMPLING_ENGINE_CHOICES,
    ZeroEDConfig,
)
from repro.core.pipeline import ZeroED
from repro.data.registry import make_dataset
from repro.ml.metrics import score_masks


def profile_run(args, data, n_jobs: int) -> dict:
    config = ZeroEDConfig(
        seed=args.seed,
        sampling_engine=args.sampling_engine,
        detector_engine=args.detector_engine,
        n_jobs=n_jobs,
    )
    t0 = time.perf_counter()
    result = ZeroED(config).detect(data.dirty)
    total_s = time.perf_counter() - t0
    prf = score_masks(result.mask, data.mask)

    header = f"{'stage':<16}{'seconds':>10}{'in_tokens':>12}{'out_tokens':>12}"
    print(
        f"{args.dataset}/{args.rows} rows, sampling={args.sampling_engine}, "
        f"detector={args.detector_engine}, jobs={n_jobs} "
        f"(resolved engines: {result.details['engines']})"
    )
    print(header)
    print("-" * len(header))
    stages = []
    for stage in result.stages:
        print(
            f"{stage.name:<16}{stage.seconds:>10.3f}"
            f"{stage.input_tokens:>12}{stage.output_tokens:>12}"
        )
        stages.append(
            {
                "name": stage.name,
                "seconds": round(stage.seconds, 4),
                "input_tokens": stage.input_tokens,
                "output_tokens": stage.output_tokens,
            }
        )
    print("-" * len(header))
    print(
        f"{'total':<16}{total_s:>10.3f}"
        f"{result.input_tokens:>12}{result.output_tokens:>12}"
    )
    print(
        f"P/R/F1 = {prf.precision:.4f}/{prf.recall:.4f}/{prf.f1:.4f}, "
        f"{result.n_llm_requests} LLM requests"
    )
    return {
        "n_jobs": n_jobs,
        "resolved_engines": result.details["engines"],
        "total_s": round(total_s, 4),
        "precision": round(prf.precision, 4),
        "recall": round(prf.recall, 4),
        "f1": round(prf.f1, 4),
        "llm_requests": result.n_llm_requests,
        "input_tokens": result.input_tokens,
        "output_tokens": result.output_tokens,
        "stages": stages,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="tax")
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sampling-engine", default="auto", choices=SAMPLING_ENGINE_CHOICES
    )
    parser.add_argument(
        "--detector-engine", default="auto", choices=DETECTOR_ENGINE_CHOICES
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="comma-separated worker-thread counts to sweep (e.g. '1,4'); "
        "each value runs the full pipeline once and is recorded in the "
        "jobs_sweep section; masks are byte-identical across values",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_profile.json",
    )
    args = parser.parse_args()
    jobs_values = [int(j) for j in str(args.jobs).split(",") if j.strip()]
    if not jobs_values:
        parser.error(f"--jobs needs at least one integer, got {args.jobs!r}")

    data = make_dataset(args.dataset, n_rows=args.rows, seed=args.seed)
    runs = []
    for n_jobs in jobs_values:
        runs.append(profile_run(args, data, n_jobs))
        print()

    # Headline = the sweep's fastest run: on single-core CI hardware
    # jobs > 1 only adds thread overhead, and the stage table should
    # describe the configuration one would actually pick there.
    headline = min(runs, key=lambda r: r["total_s"])
    payload = {
        "dataset": args.dataset,
        "rows": args.rows,
        "seed": args.seed,
        "sampling_engine": args.sampling_engine,
        "detector_engine": args.detector_engine,
        **headline,
        "jobs_sweep": runs,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
