"""End-to-end per-stage pipeline profile (ROADMAP open item).

Runs the full ZeroED pipeline on a generator dataset (default: the
10k-row Tax slice with the fast sampling engine) and reports every
stage's wall-clock seconds and LLM token consumption — the timing
table that picks the next optimisation target.  Results are printed
and written to ``BENCH_profile.json``.

Usage::

    PYTHONPATH=src python benchmarks/profile_pipeline.py
    PYTHONPATH=src python benchmarks/profile_pipeline.py \
        --dataset tax --rows 10000 --sampling-engine fast \
        --detector-engine exact
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.config import DETECTOR_ENGINES, SAMPLING_ENGINES, ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.registry import make_dataset
from repro.ml.metrics import score_masks


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="tax")
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sampling-engine", default="fast", choices=SAMPLING_ENGINES
    )
    parser.add_argument(
        "--detector-engine", default="exact", choices=DETECTOR_ENGINES
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_profile.json",
    )
    args = parser.parse_args()

    config = ZeroEDConfig(
        seed=args.seed,
        sampling_engine=args.sampling_engine,
        detector_engine=args.detector_engine,
    )
    data = make_dataset(args.dataset, n_rows=args.rows, seed=args.seed)
    t0 = time.perf_counter()
    result = ZeroED(config).detect(data.dirty)
    total_s = time.perf_counter() - t0
    prf = score_masks(result.mask, data.mask)

    header = f"{'stage':<16}{'seconds':>10}{'in_tokens':>12}{'out_tokens':>12}"
    print(
        f"{args.dataset}/{args.rows} rows, sampling={args.sampling_engine}, "
        f"detector={args.detector_engine}"
    )
    print(header)
    print("-" * len(header))
    stages = []
    for stage in result.stages:
        print(
            f"{stage.name:<16}{stage.seconds:>10.3f}"
            f"{stage.input_tokens:>12}{stage.output_tokens:>12}"
        )
        stages.append(
            {
                "name": stage.name,
                "seconds": round(stage.seconds, 4),
                "input_tokens": stage.input_tokens,
                "output_tokens": stage.output_tokens,
            }
        )
    print("-" * len(header))
    print(
        f"{'total':<16}{total_s:>10.3f}"
        f"{result.input_tokens:>12}{result.output_tokens:>12}"
    )
    print(
        f"P/R/F1 = {prf.precision:.4f}/{prf.recall:.4f}/{prf.f1:.4f}, "
        f"{result.n_llm_requests} LLM requests"
    )

    payload = {
        "dataset": args.dataset,
        "rows": args.rows,
        "seed": args.seed,
        "sampling_engine": args.sampling_engine,
        "detector_engine": args.detector_engine,
        "total_s": round(total_s, 4),
        "precision": round(prf.precision, 4),
        "recall": round(prf.recall, 4),
        "f1": round(prf.f1, 4),
        "llm_requests": result.n_llm_requests,
        "input_tokens": result.input_tokens,
        "output_tokens": result.output_tokens,
        "stages": stages,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
