"""E1 — Table II: dataset statistics.

Regenerates the dataset-information table: tuples, attributes, overall
error rate and per-type error rates, for all seven benchmark datasets.
"""

from __future__ import annotations

from _common import SEED, rows_for
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.errortypes import ErrorType
from repro.data.registry import dataset_names, get_dataset

_TYPE_ORDER = (
    ErrorType.MISSING, ErrorType.PATTERN, ErrorType.TYPO,
    ErrorType.OUTLIER, ErrorType.RULE,
)


def build_table2() -> list[dict]:
    rows = []
    for name in dataset_names():
        spec = get_dataset(name)
        n_rows = rows_for(name) or (2000 if name == "tax" else None)
        data = spec.make(n_rows=n_rows, seed=SEED)
        total_cells = data.dirty.n_rows * data.dirty.n_attributes
        by_type = data.count_by_type()
        row = {
            "Name": name,
            "#Tuples": data.dirty.n_rows,
            "#A.": data.dirty.n_attributes,
            "Err.(%)": round(100 * data.mask.error_rate(), 2),
        }
        for etype in _TYPE_ORDER:
            row[f"{etype.short}(%)"] = round(
                100 * by_type.get(etype, 0) / total_cells, 2
            )
        rows.append(row)
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    columns = ["Name", "#Tuples", "#A.", "Err.(%)", "MV(%)", "PV(%)",
               "T(%)", "O(%)", "RV(%)"]
    print()
    print(format_table(rows, columns, title="Table II — dataset statistics"))
    write_json(results_dir() / "table2_datasets.json", rows)
    by_name = {r["Name"]: r for r in rows}
    # Shape checks against the paper's Table II.
    assert by_name["flights"]["Err.(%)"] > by_name["hospital"]["Err.(%)"]
    assert by_name["rayyan"]["MV(%)"] > by_name["hospital"]["MV(%)"]
    assert by_name["movies"]["RV(%)"] == 0.0
    assert all(r["Err.(%)"] < 40 for r in rows)
