"""Shared configuration for the benchmark drivers.

Every benchmark regenerates one of the paper's tables or figures.  By
default datasets are scaled down so the full suite completes in
minutes; set ``REPRO_FULL=1`` to run at the paper's full dataset sizes
(Table II).  Expectation checks are *shape-level* (who wins, rough
ordering), matching DESIGN.md §3.
"""

from __future__ import annotations

import os
import time

import numpy as np

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Rows per dataset for benchmark runs (None = the Table II size).
BENCH_ROWS: dict[str, int | None] = (
    {name: None for name in (
        "hospital", "flights", "beers", "rayyan", "billionaire", "movies",
    )}
    if FULL
    else {
        "hospital": 400,
        "flights": 600,
        "beers": 600,
        "rayyan": 400,
        "billionaire": 600,
        "movies": 800,
    }
)

#: Tax scalability sweep sizes (paper: 50k-200k).  The scaled default
#: reaches 16k — past the point where ZeroED's sub-linear token curve
#: crosses below FM_ED's linear one, so Fig. 8b's crossover is visible.
TAX_SIZES: list[int] = [50_000, 100_000, 150_000, 200_000] if FULL else [
    2_000, 8_000, 16_000,
]

#: Datasets used by the heavier sweeps (Figs. 9/10, Tables IV/V).
SWEEP_DATASETS: list[str] = (
    ["hospital", "flights", "beers", "rayyan", "billionaire", "movies"]
    if FULL
    else ["hospital", "flights", "beers"]
)

SEED = 0


def rows_for(dataset: str) -> int | None:
    return BENCH_ROWS.get(dataset)


def calibrate_gemm_s() -> float:
    """Seconds for a fixed float64 GEMM workload on this machine.

    Shaped like the pipeline's hot loops (tall-skinny times wide); the
    fastest of several repeats factors out one-off page faults.  The
    smoke benchmarks divide their measured wall time by this figure so
    their CI regression gates compare *calibration-units* — slower CI
    hardware rescales both sides instead of tripping the gate.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(0, 1, (2_000, 128))
    b = rng.normal(0, 1, (128, 500))
    best = np.inf
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(10):
            a @ b
        best = min(best, time.perf_counter() - t0)
    return best
