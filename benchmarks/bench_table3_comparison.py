"""E2 — Table III: method comparison (Prec/Rec/F1, 7 methods × 6 datasets).

The paper's headline result: ZeroED outperforms every baseline on F1
across the six comparison datasets.  Expectations are shape-level —
ZeroED has the best mean F1 and wins on a majority of datasets.
"""

from __future__ import annotations

import numpy as np

from _common import SEED, rows_for
from repro.bench import METHODS, run_comparison
from repro.bench.reporting import format_table, results_dir, write_json
from repro.data.registry import COMPARISON_DATASETS


def build_table3_scaled() -> list[dict]:
    """Run the full grid, honouring the per-dataset scale map."""
    rows = []
    for dataset in COMPARISON_DATASETS:
        per_dataset = run_comparison(
            [dataset], methods=list(METHODS), n_rows=rows_for(dataset),
            seed=SEED,
        )
        rows.extend(r.as_row() for r in per_dataset)
    return rows


def test_table3_method_comparison(benchmark):
    rows = benchmark.pedantic(build_table3_scaled, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["method", "dataset", "precision", "recall", "f1"],
        title="Table III — error detection comparison",
    ))
    write_json(results_dir() / "table3_comparison.json", rows)

    f1 = {}
    for row in rows:
        f1.setdefault(row["method"], {})[row["dataset"]] = row["f1"]
    mean_f1 = {m: float(np.mean(list(v.values()))) for m, v in f1.items()}
    zeroed = next(m for m in mean_f1 if m.startswith("zeroed"))
    # Shape: ZeroED has the best mean F1 of all methods...
    assert mean_f1[zeroed] == max(mean_f1.values())
    # ...and wins on a majority of individual datasets.
    wins = sum(
        1
        for dataset in COMPARISON_DATASETS
        if f1[zeroed][dataset]
        == max(f1[m][dataset] for m in f1)
    )
    assert wins >= len(COMPARISON_DATASETS) // 2 + 1
    # KATARA finds nothing without a KB (paper: zeros on these three).
    katara = next(m for m in mean_f1 if m.startswith("katara"))
    for dataset in ("flights", "beers", "rayyan"):
        assert f1[katara][dataset] == 0.0
