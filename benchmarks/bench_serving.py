"""Benchmark: the serving subsystem (fit once, score many).

Measures, per dataset slice:

* ``fit_s`` — the LLM-guided training phase (``ZeroED.fit``);
* ``detect_s`` — full single-shot detection (= fit + the training
  table's prediction pass, which is exactly what ``detect`` runs);
* ``save_s`` / ``load_s`` / ``artifact_bytes`` — artifact round-trip;
* ``score_s`` / ``rows_per_s`` — *warm* ``BatchScorer.score_table`` on
  a fresh copy of the table (cold encodings, warm criteria/embedding
  caches — the steady-state serving cost), best of three;
* ``speedup_vs_detect`` — detect_s / score_s (the ≥10x acceptance
  figure at the 10k Tax slice);
* ``artifact_bytes`` vs ``artifact_bytes_v1`` — the PR 9 compressed
  v2 format against the raw v1 format, and their ratio (the ≥3x
  acceptance figure at the 10k Tax slice);
* service round-trip: single-row latency (median of 15, fresh
  connection per request *and* one keep-alive connection) and a
  256-row batch POST against a live ``ScoringService`` on an
  ephemeral port, with the response checked against the batch
  scorer's flags;
* load shedding under pressure (PR 8): concurrent clients hammer a
  service whose admission queue is sized *below* the offered load;
  records p50/p99 request latency, the shed rate, and the /healthz
  shed counter;
* workers sweep (PR 9): the same saturation load against a
  process-pool service at each worker count — accepted rows/s,
  p50/p99, shed rate, and mask equality against the single-process
  flags.

Writes ``BENCH_serving.json``.  ``--smoke`` runs a small Hospital
slice and **fails** (exit 1) when the warm scoring path regresses
more than 2x against its recorded baseline (hardware-normalised by
the shared GEMM calibration), when the loaded artifact's masks
diverge from the in-memory scorer's, when scoring touches the LLM,
when the service response disagrees with the batch scorer, when the
saturated service returns anything but well-formed 200/503
responses with exact shed accounting, when a multi-worker service's
flags differ from the single-process flags, or when the v2 artifact
fails to undercut v1 on disk — the CI gate for the serving layer.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from _common import calibrate_gemm_s

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.registry import make_dataset
from repro.serving.artifact import DetectorArtifact
from repro.serving.scorer import BatchScorer
from repro.serving.service import ScoringService

#: Warm-scoring cost of the smoke slice (hospital/400) divided by
#: ``calibrate_gemm_s()`` on the recording machine; the smoke gate
#: fails on >2x regression in calibration units, the same pattern as
#: the sampling/step34 gates.
SCORE_BASELINE_SMOKE_UNITS = 0.8
SMOKE_REGRESSION_FACTOR = 2.0

#: The acceptance slice: warm scoring must beat full detect by >=10x
#: here (recorded as ``speedup_vs_detect``).
FULL_CASES = [("tax", 10_000)]
SMOKE_CASES = [("hospital", 400)]


def _fresh_copy(table):
    """A content-equal table with cold encodings/pair-stat caches."""
    copy = table.copy()
    copy.name = table.name
    return copy


def bench_case(dataset: str, n_rows: int, smoke: bool) -> tuple[dict, list[str]]:
    failures: list[str] = []
    data = make_dataset(dataset, n_rows=n_rows, seed=0)
    table = data.dirty
    config = ZeroEDConfig(
        seed=0, sampling_engine="auto", detector_engine="auto"
    )
    zeroed = ZeroED(config)
    out: dict = {
        "dataset": dataset,
        "n_rows": table.n_rows,
        "n_attributes": table.n_attributes,
    }

    # --- fit + the training-table prediction pass (= detect) ----------
    t0 = time.perf_counter()
    fitted = zeroed.fit(table)
    out["fit_s"] = round(time.perf_counter() - t0, 4)
    t0 = time.perf_counter()
    detect_result = fitted.score(table)
    predict_s = time.perf_counter() - t0
    out["detect_s"] = round(out["fit_s"] + predict_s, 4)
    out["engines"] = detect_result.details["engines"]
    out["llm_requests_fit"] = fitted.ledger_summary["requests"]

    # --- artifact round-trip (v2 default, v1 for the size ratio) -------
    tmp_ctx = TemporaryDirectory()
    tmp = tmp_ctx.name
    t0 = time.perf_counter()
    path = fitted.save(Path(tmp) / "artifact")
    out["save_s"] = round(time.perf_counter() - t0, 4)
    out["artifact_bytes"] = sum(f.stat().st_size for f in path.iterdir())
    v1_path = Path(tmp) / "artifact-v1"
    DetectorArtifact.from_fitted(fitted).save(v1_path, version=1)
    out["artifact_bytes_v1"] = sum(
        f.stat().st_size for f in v1_path.iterdir()
    )
    out["artifact_compression_ratio"] = round(
        out["artifact_bytes_v1"] / out["artifact_bytes"], 2
    )
    if out["artifact_bytes"] >= out["artifact_bytes_v1"]:
        failures.append(
            f"v2 artifact ({out['artifact_bytes']} B) is not smaller "
            f"than v1 ({out['artifact_bytes_v1']} B)"
        )
    t0 = time.perf_counter()
    scorer = BatchScorer.from_artifact(path)
    out["load_s"] = round(time.perf_counter() - t0, 4)

    # --- warm scoring throughput ---------------------------------------
    requests_before = fitted.llm.ledger.summary()["requests"]
    scorer.score_table(_fresh_copy(table))  # warm criteria/embedding caches
    best = np.inf
    for _ in range(3):
        fresh = _fresh_copy(table)
        t0 = time.perf_counter()
        result = scorer.score_table(fresh)
        best = min(best, time.perf_counter() - t0)
    out["score_s"] = round(best, 4)
    out["rows_per_s"] = round(table.n_rows / best, 1)
    out["speedup_vs_detect"] = round(out["detect_s"] / best, 1)
    out["llm_calls_during_scoring"] = (
        fitted.llm.ledger.summary()["requests"] - requests_before
    )
    if out["llm_calls_during_scoring"] != 0:
        failures.append("warm scoring issued LLM calls")

    # --- loaded-vs-in-memory equality ----------------------------------
    in_memory = fitted.scorer().score_table(_fresh_copy(table))
    out["roundtrip_masks_equal"] = bool(
        np.array_equal(in_memory.mask.matrix, result.mask.matrix)
    )
    if not out["roundtrip_masks_equal"]:
        failures.append("loaded artifact masks diverge from in-memory scorer")
    prf = result.score(data.mask)
    out["scored_prf"] = {
        "precision": round(prf.precision, 3),
        "recall": round(prf.recall, 3),
        "f1": round(prf.f1, 3),
    }

    # --- service round-trip --------------------------------------------
    service = ScoringService(scorer, port=0).start()
    try:
        batch_rows = [table.row(i) for i in range(min(256, table.n_rows))]
        expected = scorer.score_rows(batch_rows).mask.matrix.tolist()
        t0 = time.perf_counter()
        payload = _post(service.url + "/score", {"rows": batch_rows})
        out["service_batch_roundtrip_s"] = round(time.perf_counter() - t0, 4)
        out["service_mask_matches"] = payload["flags"] == expected
        if not out["service_mask_matches"]:
            failures.append("service response diverges from BatchScorer")
        latencies = []
        single = [table.row(0)]
        for _ in range(15):
            t0 = time.perf_counter()
            _post(service.url + "/score", {"rows": single})
            latencies.append(time.perf_counter() - t0)
        out["service_single_row_median_s"] = round(
            statistics.median(latencies), 5
        )
        # Same measurement over ONE persistent HTTP/1.1 connection:
        # the per-request TCP setup the keep-alive satellite removes.
        import http.client

        conn = http.client.HTTPConnection(
            service.host, service.port, timeout=120
        )
        try:
            single_body = json.dumps({"rows": single}).encode()
            keepalive = []
            for _ in range(15):
                t0 = time.perf_counter()
                conn.request(
                    "POST", "/score", body=single_body,
                    headers={"Content-Type": "application/json"},
                )
                conn.getresponse().read()
                keepalive.append(time.perf_counter() - t0)
            out["service_single_row_keepalive_median_s"] = round(
                statistics.median(keepalive), 5
            )
        finally:
            conn.close()
    finally:
        service.stop()

    # --- load shedding under saturation (PR 8) -------------------------
    load, load_failures = bench_load(scorer, table, smoke=smoke)
    out["service_load"] = load
    failures.extend(load_failures)

    # --- workers sweep (PR 9) ------------------------------------------
    sweep, sweep_failures = bench_workers(
        path, scorer, table, smoke=smoke
    )
    out["workers_sweep"] = sweep
    failures.extend(sweep_failures)
    tmp_ctx.cleanup()

    # --- hardware-normalised smoke gate --------------------------------
    if smoke:
        calib = calibrate_gemm_s()
        out["gemm_calibration_s"] = round(calib, 4)
        out["score_units"] = round(out["score_s"] / calib, 2)
        out["score_units_vs_baseline"] = round(
            out["score_units"] / SCORE_BASELINE_SMOKE_UNITS, 2
        )
        if out["score_units_vs_baseline"] > SMOKE_REGRESSION_FACTOR:
            failures.append(
                f"warm scoring {out['score_units_vs_baseline']}x its "
                "recorded baseline (hardware-normalised)"
            )
    return out, failures


def _saturate(
    service, table, n_clients: int, requests_per_client: int
) -> tuple[dict, list[str]]:
    """Hammer a live service; return stats + contract violations.

    Shared by the single-process saturation run and the workers sweep
    so the two are the *same load* — the comparison between worker
    counts is apples to apples.
    """
    rows_per_request = 4
    rows = [table.row(i % table.n_rows) for i in range(rows_per_request)]
    body = json.dumps({"rows": rows}).encode()
    lock = threading.Lock()
    latencies_ok: list[float] = []
    statuses: list[int] = []
    malformed: list[str] = []

    def client() -> None:
        for _ in range(requests_per_client):
            request = urllib.request.Request(
                service.url + "/score",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            t0 = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=120) as resp:
                    status, payload = resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                status, payload = exc.code, json.loads(exc.read())
            except OSError as exc:
                # A dropped/reset connection is a contract violation:
                # overload must surface as a clean 503, never a hangup.
                with lock:
                    statuses.append(0)
                    malformed.append(f"connection error: {exc!r}")
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                statuses.append(status)
                if status == 200:
                    latencies_ok.append(elapsed)
                    if len(payload.get("flags") or []) != rows_per_request:
                        malformed.append(f"bad 200 body: {payload}")
                elif status == 503:
                    if payload.get("code") != "overloaded":
                        malformed.append(f"bad 503 body: {payload}")
                else:
                    malformed.append(f"unexpected status {status}")

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    health = _get(service.url + "/healthz")

    total = len(statuses)
    ok = statuses.count(200)
    shed = statuses.count(503)
    quantiles = (
        statistics.quantiles(latencies_ok, n=100)
        if len(latencies_ok) >= 2
        else [0.0] * 99
    )
    out = {
        "clients": n_clients,
        "requests": total,
        "rows_per_request": rows_per_request,
        "wall_s": round(wall_s, 4),
        "ok": ok,
        "shed": shed,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "accepted_rows_per_s": round(ok * rows_per_request / wall_s, 1),
        "p50_latency_s": round(statistics.median(latencies_ok), 5)
        if latencies_ok
        else None,
        "p99_latency_s": round(quantiles[98], 5) if latencies_ok else None,
        "healthz_shed": health["shed"],
    }
    failures: list[str] = []
    if malformed:
        failures.append(
            f"saturated service broke the response contract: "
            f"{malformed[:3]}"
        )
    if health["shed"] != shed:
        failures.append(
            f"healthz shed counter {health['shed']} != observed 503s {shed}"
        )
    if not latencies_ok:
        failures.append("saturated service answered no request with 200")
    return out, failures


def bench_load(scorer, table, smoke: bool) -> tuple[dict, list[str]]:
    """Saturate a deliberately under-provisioned service.

    ``max_queue_rows`` is sized well below the offered concurrent
    load, so a healthy run *must* shed: the interesting numbers are
    the latency quantiles of the accepted requests and the fraction
    shed, and the gate is the response contract — every answer is a
    well-formed 200 or 503, and /healthz accounts for every shed.
    """
    n_clients = 16 if smoke else 32
    requests_per_client = 8 if smoke else 16
    service = ScoringService(
        scorer,
        port=0,
        max_queue_rows=4 * max(2, n_clients // 4),
        linger_s=0.005,
    ).start()
    try:
        return _saturate(service, table, n_clients, requests_per_client)
    finally:
        service.stop()


def bench_workers(
    artifact_path, scorer, table, smoke: bool
) -> tuple[dict, list[str]]:
    """The same saturation load against process-pool services.

    One service per worker count, warmed before the burst so the sweep
    measures steady-state scoring, not spawn latency.  The flags for a
    pinned batch must be byte-identical to the in-process scorer's at
    every count — the PR 9 equality gate.
    """
    failures: list[str] = []
    sweep: dict = {}
    counts = [1, 2] if smoke else [1, 4]
    n_clients = 16 if smoke else 32
    requests_per_client = 8 if smoke else 16
    # Must fit inside the saturation-sized admission queue (the
    # services below are deliberately under-provisioned).
    batch_rows = [table.row(i) for i in range(min(12, table.n_rows))]
    expected = scorer.score_rows(batch_rows).mask.matrix.tolist()
    for workers in counts:
        service = ScoringService.from_artifact(
            artifact_path,
            workers=workers,
            port=0,
            max_queue_rows=4 * max(2, n_clients // 4),
            linger_s=0.005,
        ).start()
        try:
            service.warm_workers()
            payload = _post(service.url + "/score", {"rows": batch_rows})
            equal = payload["flags"] == expected
            stats, sat_failures = _saturate(
                service, table, n_clients, requests_per_client
            )
        finally:
            service.stop()
        stats["mask_equals_single_process"] = equal
        if not equal:
            failures.append(
                f"workers={workers} flags diverge from the in-process "
                f"scorer's"
            )
        failures.extend(
            f"workers={workers}: {f}" for f in sat_failures
        )
        sweep[str(workers)] = stats
    return sweep, failures


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=120) as resp:
        return json.loads(resp.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small slice only; exit 1 on round-trip/equality/LLM-call "
        "failures or >2x warm-scoring regression (CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
    )
    args = parser.parse_args()

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    results = {
        "protocol": (
            "per slice: ZeroED.fit timed, detect_s = fit + training-table "
            "prediction, artifact save/load timed, warm BatchScorer."
            "score_table on fresh table copies (best of 3, zero LLM "
            "calls), loaded-vs-in-memory mask equality, and a live "
            "ScoringService round-trip (single-row median + 256-row "
            "batch, response checked against the batch scorer), plus a "
            "saturation run against an under-provisioned admission "
            "queue (p50/p99 accepted-request latency, shed rate, "
            "healthz shed accounting); v2 artifact bytes vs a v1 "
            "re-save of the same fit; workers sweep = the identical "
            "saturation load against ScoringService(workers=N) with "
            "warmed pools, flags pinned against the in-process scorer"
        ),
        "cases": {},
    }
    all_failures: list[str] = []
    for dataset, n_rows in cases:
        entry, failures = bench_case(dataset, n_rows, smoke=args.smoke)
        results["cases"][f"{dataset}/{n_rows}"] = entry
        all_failures.extend(failures)
        line = (
            f"{dataset}/{n_rows}: detect {entry['detect_s']}s, "
            f"save {entry['save_s']}s, load {entry['load_s']}s, "
            f"artifact v2 {entry['artifact_bytes']} B "
            f"({entry['artifact_compression_ratio']}x vs v1), "
            f"warm score {entry['score_s']}s "
            f"({entry['rows_per_s']} rows/s, "
            f"{entry['speedup_vs_detect']}x vs detect), "
            f"service single-row {entry['service_single_row_median_s']}s "
            f"(keep-alive "
            f"{entry['service_single_row_keepalive_median_s']}s), "
            f"saturated p50/p99 "
            f"{entry['service_load']['p50_latency_s']}s/"
            f"{entry['service_load']['p99_latency_s']}s "
            f"shed {entry['service_load']['shed_rate'] * 100:.0f}%"
        )
        for workers, stats in entry["workers_sweep"].items():
            line += (
                f"\n  workers={workers}: "
                f"{stats['accepted_rows_per_s']} accepted rows/s, "
                f"shed {stats['shed_rate'] * 100:.0f}%, p50/p99 "
                f"{stats['p50_latency_s']}s/{stats['p99_latency_s']}s, "
                f"masks equal: {stats['mask_equals_single_process']}"
            )
        if "score_units_vs_baseline" in entry:
            line += (
                f" [{entry['score_units_vs_baseline']}x vs baseline, "
                "hardware-normalised]"
            )
        print(line)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.smoke and all_failures:
        for failure in all_failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
