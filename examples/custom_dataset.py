"""Scenario: cleaning your own tabular data with ZeroED.

Shows the full workflow on a *custom* dataset rather than a shipped
benchmark: build a clean employee table, dirty it with the error
injector (so we have ground truth to score against), run ZeroED and two
baselines, and compare — the situation the paper's introduction
motivates, where no rules, knowledge base or labels exist for your
table.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro import ZeroED, score_masks
from repro.baselines import DBoost, Nadeef
from repro.data import ErrorProfile, FunctionalDependency, Table
from repro.data.injector import ErrorInjector
from repro.data.rules import FDRule, PatternRule

DEPARTMENT_FLOOR = {
    "Engineering": "3", "Sales": "1", "Support": "2", "Finance": "4",
}
FIRST = ["Ana", "Ben", "Chloe", "Dev", "Elena", "Filip", "Grace", "Hugo"]
LAST = ["Novak", "Reyes", "Okafor", "Silva", "Tanaka", "Weber"]


def build_clean(n: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    departments = sorted(DEPARTMENT_FLOOR)
    rows = []
    for i in range(n):
        dept = departments[int(rng.integers(len(departments)))]
        rows.append([
            f"E{i:04d}",
            f"{FIRST[int(rng.integers(len(FIRST)))]} "
            f"{LAST[int(rng.integers(len(LAST)))]}",
            dept,
            DEPARTMENT_FLOOR[dept],
            f"{int(rng.integers(35, 160)) * 1000}",
            f"20{int(rng.integers(10, 24)):02d}-{int(rng.integers(1, 13)):02d}-15",
        ])
    return Table.from_rows(
        ["employee_id", "name", "department", "floor", "salary", "hired"],
        rows,
        name="employees",
    )


def main() -> None:
    clean = build_clean(800)
    profile = ErrorProfile(
        missing=0.01, typo=0.015, pattern=0.01, outlier=0.01, rule=0.01
    )
    injector = ErrorInjector(
        profile,
        numeric_attributes=["salary"],
        dependencies=[FunctionalDependency("department", "floor")],
        seed=1,
    )
    data = injector.inject(clean)
    print(f"dirty employees table: {data.dirty.shape}, "
          f"error rate={data.mask.error_rate():.3f}")
    print("injected error mix:",
          {t.short: c for t, c in data.count_by_type().items()})

    # ZeroED: zero configuration beyond a seed.
    result = ZeroED(seed=0).detect(data.dirty)
    print(f"\nZeroED     : {score_masks(result.mask, data.mask)}")

    # dBoost: no configuration either, but statistics-only.
    dboost = DBoost().detect(data.dirty)
    print(f"dBoost     : {score_masks(dboost.mask, data.mask)}")

    # NADEEF: needs hand-written rules — and only sees what they cover.
    rules = [
        FDRule("department", "floor"),
        PatternRule("hired", r"\d{4}-\d{2}-\d{2}"),
        PatternRule("employee_id", r"E\d{4}"),
    ]
    nadeef = Nadeef(rules).detect(data.dirty)
    print(f"NADEEF     : {score_masks(nadeef.mask, data.mask)}")

    # Where did ZeroED spend its LLM budget?
    print(f"\nZeroED LLM usage: {result.n_llm_requests} requests, "
          f"{result.input_tokens} in / {result.output_tokens} out tokens")


if __name__ == "__main__":
    main()
