"""Quickstart: detect errors in a benchmark dataset with ZeroED.

Generates the Hospital benchmark (dirty table + ground truth), runs the
ZeroED pipeline, and prints precision/recall/F1, per-stage timing and
LLM token usage — then demonstrates the train-once / score-many
serving workflow: persist the fitted detector as an on-disk artifact
and warm-score fresh rows with zero LLM calls.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import BatchScorer, ErrorMask, ZeroED, make_dataset, score_masks


def main() -> None:
    # 1. A dirty dataset with ground truth (Table II's Hospital shape).
    data = make_dataset("hospital", n_rows=500, seed=0)
    print(f"dataset: {data.dirty.name}, shape={data.dirty.shape}, "
          f"true error rate={data.mask.error_rate():.3f}")

    # 2. Zero-shot detection: no labels, no rules, no knowledge base.
    #    Engines set to "auto" pick per table: the byte-reproducible
    #    exact paths below ~2k rows (as here), the ≥5x-faster
    #    approximate engines above.  For big tables also raise n_jobs
    #    (or pass --jobs on the CLI) to fan the per-attribute stages
    #    across worker threads — masks are byte-identical for every
    #    jobs count, e.g.:
    #        ZeroED(seed=0, sampling_engine="auto",
    #               detector_engine="auto", n_jobs=-1)
    #    detect() is fit-then-score; keeping the FittedZeroED around
    #    lets step 5 reuse the expensive fit instead of re-running it.
    zeroed = ZeroED(seed=0, sampling_engine="auto", detector_engine="auto")
    fitted = zeroed.fit(data.dirty)
    result = fitted.score(data.dirty)

    # 3. Score against ground truth.
    prf = score_masks(result.mask, data.mask)
    print(f"\nZeroED [{zeroed.llm.model_name}]: {prf}")

    print("\nPer-stage timing (seconds):")
    for stage in result.stages:
        print(f"  {stage.name:16s} {stage.seconds:7.2f}  "
              f"(tokens in/out: {stage.input_tokens}/{stage.output_tokens})")

    print(f"\nLLM requests: {result.n_llm_requests}, "
          f"tokens: {result.input_tokens} in / {result.output_tokens} out")

    # 4. Inspect a few detected error cells.
    print("\nSample detections (row, attribute, value):")
    for i, attr in result.mask.error_cells()[:8]:
        print(f"  ({i:4d}, {attr:16s}) -> {data.dirty.cell(i, attr)!r}")

    # 5. Train once, score many (the serving subsystem).  `fit` runs
    #    the expensive LLM-guided phase; the fitted detector persists
    #    as a versioned artifact (manifest.json + arrays.npz) and
    #    reloads in any process — scoring rows the fit never saw (the
    #    incremental-data scenario: today's rows against yesterday's
    #    detector) then costs one featurization pass plus one MLP
    #    sweep, no LLM, no sampling.
    #    (CLI: repro fit ... --artifact-out art/ ;
    #          repro score-csv new.csv --artifact art/ ;
    #          repro serve --artifact art/  for the HTTP service.)
    late = make_dataset("hospital", n_rows=620, seed=0)
    fresh = late.dirty.select_rows(range(500, 620))  # rows fit never saw
    fresh_mask = ErrorMask(
        fresh.attributes, late.mask.matrix[500:620].copy()
    )
    with tempfile.TemporaryDirectory() as tmp:
        artifact = fitted.save(Path(tmp) / "detector")
        scorer = BatchScorer.from_artifact(artifact)
        scored = scorer.score_table(fresh)
    print(f"\nWarm-scored {fresh.n_rows} unseen rows in "
          f"{scored.total_seconds:.3f}s with zero LLM calls: "
          f"{score_masks(scored.mask, fresh_mask)}")

    # 6. Fault tolerance against a real LLM API.  fit() wraps the
    #    client in ResilientLLM automatically (retry/backoff, circuit
    #    breaker, per-attribute degradation — see config knobs
    #    llm_max_retries / llm_timeout_s / llm_breaker_threshold /
    #    checkpoint_dir), but you can compose the wrapper yourself to
    #    tune the policy or reuse it outside the pipeline:
    #
    #        from repro.llm import HTTPChatLLM, ResilientLLM, RetryPolicy
    #        client = ResilientLLM(
    #            HTTPChatLLM("http://localhost:8000/v1", "qwen2.5-7b"),
    #            RetryPolicy(max_retries=3, timeout_s=60.0),
    #        )
    #        fitted = ZeroED(seed=0, llm=client).fit(data.dirty)
    #        print(client.stats.summary())   # retries, failed calls,
    #                                        # breaker opens, by kind
    #
    #    Attributes whose LLM stages exhausted all retries fall back
    #    to pattern/frequency-only detection and are listed in
    #    fitted.details["degraded_attrs"].

    # 7. Out-of-core: million-row tables with bounded memory.  For a
    #    table too big to fit (or even to load), fit on a seeded
    #    reservoir sample and stream-score the full file shard-by-
    #    shard — the chunked mask is byte-identical to the in-memory
    #    one for every chunk size and worker count:
    #
    #        repro fit --csv big.csv --sample-rows 5000 \
    #              --artifact-out art/      # one streaming pass samples
    #                                       # the fit rows; provenance
    #                                       # lands in the manifest
    #        repro score-csv big.csv --artifact art/ \
    #              --chunk-rows 50000 --jobs 4 \
    #              --manifest-out scores.json   # per-shard checksums
    #
    #    or in code: ZeroED(sample_rows=5000).fit(table), then
    #    scorer.score_csv(path, chunk_rows=50_000, n_jobs=4).
    #    See BENCH_streaming.json for recorded rows/s and peak-memory
    #    figures at 100k / 1M rows.

    # 8. Resilient serving (resumable jobs + a hardened service).  A
    #    multi-hour streaming job should survive a crash: pass a
    #    journal directory and every scored shard is checksummed to
    #    disk (journal.jsonl + masks.bin) the moment it completes.
    #    After a kill, --resume verifies the journaled prefix and
    #    continues from the first unscored shard — the final mask is
    #    byte-identical to an uninterrupted run, with zero re-scoring:
    #
    #        repro score-csv big.csv --artifact art/ \
    #              --chunk-rows 50000 --journal-dir job/
    #        # ...crash, power loss, OOM kill...
    #        repro score-csv big.csv --artifact art/ \
    #              --chunk-rows 50000 --journal-dir job/ --resume
    #
    #    The journal is fingerprinted (artifact checksum, source file,
    #    chunking, bad-row policy); resuming against anything that
    #    changed starts over instead of splicing incompatible shards.
    #    Malformed CSV rows abort the run by default; with
    #    --bad-rows quarantine they land in a JSONL sidecar
    #    (big.csv.quarantine.jsonl) with their line numbers and raw
    #    cells, and the remaining rows score normally.
    #
    #    The HTTP service (repro serve) is hardened for production:
    #    bounded admission queue that sheds overload with 503 +
    #    Retry-After (--max-queue-rows), per-request deadlines that
    #    504 instead of piling up (--deadline, or "deadline_s" in the
    #    payload), GET /readyz for load balancers (503 while
    #    draining) vs GET /healthz for liveness + shed/expired/reload
    #    counters, POST /reload to hot-swap a re-fitted artifact with
    #    no dropped requests, and SIGTERM triggering a graceful
    #    drain-then-stop (--drain-timeout).

    # 9. Scale-out serving: worker processes + a multi-tenant
    #    registry.  One process tops out at one core; --workers N
    #    fans micro-batches to N spawn-started scoring processes that
    #    each hold the frozen scorer, while the front keeps the PR 8
    #    admission/shed/deadline contract.  Masks are byte-identical
    #    to single-process scoring at every worker count:
    #
    #        repro serve --artifact art/ --workers 4
    #
    #    One service can also host MANY fitted datasets: repeat
    #    --artifact and requests route by schema fingerprint (or an
    #    explicit "dataset" field); the first artifact is the pinned
    #    default tenant:
    #
    #        repro serve --artifact tax_art/ --artifact beers_art/ \
    #              --registry-budget-mb 256 --workers 2
    #
    #        curl -s localhost:8537/score -d \
    #          '{"rows": [...], "dataset": "beers"}'
    #        curl -s localhost:8537/healthz   # registry residency,
    #                                         # hit/miss/eviction counts
    #
    #    The memory budget makes the registry an LRU: tenants evicted
    #    under pressure reload transparently on their next request,
    #    and POST /reload upserts (same schema replaces, new schema
    #    adds a tenant).  Artifacts are format v2 now — pooled
    #    deduplicated vocabularies in a compressed npz, several times
    #    smaller on disk, loading byte-identically (v1 artifacts
    #    still load; see BENCH_serving.json for the measured ratio
    #    and the workers throughput sweep).  GET /artifact/arrays
    #    streams the bulk file in chunks for replica warm-up.

    # 10. Unified telemetry (observe-only: masks are byte-identical
    #     with everything below on or off).  Three faces, one layer:
    #
    #     Span tracing — every fit stage, per-attribute fan-out task,
    #     and scoring pass runs inside a span; export a Chrome trace
    #     and load it at https://ui.perfetto.dev to see where a fit
    #     actually spends its time:
    #
    #         repro fit --dataset hospital --rows 500 \
    #               --artifact-out art/ --trace-out fit_trace.json
    #
    #     or in code:
    #
    #         from repro.obs import trace
    #         tracer = trace.Tracer()
    #         trace.set_tracer(tracer)
    #         try:
    #             fitted = ZeroED(seed=0).fit(data.dirty)
    #         finally:
    #             trace.set_tracer(None)
    #         tracer.export("fit_trace.json")
    #
    #     The default tracer is a no-op (~nanoseconds per span; the
    #     CI gate in benchmarks/bench_obs.py holds the enabled tracer
    #     within 5% of it).
    #
    #     Prometheus metrics — the service exposes GET /metrics in
    #     text exposition format: request/latency histograms and
    #     scored-row counters per tenant, queue/shed/deadline/worker
    #     gauges, registry hit/miss/eviction counts, plus fit-time
    #     provenance (LLM tokens, retries, breaker opens) from the
    #     loaded artifact:
    #
    #         repro serve --artifact art/ &
    #         curl -s localhost:8537/metrics | grep repro_
    #
    #     Structured logs — quiet by default; --log-json turns every
    #     lifecycle event (retries, breaker opens, shed requests,
    #     journal resume decisions) into one JSON line on stderr with
    #     trace_id/request_id correlation fields:
    #
    #         repro serve --artifact art/ --log-json --log-level debug
    #
    #     All CLI commands take --log-json/--log-level; fit-family
    #     commands also take --trace-out.


if __name__ == "__main__":
    main()
