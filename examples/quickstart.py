"""Quickstart: detect errors in a benchmark dataset with ZeroED.

Generates the Hospital benchmark (dirty table + ground truth), runs the
ZeroED pipeline, and prints precision/recall/F1, per-stage timing and
LLM token usage.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ZeroED, make_dataset, score_masks


def main() -> None:
    # 1. A dirty dataset with ground truth (Table II's Hospital shape).
    data = make_dataset("hospital", n_rows=500, seed=0)
    print(f"dataset: {data.dirty.name}, shape={data.dirty.shape}, "
          f"true error rate={data.mask.error_rate():.3f}")

    # 2. Zero-shot detection: no labels, no rules, no knowledge base.
    #    Engines set to "auto" pick per table: the byte-reproducible
    #    exact paths below ~2k rows (as here), the ≥5x-faster
    #    approximate engines above.  For big tables also raise n_jobs
    #    (or pass --jobs on the CLI) to fan the per-attribute stages
    #    across worker threads — masks are byte-identical for every
    #    jobs count, e.g.:
    #        ZeroED(seed=0, sampling_engine="auto",
    #               detector_engine="auto", n_jobs=-1)
    zeroed = ZeroED(seed=0, sampling_engine="auto", detector_engine="auto")
    result = zeroed.detect(data.dirty)

    # 3. Score against ground truth.
    prf = score_masks(result.mask, data.mask)
    print(f"\nZeroED [{zeroed.llm.model_name}]: {prf}")

    print("\nPer-stage timing (seconds):")
    for stage in result.stages:
        print(f"  {stage.name:16s} {stage.seconds:7.2f}  "
              f"(tokens in/out: {stage.input_tokens}/{stage.output_tokens})")

    print(f"\nLLM requests: {result.n_llm_requests}, "
          f"tokens: {result.input_tokens} in / {result.output_tokens} out")

    # 4. Inspect a few detected error cells.
    print("\nSample detections (row, attribute, value):")
    for i, attr in result.mask.error_cells()[:8]:
        print(f"  ({i:4d}, {attr:16s}) -> {data.dirty.cell(i, attr)!r}")


if __name__ == "__main__":
    main()
