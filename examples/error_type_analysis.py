"""Scenario: which error types does each detector actually catch?

Builds single-error-type versions of the Beers benchmark (the Fig. 11
workload) and cross-tabulates method x error type F1, then uses the
post-hoc error-type classifier on a mixed dataset to break one
detector's recall down by type.

Run:  python examples/error_type_analysis.py
"""

from __future__ import annotations

from repro import ZeroED, make_dataset, score_masks
from repro.baselines import DBoost, Nadeef
from repro.bench import build_detector
from repro.data import ErrorProfile, ErrorType, classify_error_types
from repro.data.registry import get_dataset

TYPES = (
    ErrorType.TYPO, ErrorType.MISSING, ErrorType.PATTERN,
    ErrorType.RULE, ErrorType.OUTLIER,
)


def single_type_comparison() -> None:
    spec = get_dataset("beers")
    methods = ("dboost", "nadeef", "zeroed")
    print(f"{'type':>6s}" + "".join(f"{m:>10s}" for m in methods))
    for etype in TYPES:
        profile = ErrorProfile.single_type(etype, 0.05)
        data = spec.make(n_rows=600, seed=0, profile=profile)
        scores = []
        for method in methods:
            detector = build_detector(method, data, spec, seed=0)
            result = detector.detect(data.dirty)
            scores.append(score_masks(result.mask, data.mask).f1)
        print(f"{etype.short:>6s}" + "".join(f"{s:10.3f}" for s in scores))


def recall_by_type_breakdown() -> None:
    spec = get_dataset("beers")
    data = spec.make(n_rows=800, seed=0)
    result = ZeroED(seed=0).detect(data.dirty)
    types = classify_error_types(
        data.dirty, data.clean, data.mask, spec.dependencies
    )
    caught: dict[ErrorType, int] = {}
    total: dict[ErrorType, int] = {}
    for (i, attr), etype in types.items():
        total[etype] = total.get(etype, 0) + 1
        if result.mask.get(i, attr):
            caught[etype] = caught.get(etype, 0) + 1
    print("\nZeroED recall by error type on mixed Beers:")
    for etype in sorted(total, key=lambda t: t.short):
        n = total[etype]
        c = caught.get(etype, 0)
        print(f"  {etype.short:>3s}: {c:4d}/{n:<4d} ({c / n:.2f})")


def main() -> None:
    print("Per-error-type F1 (single-type Beers scenarios):")
    single_type_comparison()
    recall_by_type_breakdown()


if __name__ == "__main__":
    main()
