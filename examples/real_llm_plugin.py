"""Scenario: swapping the simulated backend for a real LLM API.

`ZeroED(llm=...)` accepts any `repro.llm.LLMClient`. `HTTPChatLLM`
speaks the OpenAI-compatible `/v1/chat/completions` protocol (vLLM,
OpenAI, together, ...), parsing free-text replies into the pipeline's
structured payloads.

This example is runnable offline: it wires a *fake transport* that
plays a minimal scripted model, demonstrating exactly what bytes would
go on the wire and how replies are parsed.  Point `base_url` at a live
endpoint (and drop the transport argument) to use a real model:

    llm = HTTPChatLLM("http://localhost:8000/v1", model="Qwen2.5-72B")
    result = ZeroED(llm=llm).detect(table)

Run:  python examples/real_llm_plugin.py
"""

from __future__ import annotations

import json

from repro.llm.client import LLMRequest
from repro.llm.http_client import HTTPChatLLM


def scripted_model(url: str, headers: dict, body: bytes, timeout: float) -> str:
    """A stand-in server: answers per prompt keyword, logs the wire."""
    request = json.loads(body)
    prompt = request["messages"][0]["content"]
    print(f"POST {url}")
    print(f"  model={request['model']} temperature={request['temperature']}")
    print(f"  prompt preview: {prompt[:70]!r}...")
    if "error-checking criteria" in prompt:
        content = (
            "Here are the criteria:\n"
            "```python\n"
            "def is_clean_not_missing(row, attr):\n"
            "    return bool(row[attr].strip())\n\n"
            "def is_clean_zip_format(row, attr):\n"
            "    import re\n"
            "    return re.fullmatch(r'\\d{5}', row[attr]) is not None\n"
            "```"
        )
    elif "erroneous (1) or clean (0)" in prompt:
        content = "Labels: 0, 0, 1, 0"
    else:
        content = "A detailed guideline would appear here."
    return json.dumps({"choices": [{"message": {"content": content}}]})


def main() -> None:
    llm = HTTPChatLLM(
        base_url="http://localhost:8000/v1",
        model="Qwen2.5-72B-Instruct",
        api_key="sk-demo",
        transport=scripted_model,  # remove for a live endpoint
    )

    # 1. Criteria request: code fences are parsed into compilable specs.
    response = llm.complete(LLMRequest(
        kind="criteria",
        prompt="Write executable error-checking criteria for 'zip'...",
        payload={"attr": "zip"},
    ))
    print("\nparsed criteria:")
    for spec in response.payload:
        print(f"  {spec['name']} (context: {spec['context_attrs']})")

    # 2. Labeling request: free-text digits become 0/1 labels.
    response = llm.complete(LLMRequest(
        kind="label_batch",
        prompt="Decide for each value whether it is erroneous (1) or clean (0)",
        payload={"values": ["02115", "60601", "6060", "94103"]},
    ))
    print(f"\nparsed labels: {response.payload}")

    print(f"\ntoken ledger: {llm.ledger.summary()}")


if __name__ == "__main__":
    main()
