"""Scenario: trading LLM budget against detection quality.

The paper's practical knob is the label rate (cluster count = rows x
rate): more clusters mean more LLM-labeled representatives, more
tokens, and usually better F1 (Fig. 9).  This example sweeps the label
rate on the Beers benchmark and prints the budget/quality frontier,
plus the same comparison against per-tuple prompting (FM_ED) to show
why sampling matters (Fig. 8's story).

Run:  python examples/budget_vs_quality.py
"""

from __future__ import annotations

from repro import ZeroED, ZeroEDConfig, make_dataset, score_masks
from repro.baselines import FMED
from repro.llm.simulated.engine import SimulatedLLM


def main() -> None:
    data = make_dataset("beers", n_rows=800, seed=0)
    print(f"beers: {data.dirty.shape}, error rate={data.mask.error_rate():.3f}\n")

    print(f"{'label rate':>10s} {'sampled':>8s} {'tokens':>10s} "
          f"{'P':>6s} {'R':>6s} {'F1':>6s}")
    for rate in (0.01, 0.02, 0.05, 0.10):
        config = ZeroEDConfig(seed=0, label_rate=rate)
        result = ZeroED(config).detect(data.dirty)
        prf = score_masks(result.mask, data.mask)
        sampled = sum(result.details["n_sampled"].values())
        print(f"{rate:10.2f} {sampled:8d} {result.total_tokens:10d} "
              f"{prf.precision:6.3f} {prf.recall:6.3f} {prf.f1:6.3f}")

    # The no-sampling alternative: prompt the LLM with every tuple.
    fm = FMED(SimulatedLLM(seed=0)).detect(data.dirty)
    prf = score_masks(fm.mask, data.mask)
    print(f"\nFM_ED (all tuples): tokens={fm.total_tokens}, {prf}")
    print("ZeroED reads a fraction of the table and converts output "
          "tokens into reusable criteria and guidelines instead.")


if __name__ == "__main__":
    main()
