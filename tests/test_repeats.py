"""Tests for multi-seed aggregation and the paired t-test helper."""

import pytest

from repro.bench.repeats import AggregateRun, paired_t_test, run_repeated


def test_run_repeated_aggregates():
    agg = run_repeated("dboost", "beers", seeds=(0, 1, 2), n_rows=150)
    assert agg.n_runs == 3
    assert 0.0 <= agg.f1_mean <= 1.0
    assert agg.f1_std >= 0.0
    assert len(agg.f1_values) == 3


def test_as_row_formats_mean_std():
    agg = run_repeated("nadeef", "beers", seeds=(0, 1), n_rows=120)
    row = agg.as_row()
    assert "±" in row["f1"]
    assert row["runs"] == 2


def make_agg(f1_values):
    return AggregateRun(
        method="m", dataset="d", n_runs=len(f1_values),
        precision_mean=0, precision_std=0, recall_mean=0, recall_std=0,
        f1_mean=sum(f1_values) / len(f1_values), f1_std=0.0,
        f1_values=tuple(f1_values),
    )


def test_paired_t_test_significant_difference():
    a = make_agg([0.8, 0.82, 0.81])
    b = make_agg([0.5, 0.52, 0.51])
    statistic, p = paired_t_test(a, b)
    assert statistic > 0
    assert p < 0.05


def test_paired_t_test_no_difference():
    a = make_agg([0.7, 0.8, 0.75])
    b = make_agg([0.71, 0.79, 0.74])
    _, p = paired_t_test(a, b)
    assert p > 0.05


def test_paired_t_test_requires_alignment():
    with pytest.raises(ValueError):
        paired_t_test(make_agg([0.5, 0.6]), make_agg([0.5, 0.6, 0.7]))
