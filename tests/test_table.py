"""Tests for repro.data.table."""

import pytest

from repro.data.table import Table
from repro.errors import DataError, SchemaError


def make(rows=None):
    rows = rows or [["a", "1"], ["b", "2"], ["c", "3"]]
    return Table.from_rows(["x", "y"], rows)


class TestConstruction:
    def test_from_rows_shape(self):
        t = make()
        assert t.shape == (3, 2)
        assert t.attributes == ["x", "y"]

    def test_from_columns(self):
        t = Table(["x", "y"], {"x": ["a"], "y": ["b"]})
        assert t.row(0) == {"x": "a", "y": "b"}

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Table([], {})

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Table(["x", "x"], {"x": ["a"]})

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(["x", "y"], {"x": ["a"]})

    def test_ragged_columns_rejected(self):
        with pytest.raises(DataError):
            Table(["x", "y"], {"x": ["a"], "y": ["b", "c"]})

    def test_ragged_rows_rejected(self):
        with pytest.raises(DataError):
            Table.from_rows(["x", "y"], [["a"]])

    def test_none_coerced_to_empty_string(self):
        t = Table.from_rows(["x"], [[None]])
        assert t.cell(0, "x") == ""

    def test_non_string_coerced(self):
        t = Table.from_rows(["x"], [[42]])
        assert t.cell(0, "x") == "42"


class TestAccess:
    def test_cell_and_set_cell(self):
        t = make()
        t.set_cell(1, "y", "99")
        assert t.cell(1, "y") == "99"

    def test_column_returns_copy(self):
        t = make()
        col = t.column("x")
        col[0] = "mutated"
        assert t.cell(0, "x") == "a"

    def test_column_view_is_live(self):
        t = make()
        view = t.column_view("x")
        t.set_cell(0, "x", "z")
        assert view[0] == "z"

    def test_row_tuple(self):
        assert make().row_tuple(0) == ("a", "1")

    def test_unknown_attr_raises(self):
        with pytest.raises(SchemaError):
            make().cell(0, "nope")

    def test_row_out_of_range(self):
        with pytest.raises(SchemaError):
            make().row(3)

    def test_attr_index(self):
        assert make().attr_index("y") == 1

    def test_iter_rows(self):
        rows = list(make().iter_rows())
        assert len(rows) == 3
        assert rows[2] == {"x": "c", "y": "3"}


class TestSlicing:
    def test_head(self):
        assert make().head(2).n_rows == 2

    def test_head_beyond_length(self):
        assert make().head(10).n_rows == 3

    def test_select_rows_order(self):
        t = make().select_rows([2, 0])
        assert t.column("x") == ["c", "a"]

    def test_select_attributes(self):
        t = make().select_attributes(["y"])
        assert t.attributes == ["y"]
        assert t.n_rows == 3

    def test_copy_is_deep(self):
        t = make()
        c = t.copy()
        c.set_cell(0, "x", "changed")
        assert t.cell(0, "x") == "a"


class TestDiff:
    def test_diff_mask_marks_changes(self):
        a = make()
        b = make()
        b.set_cell(1, "x", "changed")
        mask = b.diff_mask(a)
        assert mask[1][0] is True
        assert sum(sum(r) for r in mask) == 1

    def test_diff_requires_same_schema(self):
        other = Table.from_rows(["z"], [["1"], ["2"], ["3"]])
        with pytest.raises(SchemaError):
            make().diff_mask(other)

    def test_equality(self):
        assert make() == make()
        changed = make()
        changed.set_cell(0, "x", "q")
        assert make() != changed
