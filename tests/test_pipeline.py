"""End-to-end tests of the ZeroED pipeline."""

import pytest

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.errors import ConfigError
from repro.ml.metrics import score_masks


class TestPipelineEndToEnd:
    def test_detects_errors_on_small_hospital(self, small_hospital, fast_config):
        result = ZeroED(fast_config).detect(small_hospital.dirty)
        prf = result.score(small_hospital.mask)
        assert prf.f1 > 0.3
        assert prf.precision > 0.3

    def test_mask_shape_matches_table(self, small_hospital, fast_config):
        result = ZeroED(fast_config).detect(small_hospital.dirty)
        assert result.mask.n_rows == small_hospital.dirty.n_rows
        assert result.mask.attributes == small_hospital.dirty.attributes

    def test_deterministic(self, small_beers, fast_config):
        a = ZeroED(fast_config).detect(small_beers.dirty)
        b = ZeroED(fast_config).detect(small_beers.dirty)
        assert a.mask == b.mask

    def test_stages_recorded(self, small_hospital, fast_config):
        result = ZeroED(fast_config).detect(small_hospital.dirty)
        names = [s.name for s in result.stages]
        for expected in (
            "stats", "correlation", "criteria", "features", "sampling",
            "guidelines", "labeling", "training_data", "train_detector",
            "predict",
        ):
            assert expected in names

    def test_token_accounting_nonzero(self, small_hospital, fast_config):
        result = ZeroED(fast_config).detect(small_hospital.dirty)
        assert result.input_tokens > 0
        assert result.output_tokens > 0
        assert result.n_llm_requests > 0

    def test_details_populated(self, small_hospital, fast_config):
        result = ZeroED(fast_config).detect(small_hospital.dirty)
        assert set(result.details["n_sampled"]) == set(
            small_hospital.dirty.attributes
        )
        training = result.details["training"]
        assert any(v["propagated"] > 0 for v in training.values())

    def test_config_overrides_kwarg(self):
        z = ZeroED(label_rate=0.02, seed=9)
        assert z.config.label_rate == 0.02
        assert z.config.seed == 9


class TestAblations:
    @pytest.mark.parametrize("component", ["guid", "crit", "corr", "veri"])
    def test_ablated_pipeline_runs(self, small_hospital, fast_config, component):
        config = fast_config.ablated(component)
        result = ZeroED(config).detect(small_hospital.dirty)
        assert result.mask.n_rows == small_hospital.dirty.n_rows

    def test_unknown_ablation(self, fast_config):
        with pytest.raises(ConfigError):
            fast_config.ablated("everything")

    def test_wo_guid_disables_guideline_tokens(self, small_hospital, fast_config):
        config = fast_config.ablated("guid")
        result = ZeroED(config).detect(small_hospital.dirty)
        guideline_stage = next(
            s for s in result.stages if s.name == "guidelines"
        )
        assert guideline_stage.input_tokens == 0

    def test_wo_crit_skips_criteria_requests(self, small_hospital, fast_config):
        config = fast_config.ablated("crit")
        result = ZeroED(config).detect(small_hospital.dirty)
        criteria_stage = next(s for s in result.stages if s.name == "criteria")
        assert criteria_stage.input_tokens == 0


class TestConfig:
    def test_invalid_label_rate(self):
        with pytest.raises(ConfigError):
            ZeroEDConfig(label_rate=0.0)

    def test_invalid_clustering(self):
        with pytest.raises(ConfigError):
            ZeroEDConfig(clustering="spectral")

    def test_clusters_for_budget(self):
        config = ZeroEDConfig(label_rate=0.05)
        assert config.clusters_for(1000) == 50
        assert config.clusters_for(10) == config.min_cluster_count
        assert config.clusters_for(100_000) == config.max_cluster_count

    def test_llm_model_selects_profile(self, small_hospital, fast_config):
        import dataclasses

        config = dataclasses.replace(fast_config, llm_model="llama3.1-8b")
        z = ZeroED(config)
        assert z.llm.model_name == "llama3.1-8b"


class TestClusteringVariants:
    @pytest.mark.parametrize("method", ["kmeans", "agglomerative", "random"])
    def test_all_sampling_methods_run(self, small_beers, fast_config, method):
        import dataclasses

        config = dataclasses.replace(fast_config, clustering=method)
        result = ZeroED(config).detect(small_beers.dirty)
        prf = score_masks(result.mask, small_beers.mask)
        assert prf.f1 >= 0.0  # runs to completion with a valid mask
