"""Tests for repro.data.csvio."""

import pytest

from repro.data.csvio import (
    append_csv_rows,
    count_csv_rows,
    iter_csv_chunks,
    read_csv,
    write_csv,
)
from repro.data.table import Table
from repro.errors import DataError


def test_roundtrip(tmp_path):
    t = Table.from_rows(
        ["a", "b"], [["x", "1"], ["has,comma", 'has"quote'], ["", "empty ok"]]
    )
    path = tmp_path / "t.csv"
    write_csv(t, path)
    back = read_csv(path)
    assert back == t


def test_name_defaults_to_stem(tmp_path):
    t = Table.from_rows(["a"], [["1"]])
    path = tmp_path / "mydata.csv"
    write_csv(t, path)
    assert read_csv(path).name == "mydata"


def test_short_rows_padded(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b\nonly_one\n")
    t = read_csv(path)
    assert t.row(0) == {"a": "only_one", "b": ""}


def test_long_rows_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2,3\n")
    with pytest.raises(DataError):
        read_csv(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DataError):
        read_csv(path)


def test_header_only(tmp_path):
    path = tmp_path / "header.csv"
    path.write_text("a,b\n")
    t = read_csv(path)
    assert t.n_rows == 0
    assert t.attributes == ["a", "b"]


class TestIterCsvChunks:
    def _write(self, tmp_path, rows):
        t = Table.from_rows(["a", "b"], rows)
        path = tmp_path / "t.csv"
        write_csv(t, path)
        return t, path

    def test_chunks_concatenate_to_read_csv(self, tmp_path):
        rows = [[f"v{i % 3}", str(i)] for i in range(10)]
        t, path = self._write(tmp_path, rows)
        for chunk_rows in (1, 3, 4, 10, 99):
            chunks = list(iter_csv_chunks(path, chunk_rows))
            got = [
                c.row_tuple(i) for c in chunks for i in range(c.n_rows)
            ]
            assert got == [t.row_tuple(i) for i in range(t.n_rows)]
            assert all(c.attributes == t.attributes for c in chunks)
            assert all(c.n_rows <= chunk_rows for c in chunks)

    def test_chunk_name_and_sizes(self, tmp_path):
        _, path = self._write(tmp_path, [["x", str(i)] for i in range(7)])
        chunks = list(iter_csv_chunks(path, 3))
        assert [c.n_rows for c in chunks] == [3, 3, 1]
        assert all(c.name == "t" for c in chunks)

    def test_header_only_yields_nothing(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        assert list(iter_csv_chunks(path, 5)) == []

    def test_validation_matches_read_csv(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\nshort\nx,y\n")
        (chunk,) = iter_csv_chunks(path, 10)
        assert chunk.row(0) == {"a": "short", "b": ""}
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(DataError):
            list(iter_csv_chunks(path, 10))

    def test_bad_chunk_rows_rejected(self, tmp_path):
        _, path = self._write(tmp_path, [["x", "1"]])
        with pytest.raises(DataError):
            list(iter_csv_chunks(path, 0))


def test_count_csv_rows(tmp_path):
    t = Table.from_rows(
        ["a", "b"], [["multi\nline", "1"], ["x,y", "2"], ["", ""]]
    )
    path = tmp_path / "t.csv"
    write_csv(t, path)
    # Quoted embedded newline counts as one row (csv-parsed, not
    # line-counted).
    assert count_csv_rows(path) == 3


class TestAppendCsvRows:
    def test_append_extends_file(self, tmp_path):
        first = Table.from_rows(["a", "b"], [["1", "2"]])
        more = Table.from_rows(["a", "b"], [["3", "4"], ["5,6", '7"8']])
        path = tmp_path / "t.csv"
        write_csv(first, path)
        append_csv_rows(more, path)
        back = read_csv(path)
        assert back.n_rows == 3
        assert back.row_tuple(2) == ("5,6", '7"8')

    def test_schema_mismatch_rejected(self, tmp_path):
        write_csv(Table.from_rows(["a"], [["1"]]), tmp_path / "t.csv")
        with pytest.raises(DataError):
            append_csv_rows(
                Table.from_rows(["other"], [["x"]]), tmp_path / "t.csv"
            )

    def test_empty_target_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            append_csv_rows(Table.from_rows(["a"], [["1"]]), path)
