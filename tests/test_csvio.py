"""Tests for repro.data.csvio."""

import pytest

from repro.data.csvio import read_csv, write_csv
from repro.data.table import Table
from repro.errors import DataError


def test_roundtrip(tmp_path):
    t = Table.from_rows(
        ["a", "b"], [["x", "1"], ["has,comma", 'has"quote'], ["", "empty ok"]]
    )
    path = tmp_path / "t.csv"
    write_csv(t, path)
    back = read_csv(path)
    assert back == t


def test_name_defaults_to_stem(tmp_path):
    t = Table.from_rows(["a"], [["1"]])
    path = tmp_path / "mydata.csv"
    write_csv(t, path)
    assert read_csv(path).name == "mydata"


def test_short_rows_padded(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b\nonly_one\n")
    t = read_csv(path)
    assert t.row(0) == {"a": "only_one", "b": ""}


def test_long_rows_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2,3\n")
    with pytest.raises(DataError):
        read_csv(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DataError):
        read_csv(path)


def test_header_only(tmp_path):
    path = tmp_path / "header.csv"
    path.write_text("a,b\n")
    t = read_csv(path)
    assert t.n_rows == 0
    assert t.attributes == ["a", "b"]
