"""Tests for repro.core.correlation and repro.core.featurize."""

import dataclasses

import numpy as np
import pytest

from repro.config import ZeroEDConfig
from repro.core.correlation import correlated_attributes, nmi_matrix
from repro.core.featurize import FeatureSpace
from repro.criteria import compile_criteria
from repro.data.stats import compute_all_stats
from repro.data.table import Table
from repro.llm.simulated import codegen


def fd_table(n=200, seed=0):
    rng = np.random.default_rng(seed)
    cities = ["Boston", "Chicago", "Denver"]
    states = {"Boston": "MA", "Chicago": "IL", "Denver": "CO"}
    rows = []
    for i in range(n):
        city = cities[int(rng.integers(3))]
        noise = str(int(rng.integers(0, 10_000)))
        rows.append([city, states[city], noise])
    return Table.from_rows(["city", "state", "noise"], rows, name="fd")


class TestCorrelation:
    def test_fd_pair_has_high_nmi(self):
        matrix = nmi_matrix(fd_table())
        assert matrix[("city", "state")] > 0.9
        assert matrix[("city", "noise")] < 0.9

    def test_topk_selects_dependent_attr(self):
        corr = correlated_attributes(fd_table(), k=1)
        assert corr["city"] == ["state"]
        assert corr["state"] == ["city"]

    def test_k_zero(self):
        corr = correlated_attributes(fd_table(), k=0)
        assert all(v == [] for v in corr.values())

    def test_k_clipped(self):
        corr = correlated_attributes(fd_table(), k=10)
        assert len(corr["city"]) == 2

    def test_subsampling_path(self):
        corr = correlated_attributes(fd_table(n=500), k=1, max_rows=100)
        assert corr["city"] == ["state"]


def build_space(config=None):
    table = fd_table()
    config = config or ZeroEDConfig(embedding_dim=8)
    stats = compute_all_stats(table)
    correlated = correlated_attributes(table, config.n_correlated)
    rows = [table.row(i) for i in range(30)]
    criteria = {
        attr: compile_criteria(
            attr,
            codegen.generate_criteria(
                attr, rows, correlated[attr], 1.0, 0.0,
                np.random.default_rng(0),
            ),
        )
        for attr in table.attributes
    }
    return table, FeatureSpace(table, stats, correlated, criteria, config)


class TestFeatureSpace:
    def test_base_matrix_shape(self):
        table, fs = build_space()
        base = fs.base_matrix("city")
        assert base.shape[0] == table.n_rows
        assert base.shape[1] == fs.featurizers["city"].base_dim

    def test_unified_concatenates_correlated(self):
        table, fs = build_space()
        unified = fs.unified_matrix("city")
        expected = (
            fs.featurizers["city"].base_dim
            + fs.featurizers["state"].base_dim
            + fs.featurizers["noise"].base_dim
        )
        assert unified.shape[1] == expected

    def test_unified_without_correlated(self):
        config = ZeroEDConfig(embedding_dim=8, use_correlated_features=False)
        table, fs = build_space(config)
        assert fs.unified_matrix("city").shape[1] == fs.featurizers["city"].base_dim

    def test_block_ablations_reduce_dim(self):
        dims = {}
        for switch in (
            {}, {"use_criteria_features": False},
            {"use_semantic_features": False},
            {"use_statistical_features": False},
        ):
            config = ZeroEDConfig(embedding_dim=8, **switch)
            _, fs = build_space(config)
            key = tuple(sorted(switch)) or ("full",)
            dims[key] = fs.featurizers["city"].base_dim
        full = dims[("full",)]
        assert all(v < full for k, v in dims.items() if k != ("full",))

    def test_value_frequency_feature_value(self):
        table, fs = build_space()
        featurizer = fs.featurizers["city"]
        vec = featurizer.base_vector("Boston", {"state": "MA", "noise": "1"})
        freq = featurizer.stats.value_frequency("Boston")
        assert vec[0] == pytest.approx(freq)

    def test_base_vector_matches_matrix_for_existing_cell(self):
        table, fs = build_space()
        i = 3
        row = table.row(i)
        vec = fs.featurizers["city"].base_vector(row["city"], row)
        assert np.allclose(vec, fs.base_matrix("city")[i])

    def test_unified_vector_ad_hoc_value(self):
        table, fs = build_space()
        row = table.row(0)
        vec = fs.unified_vector("city", "NOTACITY", row, 0)
        assert vec.shape == (fs.unified_matrix("city").shape[1],)
        # Unknown value has zero value-frequency.
        assert vec[0] == 0.0

    def test_invalidate_recomputes_after_criteria_swap(self):
        table, fs = build_space()
        featurizer = fs.featurizers["city"]
        before = fs.unified_matrix("city").shape[1]
        featurizer.set_criteria(featurizer.criteria[:1])
        fs.invalidate("city")
        after = fs.unified_matrix("city").shape[1]
        assert after < before

    def test_cache_reused(self):
        table, fs = build_space()
        a = fs.base_matrix("city")
        b = fs.base_matrix("city")
        assert a is b
