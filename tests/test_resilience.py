"""Resilience layer: retries, backoff, breaker, timeout, checkpoints.

Everything here is deterministic and offline — sleeps and clocks are
injected, failures are scripted — so the failure path is tested as
tightly as the happy path.
"""

from __future__ import annotations

import time

import pytest

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.registry import get_dataset
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    LLMError,
    LLMTimeoutError,
)
from repro.llm.checkpoint import CheckpointedLLM, fit_fingerprint
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.faults import FaultPlan, FaultyLLM
from repro.llm.resilience import (
    ResilientLLM,
    RetryPolicy,
    is_retryable,
)
from repro.llm.simulated.engine import SimulatedLLM


class ScriptedLLM(LLMClient):
    """Replays a script of responses (str) and failures (Exception)."""

    def __init__(self, script):
        super().__init__()
        self.script = list(script)
        self.calls = 0

    @property
    def model_name(self) -> str:
        return "scripted"

    def _complete(self, request: LLMRequest) -> LLMResponse:
        self.calls += 1
        item = self.script.pop(0) if self.script else "default"
        if isinstance(item, Exception):
            raise item
        return LLMResponse(text=item, payload=item)


def req(kind="guideline", prompt="p"):
    return LLMRequest(kind=kind, prompt=prompt, payload={})


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
class TestRetryability:
    def test_status_less_failures_are_retryable(self):
        assert is_retryable(LLMError("boom"))
        assert is_retryable(LLMTimeoutError("slow"))

    @pytest.mark.parametrize("status", [408, 429, 500, 502, 503])
    def test_transient_statuses_are_retryable(self, status):
        assert is_retryable(LLMError("x", status_code=status))

    @pytest.mark.parametrize("status", [400, 401, 403, 404, 422])
    def test_permanent_statuses_are_not(self, status):
        assert not is_retryable(LLMError("x", status_code=status))

    def test_open_circuit_is_never_retryable(self):
        assert not is_retryable(CircuitOpenError("open"))


class TestRetryPolicy:
    def test_from_config_maps_every_knob(self):
        config = ZeroEDConfig(
            llm_max_retries=5,
            llm_backoff_s=0.25,
            llm_backoff_max_s=4.0,
            llm_timeout_s=7.5,
            llm_breaker_threshold=3,
            llm_breaker_cooldown_s=9.0,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 5
        assert policy.backoff_base_s == 0.25
        assert policy.backoff_max_s == 4.0
        assert policy.timeout_s == 7.5
        assert policy.breaker_threshold == 3
        assert policy.breaker_cooldown_s == 9.0

    def test_config_validates_resilience_knobs(self):
        with pytest.raises(ConfigError):
            ZeroEDConfig(llm_max_retries=-1)
        with pytest.raises(ConfigError):
            ZeroEDConfig(llm_backoff_s=-0.1)
        with pytest.raises(ConfigError):
            ZeroEDConfig(llm_timeout_s=0)
        with pytest.raises(ConfigError):
            ZeroEDConfig(llm_breaker_threshold=-2)


# ----------------------------------------------------------------------
class TestResilientLLM:
    def test_success_passes_through_untouched(self):
        inner = ScriptedLLM(["hello"])
        client = ResilientLLM(inner)
        response = client.complete(req())
        assert response.text == "hello"
        summary = client.stats.summary()
        assert summary["calls"] == 1
        assert summary["attempts"] == 1
        assert summary["failed_attempts"] == 0

    def test_ledger_is_shared_and_counts_once(self):
        inner = ScriptedLLM(["hello"])
        client = ResilientLLM(inner)
        assert client.ledger is inner.ledger
        client.complete(req())
        assert client.ledger.summary()["requests"] == 1

    def test_model_name_passthrough(self):
        assert ResilientLLM(ScriptedLLM([])).model_name == "scripted"

    def test_retries_until_success(self):
        sleeps = []
        inner = ScriptedLLM([LLMError("a"), LLMError("b"), "ok"])
        client = ResilientLLM(
            inner, RetryPolicy(max_retries=2), sleep=sleeps.append
        )
        assert client.complete(req()).text == "ok"
        summary = client.stats.summary()
        assert summary["attempts"] == 3
        assert summary["failed_attempts"] == 2
        assert summary["retries"] == 2
        assert summary["failed_calls"] == 0
        assert len(sleeps) == 2

    def test_backoff_grows_exponentially_and_caps(self):
        sleeps = []
        inner = ScriptedLLM([LLMError(str(i)) for i in range(4)] + ["ok"])
        client = ResilientLLM(
            inner,
            RetryPolicy(
                max_retries=4, backoff_base_s=1.0, backoff_max_s=3.0,
                jitter=0.0,
            ),
            sleep=sleeps.append,
        )
        client.complete(req())
        assert sleeps == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            sleeps = []
            client = ResilientLLM(
                ScriptedLLM([LLMError("x"), LLMError("y"), "ok"]),
                RetryPolicy(max_retries=2),
                seed=seed,
                sleep=sleeps.append,
            )
            client.complete(req(prompt="same prompt"))
            return sleeps

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_exhausted_retries_raise_with_exact_accounting(self):
        inner = ScriptedLLM([LLMError("a"), LLMError("b"), LLMError("c")])
        client = ResilientLLM(
            inner, RetryPolicy(max_retries=2), sleep=lambda _s: None
        )
        with pytest.raises(LLMError, match="c"):
            client.complete(req())
        summary = client.stats.summary()
        assert summary["failed_attempts"] == 3
        assert summary["retries"] == 2
        assert summary["failed_calls"] == 1
        # The invariant the chaos suite leans on:
        assert (
            summary["failed_attempts"]
            == summary["retries"] + summary["failed_calls"]
        )

    def test_permanent_status_fails_without_retry(self):
        inner = ScriptedLLM([LLMError("gone", status_code=404), "ok"])
        client = ResilientLLM(inner, RetryPolicy(max_retries=5))
        with pytest.raises(LLMError, match="gone"):
            client.complete(req())
        assert client.stats.summary()["attempts"] == 1
        assert inner.calls == 1

    def test_failures_counted_by_request_kind(self):
        inner = ScriptedLLM([LLMError("x"), "ok"])
        client = ResilientLLM(
            inner, RetryPolicy(max_retries=1), sleep=lambda _s: None
        )
        client.complete(req(kind="label_batch"))
        assert client.stats.summary()["failures_by_kind"] == {
            "label_batch": 1
        }

    def test_non_llm_exceptions_are_not_retried(self):
        inner = ScriptedLLM([ValueError("bug"), "ok"])
        client = ResilientLLM(inner, RetryPolicy(max_retries=5))
        with pytest.raises(ValueError):
            client.complete(req())
        assert inner.calls == 1

    def test_per_call_timeout_raises_timeout_error(self):
        class SlowLLM(ScriptedLLM):
            def _complete(self, request):
                time.sleep(0.5)
                return LLMResponse(text="late", payload=None)

        client = ResilientLLM(
            SlowLLM([]),
            RetryPolicy(max_retries=0, timeout_s=0.05),
        )
        start = time.monotonic()
        with pytest.raises(LLMTimeoutError, match="per-call timeout"):
            client.complete(req())
        assert time.monotonic() - start < 0.4  # did not wait out the call

    def test_timeout_disabled_means_no_watchdog_thread(self, monkeypatch):
        from repro.llm import resilience as resilience_module

        def no_threads(*args, **kwargs):
            raise AssertionError("no watchdog expected without timeout_s")

        monkeypatch.setattr(
            resilience_module.threading, "Thread", no_threads
        )
        client = ResilientLLM(ScriptedLLM(["ok"]), RetryPolicy())
        assert client.complete(req()).text == "ok"


# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, script, threshold=2, cooldown=10.0):
        clock = FakeClock()
        client = ResilientLLM(
            ScriptedLLM(script),
            RetryPolicy(
                max_retries=0,
                breaker_threshold=threshold,
                breaker_cooldown_s=cooldown,
            ),
            sleep=lambda _s: None,
            clock=clock,
        )
        return client, clock

    def test_opens_after_consecutive_failures(self):
        client, _clock = self.make([LLMError("a"), LLMError("b"), "never"])
        for _ in range(2):
            with pytest.raises(LLMError):
                client.complete(req())
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.complete(req())
        summary = client.stats.summary()
        assert summary["short_circuited"] == 1
        assert summary["breaker_opens"] == 1
        # Short-circuited calls never reach the backend:
        assert client.inner.calls == 2

    def test_success_resets_the_failure_streak(self):
        client, _clock = self.make(
            [LLMError("a"), "fine", LLMError("b"), "fine again"]
        )
        with pytest.raises(LLMError):
            client.complete(req())
        assert client.complete(req()).text == "fine"
        with pytest.raises(LLMError):
            client.complete(req())
        # Two failures total but never two *consecutive*: still closed.
        assert client.breaker.state == "closed"
        assert client.complete(req()).text == "fine again"

    def test_half_open_probe_closes_on_success(self):
        client, clock = self.make([LLMError("a"), LLMError("b"), "recovered"])
        for _ in range(2):
            with pytest.raises(LLMError):
                client.complete(req())
        clock.now = 11.0  # past the cooldown: next call is the probe
        assert client.complete(req()).text == "recovered"
        assert client.breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        client, clock = self.make(
            [LLMError("a"), LLMError("b"), LLMError("still down")]
        )
        for _ in range(2):
            with pytest.raises(LLMError):
                client.complete(req())
        clock.now = 11.0
        with pytest.raises(LLMError, match="still down"):
            client.complete(req())
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.complete(req())

    def test_zero_threshold_disables_the_breaker(self):
        client, _clock = self.make(
            [LLMError(str(i)) for i in range(5)], threshold=0
        )
        for _ in range(5):
            with pytest.raises(LLMError):
                client.complete(req())
        assert client.breaker.state == "closed"
        assert client.stats.summary()["short_circuited"] == 0

    def test_snapshot_shape(self):
        client, _clock = self.make(["ok"])
        snap = client.breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["threshold"] == 2
        assert "consecutive_failures" in snap and "opens" in snap


# ----------------------------------------------------------------------
class TestCheckpointedLLM:
    def fingerprint(self):
        return "f" * 64

    def test_miss_then_hit_roundtrip(self, tmp_path):
        request = LLMRequest(
            kind="guideline", prompt="p", payload={"attr": "city"}
        )
        first = CheckpointedLLM(
            ScriptedLLM(["answer"]), tmp_path, self.fingerprint()
        )
        assert first.complete(request).text == "answer"
        assert first.summary()["misses"] == 1
        assert (tmp_path / "attr-city.json").exists()

        # A fresh process: new wrapper, backend that would answer
        # differently — the checkpoint must win and spend no tokens.
        inner = ScriptedLLM(["WRONG"])
        second = CheckpointedLLM(inner, tmp_path, self.fingerprint())
        response = second.complete(request)
        assert response.text == "answer"
        assert second.summary()["hits"] == 1
        assert inner.calls == 0
        assert second.ledger.summary()["requests"] == 0

    def test_stale_fingerprint_ignores_old_files(self, tmp_path):
        request = LLMRequest(
            kind="guideline", prompt="p", payload={"attr": "city"}
        )
        CheckpointedLLM(
            ScriptedLLM(["old"]), tmp_path, "a" * 64
        ).complete(request)
        inner = ScriptedLLM(["new"])
        client = CheckpointedLLM(inner, tmp_path, "b" * 64)
        assert client.complete(request).text == "new"
        assert inner.calls == 1

    def test_different_prompts_get_different_keys(self, tmp_path):
        client = CheckpointedLLM(
            ScriptedLLM(["one", "two"]), tmp_path, self.fingerprint()
        )
        r1 = client.complete(req(prompt="alpha"))
        r2 = client.complete(req(prompt="beta"))
        assert (r1.text, r2.text) == ("one", "two")
        assert client.summary()["misses"] == 2

    def test_unserializable_payload_served_but_not_cached(self, tmp_path):
        class ObjectLLM(ScriptedLLM):
            def _complete(self, request):
                self.calls += 1
                return LLMResponse(text="t", payload=object())

        inner = ObjectLLM([])
        client = CheckpointedLLM(inner, tmp_path, self.fingerprint())
        client.complete(req(prompt="x"))
        client2 = CheckpointedLLM(inner, tmp_path, self.fingerprint())
        client2.complete(req(prompt="x"))
        assert inner.calls == 2  # second run was a miss again

    def test_fingerprint_tracks_workload_identity(self):
        table = get_dataset("hospital").make(n_rows=50, seed=0).dirty
        config = ZeroEDConfig()
        base = fit_fingerprint(table, config, "m")
        assert fit_fingerprint(table, config, "m") == base
        assert fit_fingerprint(table, config, "other-model") != base
        assert (
            fit_fingerprint(table, ZeroEDConfig(seed=9), "m") != base
        )
        smaller = get_dataset("hospital").make(n_rows=40, seed=0).dirty
        assert fit_fingerprint(smaller, config, "m") != base


# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def fast_config(self, **kw):
        return ZeroEDConfig(
            label_rate=0.1,
            mlp_epochs=4,
            criteria_sample_size=10,
            embedding_dim=8,
            llm_backoff_s=0.0,
            seed=0,
            **kw,
        )

    def test_default_fit_reports_empty_degradation(self, tmp_path):
        table = get_dataset("hospital").make(n_rows=80, seed=1).dirty
        fitted = ZeroED(self.fast_config()).fit(table)
        assert fitted.details["degraded_attrs"] == {}
        res = fitted.details["resilience"]
        assert res["failed_attempts"] == 0
        assert res["breaker"]["state"] == "closed"

    def test_checkpoint_resume_spends_zero_tokens(self, tmp_path):
        table = get_dataset("hospital").make(n_rows=80, seed=1).dirty
        config = self.fast_config(checkpoint_dir=str(tmp_path))
        first = ZeroED(config).fit(table)
        spent = first.ledger_summary["input_tokens"]
        assert spent > 0
        assert first.details["resilience"]["checkpoint"]["hits"] == 0

        second = ZeroED(config).fit(table)
        assert second.ledger_summary["input_tokens"] == 0
        checkpoint = second.details["resilience"]["checkpoint"]
        assert checkpoint["misses"] == 0 and checkpoint["hits"] > 0
        # Resumed fit is the same fit:
        assert (
            second.score(table).mask.matrix
            == first.score(table).mask.matrix
        ).all()

    def test_degradation_disabled_fails_fast(self):
        table = get_dataset("hospital").make(n_rows=60, seed=1).dirty
        config = self.fast_config(
            degrade_on_failure=False, llm_max_retries=0
        )
        faulty = FaultyLLM(
            SimulatedLLM(seed=0),
            FaultPlan(malformed_rate=1.0, kinds=("criteria",), seed=0),
        )
        with pytest.raises(LLMError, match="malformed"):
            ZeroED(config, llm=faulty).fit(table)

    def test_all_labeling_failures_degrade_every_attribute(self):
        table = get_dataset("hospital").make(n_rows=60, seed=1).dirty
        config = self.fast_config(llm_max_retries=1)
        faulty = FaultyLLM(
            SimulatedLLM(seed=0),
            FaultPlan(timeout_rate=1.0, kinds=("label_batch",), seed=0),
        )
        fitted = ZeroED(config, llm=faulty).fit(table)
        degraded = fitted.details["degraded_attrs"]
        assert set(degraded) == set(table.attributes)
        assert all("labeling" in stages for stages in degraded.values())
        # The fit still produced a scoreable detector:
        mask = fitted.score(table).mask
        assert mask.matrix.shape == (table.n_rows, table.n_attributes)

    def test_caller_supplied_resilient_llm_is_respected(self):
        table = get_dataset("hospital").make(n_rows=60, seed=1).dirty
        inner = SimulatedLLM(seed=0)
        client = ResilientLLM(inner, RetryPolicy(max_retries=7))
        fitted = ZeroED(self.fast_config(), llm=client).fit(table)
        assert fitted.llm is client  # not re-wrapped
