"""Chaos suite, serving side: IO faults vs the score journal, load vs
the hardened service.

The PR 8 acceptance pins:

* a journaled ``score_csv`` killed by an *injected torn write* at any
  shard — the journal's own append is what fails — resumes to a global
  mask **byte-identical** to the uninterrupted run with **zero
  re-scored verified shards**;
* seeded :class:`~repro.data.faults.FaultyIO` schedules are
  deterministic: same plan, same faults, exact stats accounting;
* a service saturated far past its admission cap returns *only*
  well-formed JSON responses (200 / 503 / 504 — nothing torn, nothing
  misrouted) while ``/healthz`` accounts for every shed request.

Marked ``chaos`` so CI runs it in the dedicated ``pytest -m chaos``
job next to the PR 6 LLM-fault suite.
"""

from __future__ import annotations

import hashlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.csvio import write_csv
from repro.data.faults import FaultyIO, IOFaultPlan
from repro.data.mask import ErrorMask
from repro.data.registry import get_dataset
from repro.serving.scorer import BatchScorer
from repro.serving.service import ScoringService

pytestmark = pytest.mark.chaos


def _sha(mask: ErrorMask) -> str:
    return hashlib.sha256(mask.matrix.tobytes()).hexdigest()


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    config = ZeroEDConfig(
        label_rate=0.1,
        mlp_epochs=8,
        criteria_sample_size=20,
        embedding_dim=8,
        seed=7,
    )
    dirty = get_dataset("hospital").make(n_rows=150, seed=7).dirty
    return ZeroED(config).fit(dirty).save(
        tmp_path_factory.mktemp("chaos-art") / "detector"
    )


@pytest.fixture(scope="module")
def scorer(artifact_dir) -> BatchScorer:
    return BatchScorer.from_artifact(artifact_dir)


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    target = tmp_path_factory.mktemp("chaos-src") / "foreign.csv"
    write_csv(get_dataset("hospital").make(n_rows=150, seed=11).dirty, target)
    return target


@pytest.fixture(scope="module")
def baseline_sha(scorer, csv_path) -> str:
    return _sha(scorer.score_csv(csv_path, chunk_rows=25).mask)


class TestIOFaultDeterminism:
    def test_same_seed_same_schedule(self, tmp_path):
        def run(seed: int) -> tuple[list[str], dict]:
            chaos = FaultyIO(IOFaultPlan(
                torn_write_rate=0.3, enospc_rate=0.2, seed=seed
            ))
            events = []
            path = tmp_path / f"t{seed}-{len(list(tmp_path.iterdir()))}"
            fh = chaos.open(path, "wb")
            for i in range(20):
                try:
                    fh.write(b"x" * 64)
                    events.append("ok")
                except OSError as exc:
                    events.append(f"err{exc.errno}")
            fh.close()
            return events, chaos.stats.summary()

        first_events, first_stats = run(42)
        second_events, second_stats = run(42)
        assert first_events == second_events
        assert first_stats == second_stats
        assert first_stats["torn_writes"] + first_stats["enospc"] > 0
        other_events, _ = run(43)
        assert other_events != first_events

    def test_torn_write_persists_a_strict_prefix(self, tmp_path):
        chaos = FaultyIO(IOFaultPlan(torn_write_rate=1.0, seed=0))
        path = tmp_path / "torn"
        fh = chaos.open(path, "wb")
        with pytest.raises(OSError):
            fh.write(b"0123456789")
        fh.close()
        data = path.read_bytes()
        assert 0 < len(data) < 10
        assert b"0123456789".startswith(data)

    def test_partial_reads_rewind(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(range(200)))
        chaos = FaultyIO(IOFaultPlan(partial_read_rate=1.0, seed=3))
        fh = chaos.open(path, "rb")
        chunks = []
        while True:
            piece = fh.read(64)
            if not piece:
                break
            chunks.append(piece)
        fh.close()
        # Short reads never lose or duplicate bytes.
        assert b"".join(chunks) == bytes(range(200))
        assert chaos.stats.summary()["partial_reads"] > 0

    def test_permission_faults_hit_open(self, tmp_path):
        chaos = FaultyIO(IOFaultPlan(permission_rate=1.0, seed=1,
                                     max_faults=2))
        with pytest.raises(PermissionError):
            chaos.open(tmp_path / "a", "w")
        with pytest.raises(PermissionError):
            chaos.open(tmp_path / "b", "w")
        # max_faults exhausted: the valve opens.
        fh = chaos.open(tmp_path / "c", "w")
        fh.close()
        assert chaos.stats.summary()["permission_errors"] == 2


class TestTornJournalResume:
    """Kill the journal itself mid-append, at every shard, and prove
    the resumed mask is the uninterrupted one."""

    @pytest.mark.parametrize("torn_seed", [11, 29, 47])
    def test_torn_append_then_resume_is_byte_identical(
        self, scorer, csv_path, baseline_sha, tmp_path, torn_seed
    ):
        journal_dir = tmp_path / f"journal-{torn_seed}"
        chaos = FaultyIO(IOFaultPlan(
            torn_write_rate=0.5, seed=torn_seed, max_faults=1
        ))
        # The journaled run dies on the injected ENOSPC from inside
        # ScoreJournal.append (mask bytes or record, whichever the
        # seeded schedule hits first).
        with pytest.raises(OSError):
            scorer.score_csv(
                csv_path,
                chunk_rows=25,
                journal_dir=journal_dir,
                opener=chaos.open,
            )
        assert chaos.stats.summary()["torn_writes"] == 1

        calls = {"n": 0}
        original = BatchScorer.score_table

        def counted(self_scorer, table, **kwargs):
            calls["n"] += 1
            return original(self_scorer, table, **kwargs)

        BatchScorer.score_table = counted
        try:
            result = scorer.score_csv(
                csv_path,
                chunk_rows=25,
                journal_dir=journal_dir,
                resume=True,
            )
        finally:
            BatchScorer.score_table = original
        assert _sha(result.mask) == baseline_sha
        resumed = result.details["resumed_shards"]
        # Zero re-scored verified shards: the resumed run scores
        # exactly the complement of the journal's valid prefix.
        assert calls["n"] == 6 - resumed
        assert result.details["journal_invalidated"] is False

    def test_every_kill_point_resumes(
        self, scorer, csv_path, baseline_sha, tmp_path
    ):
        """Tear the k-th journal write for every k — each shard issues
        two appends (mask bytes, then its record), so k ∈ [0, 12)
        covers both tear positions at all six shards."""
        for k in range(12):
            journal_dir = tmp_path / f"k{k}"
            boom = {"left": k}
            real_open = open

            def opener(path, mode="r", **kwargs):
                fh = real_open(path, mode, **kwargs)
                if "a" not in mode:
                    return fh
                return _TearOnNthWrite(fh, boom)

            with pytest.raises(OSError):
                scorer.score_csv(
                    csv_path,
                    chunk_rows=25,
                    journal_dir=journal_dir,
                    opener=opener,
                )
            result = scorer.score_csv(
                csv_path,
                chunk_rows=25,
                journal_dir=journal_dir,
                resume=True,
            )
            assert _sha(result.mask) == baseline_sha, f"kill at shard {k}"


class _TearOnNthWrite:
    """Tear the (n+1)-th write across this handle: persist half, fail."""

    def __init__(self, inner, counter: dict) -> None:
        self._inner = inner
        self._counter = counter

    def write(self, data):
        if self._counter["left"] == 0:
            self._counter["left"] = -1  # never fire again
            kept = data[: max(1, len(data) // 2)]
            self._inner.write(kept)
            self._inner.flush()
            import errno

            raise OSError(errno.ENOSPC, "torn")
        if self._counter["left"] > 0:
            self._counter["left"] -= 1
        return self._inner.write(data)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._inner.close()
        return False


class TestSaturatedService:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_saturation_sheds_cleanly(self, scorer, artifact_dir, workers):
        """Hammer a tiny admission queue from many clients: every
        response is well-formed 200/503/504, flags are always the
        right shape, and /healthz accounts for the shed requests.

        Runs once single-process and once with a 2-process worker pool
        (PR 9): moving scoring off-process must not loosen a single
        shed/deadline invariant."""
        service = ScoringService(
            scorer, port=0, max_queue_rows=8, linger_s=0.02,
            artifact_path=artifact_dir, workers=workers,
        ).start()
        # Pay the per-worker artifact load up front so the saturation
        # burst measures admission behaviour, not spawn latency.
        service.warm_workers()
        attr = scorer.attributes[0]
        n_attrs = len(scorer.attributes)
        statuses: list[int] = []
        malformed: list[str] = []
        lock = threading.Lock()

        def client(i: int) -> None:
            body = json.dumps(
                {"rows": [{attr: f"v{i}"} for _ in range(4)]}
            ).encode()
            request = urllib.request.Request(
                service.url + "/score",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as resp:
                    status, payload = resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                status, payload = exc.code, json.loads(exc.read())
            except OSError as exc:
                with lock:
                    statuses.append(0)
                    malformed.append(f"connection error: {exc!r}")
                return
            with lock:
                statuses.append(status)
                if status == 200:
                    flags = payload.get("flags")
                    if (
                        not isinstance(flags, list)
                        or len(flags) != 4
                        or any(len(row) != n_attrs for row in flags)
                    ):
                        malformed.append(f"bad 200 body: {payload}")
                elif status in (503, 504):
                    if "code" not in payload or "error" not in payload:
                        malformed.append(f"bad {status} body: {payload}")
                else:
                    malformed.append(f"unexpected status {status}")

        try:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(30)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(statuses) == 30
            assert not malformed, malformed
            assert statuses.count(200) >= 1  # service kept serving
            _status, health = _get(service.url + "/healthz")
            assert health["shed"] == statuses.count(503)
            # After the burst the service is ready again.
            status, body = _get(service.url + "/readyz")
            assert status == 200 and body == {"ready": True}
        finally:
            service.stop()


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
