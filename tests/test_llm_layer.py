"""Tests for repro.llm: tokens, client, profiles, prompts."""

import pytest

from repro.data.errortypes import ErrorType
from repro.errors import ConfigError, LLMError
from repro.llm.client import LLMClient, LLMRequest, LLMResponse
from repro.llm.profiles import (
    DEFAULT_PROFILE,
    GPT_4O_MINI,
    PROFILES,
    QWEN_72B,
    get_profile,
)
from repro.llm.prompts import serialize_rows, serialize_tuple
from repro.llm.tokens import TokenLedger, estimate_tokens


class TestTokens:
    def test_empty(self):
        assert estimate_tokens("") == 0

    def test_words_floor(self):
        assert estimate_tokens("a b c d") >= 4

    def test_chars_heuristic_for_code(self):
        text = "x" * 400
        assert estimate_tokens(text) == 100

    def test_ledger_accumulates(self):
        ledger = TokenLedger()
        ledger.record("criteria", 10, 5)
        ledger.record("criteria", 10, 5)
        ledger.record("guideline", 7, 3)
        assert ledger.total.input_tokens == 27
        assert ledger.total.output_tokens == 13
        assert ledger.by_kind["criteria"].input_tokens == 20
        assert ledger.n_requests == 3

    def test_ledger_reset(self):
        ledger = TokenLedger()
        ledger.record("augment", 1, 1)
        ledger.reset()
        assert ledger.summary()["total_tokens"] == 0


class TestRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(LLMError):
            LLMRequest(kind="nonsense", prompt="x")

    def test_serialize_tuple_format(self):
        s = serialize_tuple({"a": "1", "b": ""})
        assert s == "{a: 1, b: }"

    def test_serialize_rows_lines(self):
        s = serialize_rows([{"a": "1"}, {"a": "2"}])
        assert s.count("\n") == 1


class _Echo(LLMClient):
    model_name = "echo"

    def _complete(self, request):
        return LLMResponse(text="out " * 8, payload=None)


class TestClientAccounting:
    def test_tokens_recorded(self):
        client = _Echo()
        client.complete(LLMRequest(kind="augment", prompt="word " * 20))
        summary = client.ledger.summary()
        assert summary["requests"] == 1
        assert summary["input_tokens"] >= 20
        assert summary["output_tokens"] >= 8


class TestProfiles:
    def test_registry_contains_table5_models(self):
        assert set(PROFILES) == {
            "qwen2.5-72b", "llama3.1-70b", "llama3.1-8b",
            "qwen2.5-7b", "gpt-4o-mini",
        }

    def test_default_is_qwen72(self):
        assert DEFAULT_PROFILE is QWEN_72B

    def test_lookup(self):
        assert get_profile("gpt-4o-mini") is GPT_4O_MINI
        with pytest.raises(ConfigError):
            get_profile("gpt-5")

    def test_ordering_matches_paper(self):
        # Qwen72b must dominate GPT-4o-mini on precision-driving noise,
        # and larger models should not have lower recall than smaller
        # siblings of the same family.
        assert QWEN_72B.false_positive_rate < GPT_4O_MINI.false_positive_rate
        for etype in (ErrorType.TYPO, ErrorType.RULE, ErrorType.PATTERN):
            assert QWEN_72B.recall(etype) >= get_profile("qwen2.5-7b").recall(etype)
            assert (
                get_profile("llama3.1-70b").recall(etype)
                >= get_profile("llama3.1-8b").recall(etype)
            )

    def test_invalid_probability_rejected(self):
        from repro.llm.profiles import LLMProfile

        with pytest.raises(ConfigError):
            LLMProfile(name="bad", false_positive_rate=2.0)
