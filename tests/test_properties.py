"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.mask import ErrorMask
from repro.data.table import Table
from repro.llm.tokens import estimate_tokens
from repro.ml.kmeans import KMeans
from repro.ml.metrics import precision_recall_f1
from repro.ml.nmi import entropy, normalized_mutual_information
from repro.text.distance import levenshtein
from repro.text.embeddings import SubwordHashEmbedding
from repro.text.patterns import generalize
from repro.text.tokenize import tokenize

# Printable-ish cell text without surrogate weirdness.
cell_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=30,
)
short_words = st.text(
    alphabet=st.sampled_from("abcdefgh"), min_size=0, max_size=12
)


class TestLevenshteinProperties:
    @given(short_words, short_words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_words, short_words)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_words, short_words)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(short_words, short_words, short_words)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_words, short_words)
    def test_limit_consistency(self, a, b):
        exact = levenshtein(a, b)
        limited = levenshtein(a, b, limit=3)
        if exact <= 3:
            assert limited == exact
        else:
            assert limited == 4


class TestPatternProperties:
    @given(cell_text)
    def test_same_value_same_pattern(self, value):
        assert generalize(value, 3) == generalize(value, 3)

    # ASCII only: Unicode case folding can change length ('ß' -> 'SS').
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=30))
    def test_l2_invariant_under_case(self, value):
        assert generalize(value.upper(), 2) == generalize(value.lower(), 2)

    @given(cell_text)
    def test_empty_iff_empty(self, value):
        pattern = generalize(value, 1)
        assert (pattern == "") == (value == "")

    @given(st.text(alphabet=st.sampled_from("0123456789"), min_size=1, max_size=10))
    def test_digits_collapse_to_single_run(self, digits):
        assert generalize(digits, 3) == f"D[{len(digits)}]"


class TestTokenizeProperties:
    @given(cell_text)
    def test_tokens_lowercase(self, value):
        for token in tokenize(value):
            assert token == token.lower()

    @given(cell_text)
    def test_no_empty_tokens(self, value):
        assert all(tokenize(value))


class TestEmbeddingProperties:
    emb = SubwordHashEmbedding(dim=8, seed=1)

    @given(cell_text)
    @settings(max_examples=50)
    def test_deterministic(self, value):
        assert np.allclose(self.emb.embed(value), self.emb.embed(value))

    @given(cell_text)
    @settings(max_examples=50)
    def test_finite(self, value):
        assert np.all(np.isfinite(self.emb.embed(value)))


class TestMetricsProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=50), st.data())
    def test_bounds(self, truth, data):
        pred = data.draw(
            st.lists(st.booleans(), min_size=len(truth), max_size=len(truth))
        )
        m = precision_recall_f1(np.array(pred), np.array(truth))
        for value in (m.precision, m.recall, m.f1):
            assert 0.0 <= value <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_perfect_prediction(self, truth):
        m = precision_recall_f1(np.array(truth), np.array(truth))
        if any(truth):
            assert m.f1 == 1.0
        else:
            assert m.tp == 0 and m.fp == 0


class TestNMIProperties:
    labels = st.lists(
        st.sampled_from(["a", "b", "c"]), min_size=2, max_size=60
    )

    @given(labels)
    def test_self_nmi_is_one_unless_constant(self, xs):
        nmi = normalized_mutual_information(xs, xs)
        if len(set(xs)) > 1:
            assert abs(nmi - 1.0) < 1e-9
        else:
            assert nmi == 0.0

    @given(labels, st.data())
    def test_symmetric(self, xs, data):
        ys = data.draw(
            st.lists(
                st.sampled_from(["p", "q"]),
                min_size=len(xs),
                max_size=len(xs),
            )
        )
        assert normalized_mutual_information(
            xs, ys
        ) == normalized_mutual_information(ys, xs)

    @given(labels)
    def test_entropy_nonnegative(self, xs):
        assert entropy(xs) >= 0.0


class TestMaskProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    def test_union_contains_both(self, n_rows, n_attrs, data):
        attrs = [f"a{i}" for i in range(n_attrs)]
        cells = st.lists(
            st.tuples(
                st.integers(0, n_rows - 1), st.sampled_from(attrs)
            ),
            max_size=10,
        )
        a = ErrorMask.from_cells(attrs, n_rows, data.draw(cells))
        b = ErrorMask.from_cells(attrs, n_rows, data.draw(cells))
        union = a.union(b)
        assert union.error_count() >= max(a.error_count(), b.error_count())
        inter = a.intersection(b)
        assert inter.error_count() <= min(a.error_count(), b.error_count())

    @given(st.integers(1, 15), st.integers(1, 4))
    def test_diff_roundtrip(self, n_rows, n_attrs):
        attrs = [f"a{i}" for i in range(n_attrs)]
        rows = [[f"v{i}{j}" for j in range(n_attrs)] for i in range(n_rows)]
        t = Table.from_rows(attrs, rows)
        mask = ErrorMask.from_tables(t, t)
        assert mask.error_count() == 0


class TestTokenEstimateProperties:
    @given(cell_text)
    def test_nonnegative_and_monotone(self, text):
        assert estimate_tokens(text) >= 0
        assert estimate_tokens(text + " extra") >= estimate_tokens(text)


class TestKMeansProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=10, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_labels_within_range(self, k, n):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (n, 2))
        labels = KMeans(k, seed=0).fit_predict(x)
        assert labels.shape == (n,)
        assert labels.min() >= 0
        assert labels.max() < k
