"""Equivalence/property suite for the vectorized Step-3/4 engine (PR 3).

Locks down three rewrites against retained per-row reference
implementations (``tests/_reference_step34.py``):

* ``fold_codes`` / ``Criterion.evaluate_rows`` — the unique-combo fold
  restricted to given rows must match per-row ``check`` calls (shared
  verdict cache, any row order, context attrs missing from the fold);
* ``propagate_labels`` — the argsort group-by must reproduce the
  per-cluster ``nonzero`` scan exactly, including dict insertion order
  (downstream sampling draws depend on it), for list and folded-code
  evidence alike;
* ``verify_attribute`` — identical propagated dicts, criteria
  keep/drop decisions and row removals versus the seed loop;
* the flat in-place Adam trainer — bitwise-identical parameters, loss
  history and probabilities versus the seed dict-of-arrays loop; the
  workspace-buffered prediction path returns identical results;
* the opt-in ``detector_engine="fast"`` — deterministic, duplicate
  rows get one verdict, and downstream P/R/F1 stays within the
  recorded parity band (the PR 2 sampling-engine test pattern).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser
from repro.config import DETECTOR_ENGINES, ZeroEDConfig
from repro.core.correlation import correlated_attributes
from repro.core.criteria_step import generate_initial_criteria
from repro.core.detector import ErrorDetector
from repro.core.featurize import FeatureSpace
from repro.core.pipeline import ZeroED
from repro.core.sampling import SamplingResult, sample_representatives
from repro.core.training_data import propagate_labels, verify_attribute
from repro.criteria import Criterion, compile_criteria
from repro.data.encoding import ColumnEncoding, fold_codes
from repro.data.registry import make_dataset
from repro.data.stats import PairStats, compute_all_stats
from repro.data.table import Table
from repro.errors import ConfigError
from repro.llm.simulated import codegen
from repro.llm.simulated.engine import SimulatedLLM
from repro.ml.metrics import score_masks
from repro.ml.mlp import MLPClassifier, Workspace
from repro.ml.scaler import StandardScaler

from _reference_step34 import (
    ReferenceMLPClassifier,
    reference_context_row,
    reference_propagate_labels,
)


# ----------------------------------------------------------------------
# fold_codes
# ----------------------------------------------------------------------
class TestFoldCodes:
    def test_matches_tuple_equality(self):
        rng = np.random.default_rng(0)
        cols = [
            [f"v{rng.integers(5)}" for _ in range(200)],
            [f"w{rng.integers(7)}" for _ in range(200)],
            [f"x{rng.integers(3)}" for _ in range(200)],
        ]
        encs = [ColumnEncoding.from_values(c) for c in cols]
        key = fold_codes(encs)
        tuples = list(zip(*cols))
        for i in range(200):
            for j in range(i + 1, 200):
                assert (key[i] == key[j]) == (tuples[i] == tuples[j])

    def test_row_indices_restriction(self):
        values = [f"v{i % 4}" for i in range(50)]
        other = [f"u{i % 3}" for i in range(50)]
        encs = [
            ColumnEncoding.from_values(values),
            ColumnEncoding.from_values(other),
        ]
        idx = np.array([3, 1, 41, 7, 7, 0])
        np.testing.assert_array_equal(
            fold_codes(encs, row_indices=idx), fold_codes(encs)[idx]
        )

    def test_overflow_fallback_preserves_equality(self):
        # Fake encodings whose claimed cardinality overflows the
        # mixed-radix fold; the np.unique(axis=0) fallback must keep
        # tuple-equality semantics.
        class Huge:
            def __init__(self, codes):
                self.codes = np.asarray(codes, dtype=np.int64)
                self.n_unique = 2**32

        a = Huge([0, 1, 0, 1, 0])
        b = Huge([2, 3, 2, 2, 2])
        key = fold_codes([a, b])
        assert key[0] == key[2] == key[4]
        assert key[0] != key[1] and key[1] != key[3]

    def test_empty_encodings_rejected(self):
        with pytest.raises(ValueError):
            fold_codes([])


# ----------------------------------------------------------------------
# Criterion.evaluate_rows
# ----------------------------------------------------------------------
def _criteria_setup(dataset="hospital", n_rows=70, seed=0):
    config = ZeroEDConfig(criteria_sample_size=15, seed=seed)
    table = make_dataset(dataset, n_rows=n_rows, seed=seed).dirty
    llm = SimulatedLLM(seed=seed)
    correlated = correlated_attributes(table, 2, seed=seed)
    criteria = generate_initial_criteria(llm, table, correlated, config)
    return table, correlated, criteria


class TestEvaluateRows:
    def test_matches_per_row_check(self):
        table, correlated, criteria = _criteria_setup()
        rng = np.random.default_rng(1)
        for attr, crits in criteria.items():
            context = correlated[attr]
            idx = rng.permutation(table.n_rows)[:40].tolist()
            for crit in crits:
                fast = crit.evaluate_rows(table, idx, context=context)
                slow = np.array(
                    [
                        crit.check(
                            reference_context_row(table, i, attr, context)
                        )
                        for i in idx
                    ],
                    dtype=bool,
                )
                assert (fast == slow).all(), f"{attr}/{crit.name} diverged"

    def test_shares_cache_with_check(self):
        table, correlated, criteria = _criteria_setup()
        attr = next(a for a, cs in criteria.items() if cs)
        crit = criteria[attr][0]
        idx = list(range(table.n_rows))
        first = crit.evaluate_rows(table, idx, context=correlated[attr])
        cached = len(crit._cache)
        again = crit.evaluate_rows(table, idx, context=correlated[attr])
        np.testing.assert_array_equal(first, again)
        assert len(crit._cache) == cached  # no new evaluations

    def test_empty_rows(self):
        crit = Criterion.from_spec(
            "x",
            {
                "name": "non_empty",
                "source": "def non_empty(row, attr):\n"
                "    return bool(row[attr])\n",
            },
        )
        t = Table(["x"], {"x": ["a", "", "b"]})
        assert crit.evaluate_rows(t, []).shape == (0,)

    def test_context_attr_outside_context_list(self):
        # A criterion whose context_attrs are not passed as row context
        # must key on the value alone (the row dicts never carried the
        # context cell), matching per-row check on the same dicts.
        crit = Criterion.from_spec(
            "x",
            {
                "name": "uses_ctx",
                "source": "def uses_ctx(row, attr):\n"
                "    return row.get('y', '') != 'bad'\n",
                "context_attrs": ["y"],
            },
        )
        t = Table(
            ["x", "y"],
            {"x": ["a", "a", "b"], "y": ["bad", "ok", "bad"]},
        )
        fast = crit.evaluate_rows(t, [0, 1, 2], context=[])
        slow = np.array([crit.check({"x": t.cell(i, "x")}) for i in (0, 1, 2)])
        np.testing.assert_array_equal(fast, slow)


# ----------------------------------------------------------------------
# propagate_labels group-by
# ----------------------------------------------------------------------
class TestPropagateGroupBy:
    def fuzz_case(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        k = int(rng.integers(1, 12))
        labels = rng.integers(0, k, size=n)
        representative_of = {}
        for cid in np.unique(labels):
            members = np.nonzero(labels == cid)[0]
            representative_of[int(cid)] = int(rng.choice(members))
        llm_labels = {
            rep: int(rng.integers(2))
            for rep in representative_of.values()
            if rng.random() > 0.2
        }
        sampling = SamplingResult(
            cluster_labels=labels,
            sampled_indices=sorted(set(representative_of.values())),
            representative_of=representative_of,
        )
        evidence = rng.integers(0, 6, size=n).astype(np.int64)
        return sampling, llm_labels, evidence

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_reference_with_code_evidence(self, seed):
        sampling, llm_labels, evidence = self.fuzz_case(seed)
        new = propagate_labels(sampling, llm_labels, evidence=evidence)
        ref = reference_propagate_labels(
            sampling, llm_labels, evidence=evidence.tolist()
        )
        assert list(new.items()) == list(ref.items())  # incl. order

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_without_evidence(self, seed):
        sampling, llm_labels, _ = self.fuzz_case(seed)
        new = propagate_labels(sampling, llm_labels)
        ref = reference_propagate_labels(sampling, llm_labels)
        assert list(new.items()) == list(ref.items())

    def test_list_evidence_still_supported(self):
        sampling = SamplingResult(
            cluster_labels=np.array([0, 0, 0, 1, 1, 1]),
            sampled_indices=[0, 3],
            representative_of={0: 0, 1: 3},
        )
        out = propagate_labels(
            sampling, {0: 1, 3: 1}, evidence=["a", "a", "b", "c", "c", "d"]
        )
        assert out == {0: 1, 1: 1, 3: 1, 4: 1}

    def test_representative_without_llm_label_skipped(self):
        sampling = SamplingResult(
            cluster_labels=np.array([0, 0, 1, 1]),
            sampled_indices=[0, 2],
            representative_of={0: 0, 1: 2},
        )
        out = propagate_labels(sampling, {0: 0})
        assert out == {0: 0, 1: 0}


# ----------------------------------------------------------------------
# verify_attribute equivalence (vectorized vs seed per-row loop)
# ----------------------------------------------------------------------
def fd_table(n=120):
    rng = np.random.default_rng(0)
    pairs = [("Boston", "MA"), ("Chicago", "IL"), ("Denver", "CO")]
    rows = []
    for i in range(n):
        city, state = pairs[int(rng.integers(3))]
        if i % 12 == 0:
            state = "XX"
        rows.append([city, state])
    return Table.from_rows(["city", "state"], rows, name="fd")


def make_setup(config=None):
    config = config or ZeroEDConfig(embedding_dim=4, mlp_epochs=5)
    table = fd_table()
    stats = compute_all_stats(table)
    correlated = {"city": ["state"], "state": ["city"]}
    rng = np.random.default_rng(0)
    rows = [table.row(i) for i in range(40)]
    criteria = {
        attr: compile_criteria(
            attr,
            codegen.generate_criteria(
                attr, rows, correlated[attr], 1.0, 0.0, rng
            ),
        )
        for attr in table.attributes
    }
    space = FeatureSpace(table, stats, correlated, criteria, config)
    sampling = sample_representatives(
        space.unified_matrix("state"), 24, seed=0
    )
    return config, table, space, sampling


def reference_verify_attribute(
    llm, table, attr, feature_space, sampling, llm_labels, correlated, config
):
    """The seed per-row verification loop (pre-PR 3), verbatim."""
    from repro.core.training_data import (
        VerificationOutcome,
        refine_criteria,
    )
    from repro.ml.rng import spawn

    if config.propagate_labels:
        code_cols = [table.encoding(attr).codes.tolist()] + [
            table.encoding(q).codes.tolist()
            for q in correlated
            if q in table.attributes
        ]
        evidence = list(zip(*code_cols))
        propagated = reference_propagate_labels(
            sampling, llm_labels, evidence=evidence
        )
    else:
        propagated = dict(llm_labels)
    outcome = VerificationOutcome(
        attr=attr, propagated=propagated, n_propagated=len(propagated)
    )
    if not (config.use_verification and propagated):
        return outcome
    error_rows = [
        reference_context_row(table, i, attr, correlated)
        for i, lab in sorted(llm_labels.items())
        if lab == 1
    ]
    clean_sample = [i for i, lab in propagated.items() if lab == 0]
    if len(clean_sample) > 400:
        rng = spawn(config.seed, f"contrastive/{attr}")
        picked = rng.choice(len(clean_sample), size=400, replace=False)
        clean_sample = [clean_sample[int(k)] for k in sorted(picked)]
    clean_rows = [
        reference_context_row(table, i, attr, correlated)
        for i in clean_sample
    ]
    if error_rows and clean_rows:
        candidates = refine_criteria(
            llm, table, attr, error_rows, clean_rows, correlated
        )
    else:
        candidates = []
    right_rows = [
        (i, reference_context_row(table, i, attr, correlated))
        for i, lab in propagated.items()
        if lab == 0
    ]
    row_dicts = [row for _, row in right_rows]
    initial = (
        feature_space.featurizers[attr].criteria
        if config.use_criteria_features
        else []
    )
    merged = {}
    for crit in list(candidates) + list(initial):
        merged.setdefault(crit.name, crit)
    refined, trusted = [], []
    for crit in merged.values():
        accuracy = crit.accuracy_on(row_dicts)
        if accuracy >= config.criteria_accuracy_threshold:
            refined.append(crit)
            outcome.n_criteria_kept += 1
            if accuracy >= config.data_verify_accuracy:
                trusted.append(crit)
        else:
            outcome.n_criteria_dropped += 1
    if trusted:
        for i, row in right_rows:
            passed = sum(1 for c in trusted if c.check(row))
            if passed / len(trusted) < config.data_pass_threshold:
                del propagated[i]
                outcome.n_removed += 1
    if refined and config.use_criteria_features:
        feature_space.featurizers[attr].set_criteria(refined)
        feature_space.invalidate(attr)
    outcome.refined_criteria = refined
    return outcome


def truthful_labels(table, sampling):
    return {
        i: int(table.cell(i, "state") == "XX")
        for i in sampling.sampled_indices
    }


@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"data_verify_accuracy": 0.5},
        {"data_pass_threshold": 1.0},
        {"use_criteria_features": False},
        {"propagate_labels": False},
    ],
)
def test_verify_attribute_matches_seed_loop(overrides):
    outcomes = []
    for impl in (verify_attribute, reference_verify_attribute):
        config, table, space, sampling = make_setup(
            ZeroEDConfig(embedding_dim=4, mlp_epochs=5, **overrides)
        )
        labels = truthful_labels(table, sampling)
        llm = SimulatedLLM(seed=0)
        outcomes.append(
            impl(llm, table, "state", space, sampling, labels,
                 ["city"], config)
        )
    new, ref = outcomes
    assert list(new.propagated.items()) == list(ref.propagated.items())
    assert new.n_propagated == ref.n_propagated
    assert new.n_removed == ref.n_removed
    assert new.n_criteria_kept == ref.n_criteria_kept
    assert new.n_criteria_dropped == ref.n_criteria_dropped
    assert [c.name for c in new.refined_criteria] == [
        c.name for c in ref.refined_criteria
    ]


def test_verify_attribute_matches_seed_loop_on_generator_slice():
    results = []
    for impl in (verify_attribute, reference_verify_attribute):
        config = ZeroEDConfig(
            embedding_dim=8, criteria_sample_size=15, seed=0
        )
        table = make_dataset("beers", n_rows=120, seed=0).dirty
        llm = SimulatedLLM(seed=0)
        stats = compute_all_stats(table)
        correlated = correlated_attributes(table, 2, seed=0)
        criteria = generate_initial_criteria(llm, table, correlated, config)
        space = FeatureSpace(table, stats, correlated, criteria, config)
        per_attr = {}
        for attr in table.attributes:
            sampling = sample_representatives(
                space.unified_matrix(attr), 12, seed=0
            )
            labels = {
                i: int(k % 3 == 0)
                for k, i in enumerate(sampling.sampled_indices)
            }
            outcome = impl(
                llm, table, attr, space, sampling, labels,
                correlated[attr], config,
            )
            per_attr[attr] = (
                list(outcome.propagated.items()),
                outcome.n_removed,
                outcome.n_criteria_kept,
                outcome.n_criteria_dropped,
                [c.name for c in outcome.refined_criteria],
            )
        results.append(per_attr)
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Flat in-place Adam trainer: bitwise equivalence with the seed loop
# ----------------------------------------------------------------------
def training_blob(seed=0, n=700, d=23):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (n, d))
    y = (x[:, 0] + 0.3 * rng.normal(0, 1, n) > 0).astype(float)
    return x, y


class TestExactTrainerBitwise:
    def test_params_and_losses_bitwise_identical(self):
        x, y = training_blob()
        new = MLPClassifier(hidden=16, epochs=8, seed=7).fit(x, y)
        ref = ReferenceMLPClassifier(hidden=16, epochs=8, seed=7).fit(x, y)
        assert new.loss_history_ == ref.loss_history_
        for key in ("w1", "b1", "w2", "b2", "w3", "b3"):
            assert np.array_equal(new._params[key], ref._params[key]), key

    def test_probabilities_bitwise_identical(self):
        x, y = training_blob(seed=1)
        new = MLPClassifier(hidden=16, epochs=6, seed=3).fit(x, y)
        ref = ReferenceMLPClassifier(hidden=16, epochs=6, seed=3).fit(x, y)
        assert np.array_equal(new.predict_proba(x), ref.predict_proba(x))

    def test_partial_batch_and_unbalanced_weights(self):
        # n not a multiple of batch_size exercises the small-tail
        # buffers; unbalanced classes exercise the weight path.
        x, y = training_blob(seed=2, n=301)
        y[:280] = 0.0
        new = MLPClassifier(
            hidden=8, epochs=5, batch_size=64, seed=11
        ).fit(x, y)
        ref = ReferenceMLPClassifier(
            hidden=8, epochs=5, batch_size=64, seed=11
        ).fit(x, y)
        assert new.loss_history_ == ref.loss_history_
        for key in ("w1", "b1", "w2", "b2", "w3", "b3"):
            assert np.array_equal(new._params[key], ref._params[key]), key

    def test_early_stopping_history_identical(self):
        x, y = training_blob(seed=3, n=200)
        new = MLPClassifier(hidden=8, epochs=40, patience=3, seed=0).fit(x, y)
        ref = ReferenceMLPClassifier(
            hidden=8, epochs=40, patience=3, seed=0
        ).fit(x, y)
        assert new.loss_history_ == ref.loss_history_

    def test_workspace_reuse_identical_probabilities(self):
        x, y = training_blob(seed=4)
        clf = MLPClassifier(hidden=16, epochs=5, seed=0).fit(x, y)
        ws = Workspace()
        a = clf.predict_proba(x, workspace=ws)
        b = clf.predict_proba(x, workspace=ws)
        c = clf.predict_proba(x)
        assert np.array_equal(a, b) and np.array_equal(a, c)

    def test_workspace_returns_same_buffer(self):
        ws = Workspace()
        a = ws.get("z", (4, 3), np.float64)
        b = ws.get("z", (4, 3), np.float64)
        c = ws.get("z", (5, 3), np.float64)
        assert a is b and a is not c


# ----------------------------------------------------------------------
# Fast engine: determinism + parity band (PR 2 test pattern)
# ----------------------------------------------------------------------
class TestFastEngine:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(engine="turbo")

    def test_deterministic_under_seed(self):
        x, y = training_blob(seed=5)
        a = MLPClassifier(hidden=16, epochs=5, seed=9, engine="fast").fit(x, y)
        b = MLPClassifier(hidden=16, epochs=5, seed=9, engine="fast").fit(x, y)
        assert np.array_equal(a.predict_proba(x), b.predict_proba(x))
        assert a.loss_history_ == b.loss_history_

    def test_fast_close_to_exact_on_separable_data(self):
        x, y = training_blob(seed=6)
        exact = MLPClassifier(hidden=16, epochs=10, seed=2).fit(x, y)
        fast = MLPClassifier(
            hidden=16, epochs=10, seed=2, engine="fast"
        ).fit(x, y)
        agree = np.mean(
            (exact.predict_proba(x) >= 0.5) == (fast.predict_proba(x) >= 0.5)
        )
        assert agree > 0.95

    def test_losses_stay_finite_on_saturated_predictions(self):
        # float32 regression: with the float64 clip bound, 1 - 1e-9
        # rounds to 1.0f and log(1 - p) returns -inf, turning the loss
        # into NaN once any positive row saturates.
        rng = np.random.default_rng(8)
        x = rng.normal(0, 5, (500, 12))
        y = (rng.random(500) < 0.3).astype(float)
        clf = MLPClassifier(hidden=16, epochs=6, seed=0, engine="fast")
        clf.fit(x, y)
        assert all(np.isfinite(v) for v in clf.loss_history_)

    def test_blocked_prediction_matches_unblocked(self, monkeypatch):
        import repro.ml.mlp as mlp_mod

        x, y = training_blob(seed=7, n=500)
        clf = MLPClassifier(hidden=8, epochs=4, seed=1, engine="fast")
        clf.fit(x, y)
        full = clf.predict_proba(x)
        monkeypatch.setattr(mlp_mod, "PREDICT_BLOCK_ROWS", 64)
        blocked = clf.predict_proba(x)
        np.testing.assert_allclose(blocked, full, atol=1e-6, rtol=0)


class TestDetectorEngine:
    def make_space(self, table, config):
        stats = compute_all_stats(table)
        correlated = {a: [] for a in table.attributes}
        criteria = {a: [] for a in table.attributes}
        return FeatureSpace(table, stats, correlated, criteria, config)

    def setup_detector(self, engine):
        from repro.core.training_data import AttributeTrainingData

        config = ZeroEDConfig(
            embedding_dim=4, mlp_epochs=10, use_correlated_features=False,
            use_criteria_features=False, detector_engine=engine,
        )
        table = Table.from_rows(
            ["x"], [["common"]] * 40 + [["@@@"]] * 10, name="t"
        )
        space = self.make_space(table, config)
        unified = space.unified_matrix("x")
        labels = np.array([0.0] * 40 + [1.0] * 10)
        data = AttributeTrainingData(
            attr="x", features=unified, labels=labels,
            row_indices=list(range(50)),
        )
        detector = ErrorDetector(config).fit({"x": data}, space)
        return detector, table, space

    @pytest.mark.parametrize("engine", DETECTOR_ENGINES)
    def test_learns_separable_training_data(self, engine):
        detector, table, space = self.setup_detector(engine)
        mask = detector.predict(table, space)
        assert mask.column("x")[40:].all()
        assert not mask.column("x")[:40].any()

    def test_fast_duplicate_rows_share_verdict(self):
        detector, table, space = self.setup_detector("fast")
        mask = detector.predict(table, space)
        col = mask.column("x")
        # All 40 'common' rows are byte-identical feature rows; the
        # collapsed prediction must give them one shared verdict.
        assert len(set(col[:40].tolist())) == 1
        assert len(set(col[40:].tolist())) == 1

    def test_fast_deterministic(self):
        masks = []
        for _ in range(2):
            detector, table, space = self.setup_detector("fast")
            masks.append(detector.predict(table, space).matrix.copy())
        assert np.array_equal(masks[0], masks[1])

    def test_fast_code_dedup_matches_full_forward(self):
        # The folded-code dedup must be a pure optimisation: same
        # verdicts as running the forward pass over every row.
        detector, table, space = self.setup_detector("fast")
        model = detector._models["x"]
        full = model.mlp.predict_proba(
            model.scaler.transform(space.unified_matrix("x"))
        )
        mask = detector.predict(table, space)
        np.testing.assert_array_equal(
            mask.column("x"),
            full >= detector.config.decision_threshold,
        )

    def test_unified_key_columns_cover_feature_dependencies(self):
        from repro.core.detector import _unified_key_columns

        table, correlated, criteria = _criteria_setup(n_rows=50)
        config = ZeroEDConfig(criteria_sample_size=15, seed=0)
        stats = compute_all_stats(table)
        space = FeatureSpace(table, stats, correlated, criteria, config)
        for attr in table.attributes:
            cols = _unified_key_columns(space, table, attr)
            assert cols[0] == attr
            expect = {attr}
            expect.update(correlated[attr])
            for owner in [attr] + correlated[attr]:
                expect.update(space.featurizers[owner].correlated)
                for crit in space.featurizers[owner].criteria:
                    expect.update(
                        a for a in crit.context_attrs
                        if a in table.attributes
                    )
            assert set(cols) == expect

    def test_subsample_rows_preserves_rare_class(self):
        from repro.core.detector import _subsample_rows

        rng = np.random.default_rng(0)
        n = 5000
        stacked = np.column_stack(
            [rng.normal(0, 1, (n, 3)), np.zeros(n)]
        )
        stacked[:2, -1] = 1.0  # two minority rows only
        weights = np.ones(n)
        kept, kept_w = _subsample_rows(
            stacked, weights, 500, np.random.default_rng(1)
        )
        assert len(kept) == len(kept_w) <= 500
        assert 1.0 in set(np.unique(kept[:, -1]).tolist())

    def test_subsample_rows_deterministic(self):
        from repro.core.detector import _subsample_rows

        rng = np.random.default_rng(2)
        stacked = np.column_stack(
            [rng.normal(0, 1, (1000, 2)), rng.integers(0, 2, 1000)]
        )
        w = np.ones(1000)
        a, aw = _subsample_rows(stacked, w, 100, np.random.default_rng(5))
        b, bw = _subsample_rows(stacked, w, 100, np.random.default_rng(5))
        assert np.array_equal(a, b) and np.array_equal(aw, bw)


#: Downstream tolerance band for the fast detector engine, the same
#: budget the fast sampling engine is held to (PR 2).
PRF_TOLERANCE = 0.12


def test_detection_prf_parity_between_detector_engines():
    data = make_dataset("beers", n_rows=200, seed=3)
    prf = {}
    for engine in DETECTOR_ENGINES:
        result = ZeroED(
            seed=0,
            label_rate=0.1,
            mlp_epochs=8,
            criteria_sample_size=20,
            embedding_dim=8,
            detector_engine=engine,
        ).detect(data.dirty)
        prf[engine] = score_masks(result.mask, data.mask)
    for field in ("precision", "recall", "f1"):
        delta = abs(
            getattr(prf["fast"], field) - getattr(prf["exact"], field)
        )
        assert delta <= PRF_TOLERANCE, (
            f"{field} drifted {delta:.4f} between detector engines "
            f"(exact {getattr(prf['exact'], field):.4f}, "
            f"fast {getattr(prf['fast'], field):.4f})"
        )


def test_default_config_uses_exact_detector_engine():
    assert ZeroEDConfig().detector_engine == "exact"
    with pytest.raises(ConfigError):
        ZeroEDConfig(detector_engine="turbo")


def test_cli_exposes_detector_engine():
    parser = build_parser()
    args = parser.parse_args(
        ["detect", "beers", "--detector-engine", "fast"]
    )
    assert args.detector_engine == "fast"
    args = parser.parse_args(["detect-csv", "f.csv"])
    assert args.detector_engine == "exact"


# ----------------------------------------------------------------------
# Table.pair_stats memoization
# ----------------------------------------------------------------------
class TestPairStatsMemo:
    def make_table(self):
        return Table.from_rows(
            ["city", "state"],
            [["Boston", "MA"], ["Boston", "MA"], ["Chicago", "IL"],
             ["Boston", "NH"], ["Chicago", "IL"]],
            name="memo",
        )

    def test_memoizes_per_ordered_pair(self):
        t = self.make_table()
        a = t.pair_stats("city", "state")
        assert t.pair_stats("city", "state") is a
        assert t.pair_stats("state", "city") is not a

    def test_matches_fresh_compute(self):
        t = self.make_table()
        cached = t.pair_stats("city", "state")
        fresh = PairStats.compute(t, "city", "state")
        assert cached.majority == fresh.majority
        assert cached.fd_strength == fresh.fd_strength

    def test_set_cell_invalidates_touching_pairs_only(self):
        t = Table.from_rows(
            ["a", "b", "c"],
            [["1", "x", "p"], ["1", "x", "q"], ["2", "y", "p"]],
        )
        ab = t.pair_stats("a", "b")
        bc = t.pair_stats("b", "c")
        t.set_cell(0, "c", "zz")
        assert t.pair_stats("a", "b") is ab       # untouched pair kept
        assert t.pair_stats("b", "c") is not bc   # recomputed
        assert t.pair_stats("b", "c").majority["x"][0] in ("zz", "q")

    def test_invalidation_reflects_new_content(self):
        t = self.make_table()
        before = t.pair_stats("city", "state")
        assert before.majority["Boston"][0] == "MA"
        t.set_cell(0, "state", "NH")
        t.set_cell(1, "state", "NH")
        after = t.pair_stats("city", "state")
        assert after.majority["Boston"][0] == "NH"

    def test_unknown_attr_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            self.make_table().pair_stats("city", "nope")


def test_detect_mask_with_explicit_exact_engines_matches_default():
    # detector_engine="exact" is the default: spelling it out must not
    # change a single cell (the hash-pinned seed masks stay valid).
    table = make_dataset("hospital", n_rows=120, seed=0).dirty
    base = ZeroED(seed=0).detect(table).mask.matrix
    explicit = (
        ZeroED(seed=0, detector_engine="exact", sampling_engine="exact")
        .detect(table)
        .mask.matrix
    )
    assert np.array_equal(base, explicit)


def test_scaler_then_collapse_consistency():
    # The fast detector collapses *before* scaling; scaling is affine
    # per-element, so equal rows stay equal and the scatter matches
    # scaling the full matrix.
    rng = np.random.default_rng(0)
    base = rng.normal(0, 1, (6, 4))
    x = base[rng.integers(0, 6, size=40)]
    from repro.ml.distance import collapse_duplicate_rows

    uniques, codes, _ = collapse_duplicate_rows(x)
    scaler = StandardScaler().fit(x)
    np.testing.assert_allclose(
        scaler.transform(uniques)[codes], scaler.transform(x), atol=1e-12
    )
