"""Chaos suite: whole-pipeline fits under seeded fault injection.

The acceptance bar (ISSUE, PR 6): with a seeded 20% mixed-fault rate on
a 1k-row Tax slice the fit completes, retry/degradation counts are
exact, and detection quality stays within 0.15 F1 of the fault-free
run.  Marked ``chaos`` so CI can run it as its own job; the marker is
registered in pyproject.toml.

Determinism notes: chaos tests pin ``n_jobs=1`` so the single seeded
fault stream meets requests in a reproducible order; the *accounting*
invariants asserted here hold for any jobs count.  Backoff is zeroed —
the sleeps are real ``time.sleep`` calls in the pipeline path and the
faults are not worth waiting out.
"""

from __future__ import annotations

import pytest

from repro.config import ZeroEDConfig
from repro.core.pipeline import ZeroED
from repro.data.registry import get_dataset
from repro.llm.faults import FaultPlan, FaultyLLM
from repro.llm.simulated.engine import SimulatedLLM

pytestmark = pytest.mark.chaos

#: The acceptance scenario's fault mix: 20% of LLM calls misbehave —
#: 8% hang, 6% return HTTP errors, 3% return unparseable garbage, 3%
#: come back truncated mid-reply.
TWENTY_PCT = FaultPlan(
    timeout_rate=0.08,
    http_error_rate=0.06,
    malformed_rate=0.03,
    truncate_rate=0.03,
    seed=1234,
)


def chaos_config(**overrides) -> ZeroEDConfig:
    base = dict(
        label_rate=0.05,
        mlp_epochs=20,
        llm_backoff_s=0.0,
        # Exact accounting: with the breaker disabled, every fault the
        # injector raises is seen by exactly one resilience attempt.
        llm_breaker_threshold=0,
        n_jobs=1,
        seed=0,
    )
    base.update(overrides)
    return ZeroEDConfig(**base)


@pytest.fixture(scope="module")
def tax_1k():
    return get_dataset("tax").make(n_rows=1000, seed=0)


class TestTwentyPercentFaults:
    def test_fit_completes_with_exact_accounting_and_bounded_loss(
        self, tax_1k
    ):
        config = chaos_config()
        baseline = ZeroED(config, llm=SimulatedLLM(seed=0)).detect(
            tax_1k.dirty
        )
        baseline_f1 = baseline.score(tax_1k.mask).f1

        faulty = FaultyLLM(SimulatedLLM(seed=0), TWENTY_PCT)
        fitted = ZeroED(config, llm=faulty).fit(tax_1k.dirty)
        result = fitted.score(tax_1k.dirty)
        chaos_f1 = result.score(tax_1k.mask).f1

        stats = faulty.stats.summary()
        res = fitted.details["resilience"]
        # The injector really injected a nontrivial mix:
        assert stats["raised"] > 0 and stats["truncated"] > 0
        # Exact retry accounting — every raised fault was exactly one
        # failed attempt, and every failed attempt was either retried
        # or ended its call:
        assert res["failed_attempts"] == stats["raised"]
        assert (
            res["failed_attempts"] == res["retries"] + res["failed_calls"]
        )
        assert res["short_circuited"] == 0
        # Degradation only happens when retries are exhausted, and
        # every exhausted call must be recorded against an attribute:
        degraded = fitted.details["degraded_attrs"]
        if res["failed_calls"] == 0:
            assert degraded == {}
        else:
            assert degraded
        # Bounded quality loss (ISSUE acceptance: within 0.15 F1):
        assert chaos_f1 >= baseline_f1 - 0.15, (
            f"chaos F1 {chaos_f1:.3f} vs baseline {baseline_f1:.3f}"
        )

    def test_chaos_run_is_reproducible(self, tax_1k):
        def run():
            faulty = FaultyLLM(SimulatedLLM(seed=0), TWENTY_PCT)
            fitted = ZeroED(chaos_config(), llm=faulty).fit(tax_1k.dirty)
            return (
                fitted.score(tax_1k.dirty).mask.matrix,
                faulty.stats.summary(),
                fitted.details["degraded_attrs"],
            )

        mask_a, stats_a, degraded_a = run()
        mask_b, stats_b, degraded_b = run()
        assert stats_a == stats_b
        assert degraded_a == degraded_b
        assert (mask_a == mask_b).all()


class TestTotalOutage:
    def test_every_llm_stage_down_still_fits(self, tax_1k):
        """All request kinds failing hard: the pipeline degrades every
        attribute at every LLM stage and still trains detectors."""
        table = tax_1k.dirty.head(300)
        faulty = FaultyLLM(
            SimulatedLLM(seed=0),
            FaultPlan(timeout_rate=1.0, seed=7),
        )
        fitted = ZeroED(
            chaos_config(llm_max_retries=1, mlp_epochs=6), llm=faulty
        ).fit(table)
        degraded = fitted.details["degraded_attrs"]
        assert set(degraded) == set(table.attributes)
        for stages in degraded.values():
            assert "criteria" in stages and "labeling" in stages
        mask = fitted.score(table).mask
        assert mask.matrix.shape == (table.n_rows, table.n_attributes)
        # Nothing successful to account tokens for:
        assert fitted.ledger_summary["requests"] == 0

    def test_breaker_fails_a_dead_backend_fast(self, tax_1k):
        """With the breaker on, a dead backend stops being retried
        after the threshold: short-circuits dominate attempts."""
        table = tax_1k.dirty.head(300)
        faulty = FaultyLLM(
            SimulatedLLM(seed=0),
            FaultPlan(timeout_rate=1.0, seed=7),
        )
        fitted = ZeroED(
            chaos_config(
                llm_max_retries=0,
                llm_breaker_threshold=5,
                llm_breaker_cooldown_s=3600.0,
                mlp_epochs=6,
            ),
            llm=faulty,
        ).fit(table)
        res = fitted.details["resilience"]
        assert res["breaker"]["state"] == "open"
        assert res["breaker"]["opens"] >= 1
        assert res["short_circuited"] > 0
        # Only the pre-trip attempts ever reached the backend:
        assert faulty.stats.summary()["calls"] == 5
        assert set(fitted.details["degraded_attrs"]) == set(
            table.attributes
        )
