"""Retained per-row reference implementation of the feature pipeline.

This is the pre-interning (seed) implementation of
``AttributeFeaturizer.base_matrix`` / ``FeatureSpace.unified_matrix``,
kept verbatim as an executable specification: every value is
featurised cell-by-cell with Counter-based statistics rebuilt by a
full row scan.  The equivalence suite asserts that the vectorized
unique-value implementation in :mod:`repro.core.featurize` reproduces
these matrices exactly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.featurize import AttributeFeaturizer, FeatureSpace
from repro.data.table import Table
from repro.text.patterns import generalize


def reference_base_matrix(
    featurizer: AttributeFeaturizer, table: Table
) -> np.ndarray:
    """Seed per-row ``base_matrix`` for ``featurizer`` over ``table``."""
    config = featurizer.config
    attr = featurizer.attr
    stats = featurizer.stats
    n = table.n_rows
    n_stats = max(stats.n_rows, 1)
    blocks: list[np.ndarray] = []
    col = table.column_view(attr)

    # Pattern frequency tables, rebuilt from the attribute stats the
    # way the seed constructor did.
    pattern_counts: list[Counter] = []
    for level in (1, 2, 3):
        counter: Counter = Counter()
        for value, count in stats.value_counts.items():
            counter[generalize(value, level)] += count
        pattern_counts.append(counter)

    def frequency_features(value: str) -> tuple[float, float, float, float]:
        value_freq = stats.value_counts.get(value, 0) / n_stats
        pattern_freqs = tuple(
            pattern_counts[level - 1].get(generalize(value, level), 0)
            / n_stats
            for level in (1, 2, 3)
        )
        return (value_freq, *pattern_freqs)

    # Vicinity co-occurrence counters, rebuilt by a full row scan of
    # the construction table (the featurizer's table).
    vicinity: dict[str, tuple[Counter, Counter]] = {}
    if config.use_statistical_features and config.use_correlated_features:
        for q in featurizer.correlated:
            pair_counts: Counter = Counter()
            lhs_counts: Counter = Counter()
            for vq, vj in zip(table.column_view(q), col):
                pair_counts[(vq, vj)] += 1
                lhs_counts[vq] += 1
            vicinity[q] = (pair_counts, lhs_counts)

    if config.use_statistical_features:
        stat = np.empty((n, 4 + len(vicinity)))
        for i, value in enumerate(col):
            stat[i, :4] = frequency_features(value)
        for k, q in enumerate(vicinity):
            pair_counts, lhs_counts = vicinity[q]
            q_col = table.column_view(q)
            for i in range(n):
                lhs = q_col[i]
                denom = lhs_counts.get(lhs, 0)
                stat[i, 4 + k] = (
                    pair_counts.get((lhs, col[i]), 0) / denom if denom else 0.0
                )
        blocks.append(stat)
    if config.use_semantic_features and featurizer.embedding is not None:
        emb = np.empty((n, featurizer.embedding.dim))
        for i, value in enumerate(col):
            emb[i] = featurizer.embedding.embed(value)
        blocks.append(emb)
    if config.use_criteria_features:
        if featurizer.criteria:
            crit = np.empty((n, len(featurizer.criteria)))
            for j, criterion in enumerate(featurizer.criteria):
                for i in range(n):
                    row = {attr: col[i]}
                    for name in criterion.context_attrs:
                        if name in table.attributes:
                            row[name] = table.cell(i, name)
                    crit[i, j] = float(criterion.check(row))
        else:
            crit = np.zeros((n, 0))
        blocks.append(crit)
    if not blocks:
        return np.zeros((n, 1))
    return np.hstack(blocks)


def reference_unified_matrix(
    feature_space: FeatureSpace, attr: str
) -> np.ndarray:
    """Seed ``unified_matrix``: base ⊕ correlated base matrices."""
    table = feature_space.table
    parts = [reference_base_matrix(feature_space.featurizers[attr], table)]
    if feature_space.config.use_correlated_features:
        for q in feature_space.correlated.get(attr, []):
            parts.append(
                reference_base_matrix(feature_space.featurizers[q], table)
            )
    return np.hstack(parts)
