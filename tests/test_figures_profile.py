"""Tests for ASCII figure rendering and table profiling."""

from repro.bench.figures import render_bar_chart, render_line_chart
from repro.data.profile import profile_table
from repro.data.registry import get_dataset
from repro.data.table import Table


class TestLineChart:
    def test_renders_series_and_legend(self):
        chart = render_line_chart(
            {"a": [(0, 0.1), (1, 0.5), (2, 0.9)],
             "b": [(0, 0.9), (2, 0.1)]},
            title="T",
        )
        assert chart.startswith("T")
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_empty(self):
        assert "(no data)" in render_line_chart({}, title="E")

    def test_constant_series_no_crash(self):
        chart = render_line_chart({"flat": [(0, 0.5), (1, 0.5)]})
        assert "o" in chart

    def test_axis_labels_present(self):
        chart = render_line_chart(
            {"s": [(1, 10.0), (5, 20.0)]}, y_label="f1", x_label="k"
        )
        assert "20" in chart and "10" in chart
        assert "[f1 vs k]" in chart

    def test_extremes_plotted_at_corners(self):
        chart = render_line_chart(
            {"s": [(0, 0.0), (10, 1.0)]}, width=20, height=5
        )
        lines = chart.splitlines()
        data_lines = [ln for ln in lines if "|" in ln]
        # max y lands on the first grid row, min y on the last.
        assert "o" in data_lines[0]
        assert "o" in data_lines[-1]


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = render_bar_chart({"big": 1.0, "small": 0.25}, width=40)
        big = next(ln for ln in chart.splitlines() if ln.startswith("big"))
        small = next(ln for ln in chart.splitlines() if ln.startswith("small"))
        assert big.count("#") > small.count("#")

    def test_empty(self):
        assert "(no data)" in render_bar_chart({}, title="E")


class TestProfile:
    def test_profile_finds_hospital_dependencies(self):
        data = get_dataset("hospital").make(n_rows=300, seed=0)
        profile = profile_table(data.clean)
        deps = {(d.lhs, d.rhs) for d in profile.dependencies}
        assert ("MeasureCode", "Condition") in deps

    def test_profile_attribute_facts(self):
        t = Table.from_rows(
            ["num", "cat"],
            [[str(i), "x" if i % 2 else "y"] for i in range(40)]
            + [["", "x"]],
            name="p",
        )
        profile = profile_table(t)
        by_attr = {a.attr: a for a in profile.attributes}
        assert by_attr["num"].numeric_fraction > 0.9
        assert by_attr["num"].missing_share > 0.0
        assert by_attr["cat"].n_distinct == 2

    def test_render_is_text(self):
        data = get_dataset("beers").make(n_rows=120, seed=0)
        text = profile_table(data.dirty).render()
        assert "Profile of 'beers'" in text
        assert "## abv" in text
